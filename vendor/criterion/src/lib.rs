//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim implements the subset of the API used by the
//! workspace's benches (`criterion_group!`/`criterion_main!`, benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `bench_function`,
//! `bench_with_input` and `Bencher::iter`). Each benchmark runs a fixed
//! small number of iterations and prints the mean wall-clock time — enough
//! to compare orders of magnitude and to keep every bench target compiling
//! and runnable offline, with none of criterion's statistics.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How many elements/bytes one iteration processes (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; runs the measured routine.
pub struct Bencher {
    iterations: u32,
    last_mean: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, excluded from timing
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.iterations;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iterations: 3 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.iterations,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("  {id}: {:?}/iter", bencher.last_mean);
        self
    }
}

/// A group of related benchmarks. Configuration setters are accepted and
/// ignored; the shim always runs a fixed number of iterations.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores the sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does one warm-up call.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput (printed only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("  throughput: {throughput:?}");
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.criterion.bench_function(id, f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.criterion.bench_function(id, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions as a single runnable function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
