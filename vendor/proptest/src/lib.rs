//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim implements exactly the subset of the API that the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) generating one `#[test]` per property,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies (`0u32..128`, `-50.0f64..50.0`, ...), tuple
//!   strategies, [`collection::vec`], [`option::weighted`] and
//!   [`Strategy::prop_map`].
//!
//! Generation is deterministic (seeded from the test's module path and
//! name) so failures are reproducible; there is no shrinking — the failing
//! input is printed instead.
//!
//! [`proptest`]: https://docs.rs/proptest
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map

pub mod test_runner {
    //! The execution side: configuration, RNG and case outcomes.

    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!`; try another input.
        Reject(String),
        /// An assertion failed; the property is false.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure outcome.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// Build a rejection outcome.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// A small deterministic RNG (xorshift64*), seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the generator from a test identifier.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path keeps runs reproducible while
            // decorrelating sibling tests.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: hash | 1, // xorshift state must be non-zero
            }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The generation side: the [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Types that can be sampled uniformly from a half-open range.
    pub trait RangeSample: Copy {
        /// Sample from `[lo, hi)`; `lo` when the range is empty.
        fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! unsigned_range_sample {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    if hi <= lo {
                        return lo;
                    }
                    let span = (hi - lo) as u128;
                    lo + (u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }
    unsigned_range_sample!(u8, u16, u32, u64, u128, usize);

    macro_rules! signed_range_sample {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    if hi <= lo {
                        return lo;
                    }
                    let span = (hi as i128 - lo as i128) as u128;
                    (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_sample!(i8, i16, i32, i64, isize);

    macro_rules! float_range_sample {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    if hi <= lo {
                        return lo;
                    }
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_sample!(f32, f64);

    impl<T: RangeSample> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(self.start, self.end, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Generate a `Vec` whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` with probability `probability`, `None` otherwise.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { probability, inner }
    }

    /// The strategy returned by [`weighted`].
    pub struct WeightedOption<S> {
        probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Accepts an optional
/// `#![proptest_config(ProptestConfig...)]` header followed by any number of
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "property {} rejected too many generated inputs",
                    stringify!($name),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name),
                            accepted,
                            message,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Skip the current generated case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
