//! How the adaptive threshold behaves as the noise level changes — a guided
//! tour of AdaWave's key design choice (§IV-C / Fig. 6 of the paper).
//!
//! ```text
//! cargo run -p adawave-bench --release --example threshold_tuning
//! ```
//!
//! For each noise level the example prints the sorted-density deciles, the
//! threshold every strategy picks, and the resulting clustering quality, so
//! you can see why a *fixed* threshold (WaveCluster's approach) cannot work
//! across noise levels while the adaptive ones can.

use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_data::synthetic::{synthetic_benchmark, SYNTHETIC_NOISE_LABEL};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

fn main() {
    let strategies = [
        ThresholdStrategy::ElbowAngle { divisor: 3.0 },
        ThresholdStrategy::ThreeSegment,
        ThresholdStrategy::Kneedle,
        ThresholdStrategy::Fixed(2.0),
    ];

    for &noise in &[30.0, 60.0, 85.0] {
        let ds = synthetic_benchmark(noise, 1200, 11);
        println!("=== noise {noise:.0}%  ({} points) ===", ds.len());

        // Show the shape of the sorted density curve once per noise level.
        let probe = AdaWave::default().fit(ds.view()).expect("adawave");
        let densities = probe.sorted_densities();
        let deciles: Vec<String> = (0..=10)
            .map(|i| format!("{:.1}", densities[(densities.len() - 1) * i / 10]))
            .collect();
        println!("sorted density deciles: {}", deciles.join(" "));

        for strategy in strategies {
            let config = AdaWaveConfig::builder().threshold(strategy).build();
            let result = AdaWave::new(config).fit(ds.view()).expect("adawave");
            let score = ami_ignoring_noise(
                &ds.labels,
                &result.to_labels(NOISE_LABEL),
                SYNTHETIC_NOISE_LABEL,
            );
            println!(
                "  {:<14} threshold {:>8.2}  clusters {:>3}  noise {:>5.1}%  AMI {:.3}",
                strategy.name(),
                result.stats().threshold,
                result.cluster_count(),
                100.0 * result.noise_fraction(),
                score
            );
        }
        println!();
    }
    println!(
        "The fixed threshold that works at 30% noise under- or over-filters at 85%; \
         the adaptive strategies track the elbow of the density curve instead."
    );
}
