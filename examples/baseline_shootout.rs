//! Every implemented algorithm on the paper's running example — an extended
//! version of Fig. 2 covering the baselines of §V-A plus the related-work
//! algorithms (OPTICS, mean shift, Sync, STING, CLIQUE).
//!
//! ```text
//! cargo run -p adawave-bench --release --example baseline_shootout
//! ```

use std::time::Instant;

use adawave_api::PointsView;
use adawave_baselines::{
    clique, dbscan, kmeans, mean_shift, optics, self_tuning_spectral, skinnydip, sting,
    sync_cluster, wavecluster, CliqueConfig, Clustering, DbscanConfig, KMeansConfig,
    MeanShiftConfig, OpticsConfig, SkinnyDipConfig, SpectralConfig, StingConfig, SyncConfig,
    WaveClusterConfig,
};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::synthetic::running_example;
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

fn main() {
    // The full running example has ~28k points; the O(n²)-leaning baselines
    // (mean shift, Sync, STSC) make that a long wait, so the shootout runs
    // on a 8k subsample — the qualitative contrast is unchanged.
    let mut rng = adawave_data::Rng::new(1);
    let ds = running_example(42).subsample(8000, &mut rng);
    let noise_label = ds.noise_label.expect("running example labels its noise");
    println!(
        "running example: {} points, {} clusters, {:.0}% noise\n",
        ds.len(),
        ds.cluster_count(),
        100.0 * ds.noise_fraction()
    );
    println!(
        "{:<14} {:>8} {:>10} {:>10}",
        "algorithm", "clusters", "AMI", "seconds"
    );

    let run = |name: &str, f: &dyn Fn(PointsView<'_>) -> Clustering| {
        let start = Instant::now();
        let clustering = f(ds.view());
        let seconds = start.elapsed().as_secs_f64();
        let score = ami_ignoring_noise(&ds.labels, &clustering.to_labels(NOISE_LABEL), noise_label);
        println!(
            "{:<14} {:>8} {:>10.3} {:>10.3}",
            name,
            clustering.cluster_count(),
            score,
            seconds
        );
    };

    run("AdaWave", &|points| {
        let result = AdaWave::new(AdaWaveConfig::default())
            .fit(points)
            .expect("adawave");
        Clustering::new(result.assignment().to_vec())
    });
    run("k-means", &|points| {
        kmeans(points, &KMeansConfig::new(5, 7)).clustering
    });
    run("DBSCAN", &|points| {
        dbscan(points, &DbscanConfig::new(0.02, 8))
    });
    run("WaveCluster", &|points| {
        wavecluster(points, &WaveClusterConfig::default())
    });
    run("SkinnyDip", &|points| {
        skinnydip(points, &SkinnyDipConfig::default())
    });
    run("STSC", &|points| {
        self_tuning_spectral(
            points,
            &SpectralConfig {
                k: Some(5),
                ..Default::default()
            },
        )
    });
    run("OPTICS", &|points| {
        optics(points, &OpticsConfig::new(0.05, 8, 0.02))
    });
    run("mean shift", &|points| {
        mean_shift(points, &MeanShiftConfig::new(0.06))
    });
    run("Sync", &|points| {
        // Sync is O(n²) per round; subsample to keep the example quick.
        let step = (points.len() / 3000).max(1);
        let idx: Vec<usize> = (0..points.len()).step_by(step).collect();
        let sample = points.select(&idx);
        let clustering = sync_cluster(sample.view(), &SyncConfig::new(0.05));
        // Nearest-sample label for the remaining points.
        let labels: Vec<Option<usize>> = points
            .rows()
            .map(|p| {
                let mut best = (f64::MAX, None);
                for (s, l) in sample.rows().zip(clustering.assignment().iter()) {
                    let d: f64 = p.iter().zip(s.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best.0 {
                        best = (d, *l);
                    }
                }
                best.1
            })
            .collect();
        Clustering::new(labels)
    });
    run("STING", &|points| sting(points, &StingConfig::new(6, 6)));
    run("CLIQUE", &|points| {
        clique(points, &CliqueConfig::new(24, 0.002))
    });

    println!(
        "\nAdaWave and the grid/density methods recover the irregular shapes; the\n\
         centroid- and model-based baselines cannot, which is the contrast the\n\
         paper's Fig. 2 illustrates."
    );
}
