//! Multi-resolution clustering (§III-B "Multi-resolution" / §IV-F of the
//! paper): the same dataset clustered at several wavelet decomposition
//! levels in one call.
//!
//! ```text
//! cargo run -p adawave-bench --release --example multi_resolution
//! ```
//!
//! A hierarchical dataset — two "cities" that each split into three
//! "districts" — shows how the decomposition level acts as a resolution
//! knob: level 1 separates the districts, deeper levels merge them back
//! into the two cities.

use adawave_api::PointMatrix;
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::{shapes, Rng};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

fn main() {
    let mut rng = Rng::new(19);
    let mut points = PointMatrix::new(2);
    let mut district_truth = Vec::new();
    let mut city_truth = Vec::new();

    // Two cities at opposite corners, three districts each.
    let cities = [(0.25, 0.25), (0.75, 0.75)];
    let offsets = [(-0.06, 0.0), (0.06, 0.0), (0.0, 0.07)];
    let mut district = 0usize;
    for (city, (cx, cy)) in cities.iter().enumerate() {
        for (dx, dy) in offsets {
            shapes::gaussian_blob(
                &mut points,
                &mut rng,
                &[cx + dx, cy + dy],
                &[0.012, 0.012],
                900,
            );
            district_truth.extend(std::iter::repeat_n(district, 900));
            city_truth.extend(std::iter::repeat_n(city, 900));
            district += 1;
        }
    }
    let noise = 4000;
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
    district_truth.extend(std::iter::repeat_n(district, noise));
    city_truth.extend(std::iter::repeat_n(cities.len(), noise));

    println!(
        "dataset: {} points, 6 districts inside 2 cities, {:.0}% noise\n",
        points.len(),
        100.0 * noise as f64 / points.len() as f64
    );

    let adawave = AdaWave::new(AdaWaveConfig::builder().scale(128).build());
    let results = adawave
        .fit_multi_resolution(points.view(), &[1, 2, 3, 4])
        .expect("multi-resolution clustering");

    println!(
        "{:>6} {:>10} {:>16} {:>14} {:>14}",
        "level", "clusters", "surviving cells", "AMI districts", "AMI cities"
    );
    for (result, level) in results.iter().zip([1u32, 2, 3, 4]) {
        let labels = result.to_labels(NOISE_LABEL);
        let district_score = ami_ignoring_noise(&district_truth, &labels, district);
        let city_score = ami_ignoring_noise(&city_truth, &labels, cities.len());
        println!(
            "{:>6} {:>10} {:>16} {:>14.3} {:>14.3}",
            level,
            result.cluster_count(),
            result.stats().surviving_cells,
            district_score,
            city_score
        );
    }

    println!(
        "\nLow levels track the fine structure (districts), high levels the coarse\n\
         structure (cities) — the multi-resolution property inherited from the\n\
         wavelet transform, with no re-quantization between levels."
    );
}
