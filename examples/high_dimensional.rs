//! Clustering in higher dimensions with the "grid labeling" structure
//! (§IV-A / §VI of the paper).
//!
//! ```text
//! cargo run -p adawave-bench --release --example high_dimensional
//! ```
//!
//! Dense-grid wavelet clustering (WaveCluster) needs `scale^d` cells, which
//! is hopeless beyond a handful of dimensions. AdaWave stores only occupied
//! cells and prunes the transform to a cell budget, so the same code runs
//! from 2-D to 20-D. The example clusters three Gaussian blobs plus uniform
//! noise at increasing dimensionality and reports quality, occupied cells
//! and the dense-grid size the classic approach would have needed.

use adawave_api::PointMatrix;
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::{shapes, Rng};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

fn dataset(dims: usize, seed: u64) -> (PointMatrix, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(dims);
    let mut truth = Vec::new();
    let per_cluster = 1200;
    for (label, center_value) in [0.25, 0.5, 0.75].iter().enumerate() {
        let center = vec![*center_value; dims];
        let spread = vec![0.04; dims];
        shapes::gaussian_blob(&mut points, &mut rng, &center, &spread, per_cluster);
        truth.extend(std::iter::repeat_n(label, per_cluster));
    }
    let noise = 2 * per_cluster;
    shapes::uniform_box(
        &mut points,
        &mut rng,
        &vec![0.0; dims],
        &vec![1.0; dims],
        noise,
    );
    truth.extend(std::iter::repeat_n(3usize, noise));
    (points, truth)
}

fn main() {
    println!(
        "{:>4} {:>8} {:>10} {:>14} {:>22}",
        "d", "scale", "AMI", "occupied", "dense grid would need"
    );
    for dims in [2usize, 4, 8, 12, 16, 20] {
        let (points, truth) = dataset(dims, 31);
        // Grid methods must coarsen the grid as the dimension grows (§VI of
        // the paper): keep the *dense-equivalent* cell count roughly constant
        // by choosing scale ≈ 2^(32/d), so cluster cells still accumulate
        // enough points to stand out from the noise.
        let scale = (2f64.powf(32.0 / dims as f64)).round().clamp(4.0, 64.0) as u32;
        let config = AdaWaveConfig::builder().scale(scale).build();
        let result = AdaWave::new(config).fit(points.view()).expect("adawave");
        let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 3);
        let scale = result.stats().intervals[0];
        let dense_cells = (scale as f64).powi(dims as i32);
        println!(
            "{:>4} {:>8} {:>10.3} {:>14} {:>18.2e} cells",
            dims,
            scale,
            score,
            result.stats().quantized_cells,
            dense_cells
        );
    }
    println!();
    println!(
        "The occupied-cell column stays bounded by the number of points while the\n\
         dense grid grows as scale^d — the memory argument of §IV-A in practice."
    );
}
