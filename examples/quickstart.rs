//! Quickstart: cluster a small noisy dataset with AdaWave.
//!
//! ```text
//! cargo run -p adawave-bench --release --example quickstart
//! ```
//!
//! Generates three Gaussian clusters buried in 60% uniform noise, runs
//! AdaWave with its parameter-free defaults, and prints what it found
//! together with the AMI against the ground truth.

use adawave_api::PointMatrix;
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::{shapes, Rng};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

fn main() {
    // --- 1. build a noisy dataset -----------------------------------------
    let mut rng = Rng::new(7);
    let mut points = PointMatrix::new(2);
    let mut truth = Vec::new();
    let centers = [[0.2, 0.25], [0.75, 0.3], [0.5, 0.8]];
    for (label, center) in centers.iter().enumerate() {
        shapes::gaussian_blob(&mut points, &mut rng, center, &[0.03, 0.03], 800);
        truth.extend(std::iter::repeat_n(label, 800));
    }
    // 60% of the final dataset is uniform background noise.
    let noise = 3600;
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
    const NOISE_CLASS: usize = 3;
    truth.extend(std::iter::repeat_n(NOISE_CLASS, noise));
    println!(
        "dataset: {} points, {} clusters, {:.0}% noise",
        points.len(),
        centers.len(),
        100.0 * noise as f64 / points.len() as f64
    );

    // --- 2. cluster with AdaWave -------------------------------------------
    // The defaults are the paper's parameter-free setting (scale 128,
    // CDF(2,2) wavelet, adaptive elbow threshold).
    let config = AdaWaveConfig::builder().build();
    let result = AdaWave::new(config)
        .fit(points.view())
        .expect("clustering failed");

    // --- 3. inspect the result ---------------------------------------------
    println!("clusters found: {}", result.cluster_count());
    println!(
        "points labeled noise: {} ({:.1}%)",
        result.noise_count(),
        100.0 * result.noise_fraction()
    );
    for (id, size) in result.cluster_sizes().iter().enumerate() {
        println!("  cluster {id}: {size} points");
    }
    println!(
        "grid: {} occupied cells quantized, {} after transform, threshold {:.2}, {} survived",
        result.stats().quantized_cells,
        result.stats().transformed_cells,
        result.stats().threshold,
        result.stats().surviving_cells
    );

    let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), NOISE_CLASS);
    println!("AMI over true cluster members: {score:.3}");
}
