//! The Roadmap case study (Fig. 9): find dense populated areas in a road
//! network where the vast majority of points are "noise" road segments.
//!
//! ```text
//! cargo run -p adawave-bench --release --example roadmap_case_study -- 100000
//! ```
//!
//! The optional argument is the number of road-network points (default
//! 60,000; the real dataset has 434,874 — pass that to reproduce the
//! full-scale experiment).

use std::time::Instant;

use adawave_core::AdaWave;
use adawave_data::uci::roadmap_like;
use adawave_metrics::{ami, NOISE_LABEL};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);
    println!("generating a Roadmap-like road network with {n} points...");
    let ds = roadmap_like(n, 20190407);
    println!(
        "  {} city points across {} cities, {:.1}% arterial/countryside segments",
        ds.labels
            .iter()
            .filter(|&&l| Some(l) != ds.noise_label)
            .count(),
        ds.cluster_count(),
        100.0 * ds.noise_fraction()
    );

    let start = Instant::now();
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    let elapsed = start.elapsed();

    println!(
        "AdaWave found {} dense areas in {:.2} s ({} points/s)",
        result.cluster_count(),
        elapsed.as_secs_f64(),
        (n as f64 / elapsed.as_secs_f64()) as u64
    );
    let mut sizes: Vec<(usize, usize)> = result.cluster_sizes().into_iter().enumerate().collect();
    sizes.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    for (id, size) in sizes.iter().take(8) {
        println!("  area {id}: {size} road segments");
    }
    println!(
        "  noise (arterials, countryside): {} segments ({:.1}%)",
        result.noise_count(),
        100.0 * result.noise_fraction()
    );
    let score = ami(&ds.labels, &result.to_labels(NOISE_LABEL));
    println!("AMI against the city/noise ground truth: {score:.3}");
    println!("(the paper reports 0.735 on the real North-Jutland road network)");
}
