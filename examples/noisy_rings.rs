//! Arbitrarily-shaped clusters in heavy noise: the scenario that motivates
//! AdaWave in the paper's introduction (ring-shaped clusters that
//! centroid-based and model-based methods cannot represent).
//!
//! ```text
//! cargo run -p adawave-bench --release --example noisy_rings
//! ```
//!
//! Builds two overlapping rings plus a sloping line segment in 70% uniform
//! noise, then compares AdaWave with k-means, EM and DBSCAN.

use adawave_api::PointMatrix;
use adawave_baselines::{dbscan, em, kmeans, DbscanConfig, EmConfig, KMeansConfig};
use adawave_core::AdaWave;
use adawave_data::{shapes, Rng};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

const NOISE_CLASS: usize = 3;

fn build_dataset(seed: u64) -> (PointMatrix, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(2);
    let mut truth = Vec::new();
    // Two rings that overlap in both coordinate projections.
    shapes::ring(&mut points, &mut rng, (0.42, 0.55), 0.16, 0.008, 2000);
    truth.extend(std::iter::repeat_n(0usize, 2000));
    shapes::ring(&mut points, &mut rng, (0.6, 0.45), 0.16, 0.008, 2000);
    truth.extend(std::iter::repeat_n(1usize, 2000));
    // A sloping line segment.
    shapes::line_segment(&mut points, &mut rng, (0.1, 0.1), (0.35, 0.3), 0.005, 2000);
    truth.extend(std::iter::repeat_n(2usize, 2000));
    // 70% uniform noise.
    let noise = 14_000;
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
    truth.extend(std::iter::repeat_n(NOISE_CLASS, noise));
    (points, truth)
}

fn main() {
    let (points, truth) = build_dataset(3);
    println!(
        "dataset: {} points (2 rings + 1 line), 70% uniform noise",
        points.len()
    );
    let score = |name: &str, labels: &[usize], clusters: usize| {
        let ami = ami_ignoring_noise(&truth, labels, NOISE_CLASS);
        println!("{name:<10} AMI = {ami:.3}   clusters = {clusters}");
    };

    let adawave = AdaWave::default().fit(points.view()).expect("adawave");
    score(
        "AdaWave",
        &adawave.to_labels(NOISE_LABEL),
        adawave.cluster_count(),
    );

    let km = kmeans(points.view(), &KMeansConfig::new(3, 1));
    score(
        "k-means",
        &km.clustering.to_labels(NOISE_LABEL),
        km.clustering.cluster_count(),
    );

    let (_, gmm) = em(points.view(), &EmConfig::new(3, 1));
    score("EM", &gmm.to_labels(NOISE_LABEL), gmm.cluster_count());

    let db = dbscan(points.view(), &DbscanConfig::new(0.03, 8));
    score("DBSCAN", &db.to_labels(NOISE_LABEL), db.cluster_count());

    println!();
    println!(
        "AdaWave keeps the two rings and the line as separate clusters and pushes \
         most of the uniform background into its noise cluster; the centroid- and \
         model-based baselines split the rings into convex chunks instead."
    );
}
