//! The golden scenario corpus, run end to end.
//!
//! Every `scenarios/*.adw` script must parse and pass against the real
//! standard registry with real model persistence — the same engine the
//! `adawave script` subcommand uses. The corpus is the repo's living
//! regression net: together the scripts must cover every registered
//! algorithm, streaming ingest/merge/refit, model save→load→predict
//! round trips and the paper's headline noisy-scene claims, and at
//! least three of them must pin cross-thread determinism bit-exactly.

use std::collections::BTreeSet;
use std::path::PathBuf;

use adawave::script::{parse, Command, Script};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Every `.adw` file in `scenarios/`, sorted for stable output.
fn corpus() -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory next to Cargo.toml")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "adw"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, source)
        })
        .collect()
}

fn parsed_corpus() -> Vec<(PathBuf, Script)> {
    corpus()
        .into_iter()
        .map(|(path, source)| {
            let script = parse(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, script)
        })
        .collect()
}

#[test]
fn every_scenario_script_passes() {
    for (path, script) in parsed_corpus() {
        let dir = path.parent().expect("scenario files live in scenarios/");
        let report = adawave::script_engine().with_script_dir(dir).run(&script);
        assert!(report.passed(), "{}:\n{}", path.display(), report.render());
    }
}

#[test]
fn corpus_is_large_enough_and_covers_every_registry_algorithm() {
    let scripts = parsed_corpus();
    assert!(
        scripts.len() >= 15,
        "golden corpus shrank to {} scripts (need >= 15)",
        scripts.len()
    );

    let mut fitted: BTreeSet<String> = BTreeSet::new();
    for (_, script) in &scripts {
        fitted.extend(script.fit_algorithms().into_iter().map(String::from));
    }
    for name in adawave::standard_registry().names() {
        assert!(
            fitted.contains(name),
            "no scenario script fits '{name}' — the corpus must cover every registered algorithm"
        );
    }
}

#[test]
fn corpus_exercises_streaming_persistence_and_determinism() {
    let scripts = parsed_corpus();
    let mut ingests = 0usize;
    let mut roundtrips = 0usize;
    let mut deterministic = 0usize;
    for (_, script) in &scripts {
        for plan in &script.plans {
            let mut saved = false;
            for step in &plan.steps {
                match &step.command {
                    Command::Ingest { .. } => ingests += 1,
                    Command::SaveModel { .. } => saved = true,
                    // A round trip is save → load model → predict inside
                    // one plan.
                    Command::Predict { .. } if saved => roundtrips += 1,
                    Command::AssertDeterministic { threads }
                        if threads.contains(&1) && threads.contains(&4) =>
                    {
                        deterministic += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(ingests >= 1, "no scenario exercises streaming ingest");
    assert!(
        roundtrips >= 2,
        "fewer than two model save → load → predict round trips in the corpus"
    );
    assert!(
        deterministic >= 3,
        "only {deterministic} scripts assert `deterministic threads=1,4` (need >= 3)"
    );
}

#[test]
fn a_broken_script_reports_its_line() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("broken.adw");
    let source = std::fs::read_to_string(&path).expect("broken fixture");
    let err = parse(&source).expect_err("the broken fixture must not parse");
    assert_eq!(err.line, 5, "{err}");
    assert!(err.to_string().contains("line 5"), "{err}");
    assert!(err.to_string().contains("frobnicate"), "{err}");
}
