//! Fit/predict parity for the two-stage contract: for every algorithm in
//! the standard registry, `fit_model` must return the same training labels
//! as `fit`, and predicting with the trained model on the training batch
//! must reproduce those labels *exactly* — native decision rules and
//! nearest-training-point fallbacks alike. Prediction must be bit-stable
//! across thread counts, enforce the `InvalidInput` contract on degenerate
//! batches, and survive a save → load → predict roundtrip label-
//! identically for the persistable models (AdaWave, k-means).

use adawave::{
    load_model, save_model, standard_registry, AlgorithmSpec, ClusterError, PointMatrix,
    PredictSupport,
};
use adawave_data::{shapes, Rng};

/// Two blobs plus uniform background noise — the regime every algorithm
/// is meant to handle (same shape as the registry parity suite).
fn toy_points() -> PointMatrix {
    let mut rng = Rng::new(5);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 120);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 120);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
    points
}

/// Per-algorithm parameters that make the toy dataset meaningful (mirrors
/// `tests/registry_parity.rs`).
fn spec(name: &str) -> AlgorithmSpec {
    let base = AlgorithmSpec::new(name);
    match name {
        "adawave" | "wavecluster" => base.with("scale", 32),
        "kmeans" | "em" | "stsc" | "ric" => base.with("k", 3).with("seed", 7),
        "dbscan" => base.with("eps", 0.08).with("min-points", 8),
        "skinnydip" | "unidip" | "dipmeans" => base.with("seed", 7),
        "optics" => base.with("eps", 0.08),
        "meanshift" => base.with("bandwidth", 0.1),
        "sync" => base.with("eps", 0.08),
        _ => base, // sting, clique: defaults
    }
}

#[test]
fn predict_on_the_training_set_reproduces_fit_labels_for_every_algorithm() {
    let registry = standard_registry();
    let points = toy_points();
    assert!(registry.len() >= 15, "registry shrank");
    for name in registry.names() {
        let outcome = registry
            .fit_model(&spec(name), points.view())
            .unwrap_or_else(|e| panic!("{name} fit_model: {e}"));
        // fit_model's labels equal fit's labels (fit is a shim or an
        // equivalent cheap path — never a different clustering).
        let fit_only = registry.fit(&spec(name), points.view()).unwrap();
        assert_eq!(outcome.clustering, fit_only, "{name}: fit vs fit_model");
        // The trained model reproduces the training labels exactly.
        let predicted = outcome.model.predict(points.view()).unwrap();
        assert_eq!(
            predicted, outcome.clustering,
            "{name}: predict on the training set diverged from the fit labels"
        );
        // predict_one uses the training clustering's own ids.
        for (i, p) in points.rows().enumerate().step_by(29) {
            assert_eq!(
                outcome.model.predict_one(p),
                outcome.clustering.label(i),
                "{name}: predict_one diverged at point {i}"
            );
        }
        assert_eq!(outcome.model.algorithm(), name, "{name}");
        assert_eq!(outcome.model.dims(), 2, "{name}");
        assert!(!outcome.model.summary().is_empty(), "{name}");
    }
}

#[test]
fn prediction_is_bit_identical_across_thread_counts() {
    let registry = standard_registry();
    let points = toy_points();
    for name in registry.names() {
        let baseline = registry
            .fit_model(&spec(name).with("threads", 1), points.view())
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .model
            .predict(points.view())
            .unwrap();
        for threads in [2usize, 4, 8] {
            let predicted = registry
                .fit_model(&spec(name).with("threads", threads), points.view())
                .unwrap_or_else(|e| panic!("{name} threads={threads}: {e}"))
                .model
                .predict(points.view())
                .unwrap();
            assert_eq!(
                predicted, baseline,
                "{name}: predict labels differ between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn degenerate_predict_inputs_preserve_the_invalid_input_contract() {
    let registry = standard_registry();
    let points = toy_points();
    let empty = PointMatrix::new(2);
    let zero_dim = PointMatrix::from_rows(vec![vec![], vec![]]).unwrap();
    let wrong_dims = PointMatrix::from_rows(vec![vec![0.5, 0.5, 0.5]]).unwrap();
    for name in registry.names() {
        let model = registry
            .fit_model(&spec(name), points.view())
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .model;
        for (what, batch) in [
            ("empty", &empty),
            ("zero-dimensional", &zero_dim),
            ("wrong-dimensionality", &wrong_dims),
        ] {
            assert!(
                matches!(
                    model.predict(batch.view()),
                    Err(ClusterError::InvalidInput { .. })
                ),
                "{name}: {what} predict input should be InvalidInput"
            );
        }
        // Single unanswerable points are noise, not errors.
        assert_eq!(model.predict_one(&[f64::NAN, 0.0]), None, "{name}");
        assert_eq!(model.predict_one(&[0.5]), None, "{name}: wrong dims");
    }
}

#[test]
fn save_load_predict_round_trips_label_identically_for_adawave_and_kmeans() {
    let registry = standard_registry();
    let points = toy_points();
    // Fresh out-of-sample points exercise the loaded model beyond the
    // training batch: near each blob center plus far outside the domain.
    let fresh = PointMatrix::from_rows(vec![
        vec![0.25, 0.26],
        vec![0.74, 0.75],
        vec![0.5, 0.5],
        vec![42.0, -42.0],
    ])
    .unwrap();
    for name in ["adawave", "kmeans"] {
        let outcome = registry.fit_model(&spec(name), points.view()).unwrap();
        let path = std::env::temp_dir().join(format!(
            "adawave_predict_parity_{name}_{}.awm",
            std::process::id()
        ));
        save_model(&path, outcome.model.as_ref()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let loaded = load_model(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            loaded.predict(points.view()).unwrap(),
            outcome.clustering,
            "{name}: roundtripped model diverged on the training set"
        );
        assert_eq!(
            loaded.predict(fresh.view()).unwrap(),
            outcome.model.predict(fresh.view()).unwrap(),
            "{name}: roundtripped model diverged out of sample"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn registry_declares_native_vs_fallback_prediction_honestly() {
    let registry = standard_registry();
    let native = ["adawave", "kmeans", "em", "dipmeans", "meanshift", "unidip"];
    for entry in registry.entries() {
        let expected = if native.contains(&entry.name()) {
            PredictSupport::Native
        } else {
            PredictSupport::Fallback
        };
        assert_eq!(
            entry.predict_support(),
            expected,
            "{}: predict-support flag drifted from the documented table",
            entry.name()
        );
        // Fallback models say so in their summary; native ones never
        // claim to be fallbacks.
        let outcome = registry
            .fit_model(&spec(entry.name()), toy_points().view())
            .unwrap();
        let is_fallback = outcome.model.summary().contains("fallback");
        assert_eq!(
            is_fallback,
            expected == PredictSupport::Fallback,
            "{}: summary vs flag",
            entry.name()
        );
    }
}

#[test]
fn native_models_generalize_beyond_the_training_batch() {
    // Not a parity property, but the point of the redesign: a grid model
    // labels fresh in-cluster points without refitting and sends
    // out-of-domain points to noise.
    let registry = standard_registry();
    let points = toy_points();
    let outcome = registry
        .fit_model(
            &AlgorithmSpec::new("adawave").with("scale", 32),
            points.view(),
        )
        .unwrap();
    // The densest cells of each blob predict into a real cluster.
    let a = outcome.model.predict_one(&[0.25, 0.25]);
    let b = outcome.model.predict_one(&[0.75, 0.75]);
    assert!(a.is_some() && b.is_some());
    assert_ne!(a, b, "the two blobs map to different clusters");
    assert_eq!(
        outcome.model.predict_one(&[7.0, 7.0]),
        None,
        "out of domain"
    );
}
