//! End-to-end serving over real trained models: save → serve → HTTP
//! requests answer exactly what the in-process model answers, under
//! concurrency, across a hot reload, and in the face of malformed input.
//!
//! (The serve crate's own integration suite drives the protocol with a
//! toy model; this one closes the loop through `standard_registry`,
//! `save_model` and `model_loader` — the full production path.)

use std::sync::Arc;
use std::time::Duration;

use adawave::serve::Client;
use adawave::{
    model_loader, save_model, standard_registry, AlgorithmSpec, ModelStore, PointMatrix,
    ServeConfig, Server,
};
use adawave_data::{shapes, Rng};

/// Two blobs plus uniform background noise (the registry-parity regime).
fn toy_points() -> PointMatrix {
    let mut rng = Rng::new(9);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 150);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 150);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
    points
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("adawave_e2e_{name}_{}.awm", std::process::id()))
}

fn points_as_csv(points: &PointMatrix) -> String {
    points
        .rows()
        .map(|row| format!("{:?},{:?}\n", row[0], row[1]))
        .collect()
}

/// The exact bytes `adawave predict --output csv` renders for a model on
/// these points (the same writer the daemon mirrors).
fn offline_csv(model: &dyn adawave::Model, points: &PointMatrix) -> String {
    let clustering = model.predict(points.view()).unwrap();
    let mut out = String::from("label\n");
    for label in clustering.assignment() {
        if let Some(l) = label {
            out.push_str(&l.to_string());
        }
        out.push('\n');
    }
    out
}

#[test]
fn served_predictions_match_in_process_models_under_concurrency() {
    let points = toy_points();
    let registry = standard_registry();
    let store = Arc::new(ModelStore::new(model_loader()));

    let mut paths = Vec::new();
    let mut offline = Vec::new();
    for (name, spec) in [
        ("adawave", AlgorithmSpec::new("adawave").with("scale", 32)),
        (
            "kmeans",
            AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7),
        ),
    ] {
        let outcome = registry.fit_model(&spec, points.view()).unwrap();
        let path = temp_path(name);
        save_model(&path, outcome.model.as_ref()).unwrap();
        store.load(name, &path).unwrap();
        offline.push((name, offline_csv(outcome.model.as_ref(), &points)));
        paths.push(path);
    }

    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            ..ServeConfig::default()
        },
        Arc::clone(&store),
    )
    .unwrap();
    let addr = server.local_addr();
    let body = points_as_csv(&points);

    // Sequential ground truth: the served CSV equals the offline render
    // byte for byte, for both models.
    let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
    for (name, expected) in &offline {
        let response = client
            .post(&format!("/models/{name}/predict-batch"), "text/csv", &body)
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(&response.body, expected, "{name}: served != offline");
    }

    // Concurrent clients see the same bytes as the sequential baseline.
    std::thread::scope(|scope| {
        for _ in 0..5 {
            scope.spawn(|| {
                let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
                for _ in 0..2 {
                    for (name, expected) in &offline {
                        let response = client
                            .post(&format!("/models/{name}/predict-batch"), "text/csv", &body)
                            .unwrap();
                        assert_eq!(&response.body, expected, "{name} diverged under load");
                    }
                }
            });
        }
    });

    // Single-point answers agree with predict_one on the same model.
    let model = store.get("kmeans").unwrap();
    for i in [0usize, 151, 299] {
        let row = points.row(i);
        let response = client
            .post(
                "/models/kmeans/predict",
                "application/json",
                &format!("{{\"point\": [{}, {}]}}", row[0], row[1]),
            )
            .unwrap();
        let expected = match model.model.predict_one(row) {
            Some(l) => format!("\"label\":{l}"),
            None => "\"label\":null".to_string(),
        };
        assert!(response.body.contains(&expected), "{}", response.body);
    }

    server.shutdown();
    server.join();
    for path in paths {
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn hot_reload_swaps_a_retrained_model_atomically_under_load() {
    let points = toy_points();
    let registry = standard_registry();
    let store = Arc::new(ModelStore::new(model_loader()));
    let path = temp_path("reload");

    // v1: k=2. The retrained v2 (k=3, different seed) must label some
    // probe point differently, or the test cannot tell the versions
    // apart on the wire.
    let v1 = registry
        .fit_model(
            &AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7),
            points.view(),
        )
        .unwrap()
        .model;
    let v2 = registry
        .fit_model(
            &AlgorithmSpec::new("kmeans").with("k", 3).with("seed", 11),
            points.view(),
        )
        .unwrap()
        .model;
    let probe = (0..points.len())
        .find(|&i| v1.predict_one(points.row(i)) != v2.predict_one(points.row(i)))
        .expect("some point distinguishes k=2 from k=3");
    let row = points.row(probe);
    let request = format!("{{\"point\": [{}, {}]}}", row[0], row[1]);
    let label1 = v1.predict_one(row);
    let label2 = v2.predict_one(row);

    save_model(&path, v1.as_ref()).unwrap();
    store.load("blobs", &path).unwrap();
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 6,
            ..ServeConfig::default()
        },
        Arc::clone(&store),
    )
    .unwrap();
    let addr = server.local_addr();

    let render = |label: Option<usize>| match label {
        Some(l) => format!("\"label\":{l}"),
        None => "\"label\":null".to_string(),
    };
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut hammers = Vec::new();
        for _ in 0..4 {
            let stop = Arc::clone(&stop);
            let request = request.clone();
            let (render1, render2) = (render(label1), render(label2));
            hammers.push(scope.spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
                let mut count = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = client
                        .post("/models/blobs/predict", "application/json", &request)
                        .unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    // Every response is one model version, never a blend:
                    // v1's label with v1's version, or v2's with v2.
                    let v1_response = r.body.contains("\"version\":1") && r.body.contains(&render1);
                    let v2_response =
                        !r.body.contains("\"version\":1") && r.body.contains(&render2);
                    assert!(v1_response || v2_response, "mixed response: {}", r.body);
                    count += 1;
                }
                count
            }));
        }

        // Retrain on disk and hot-swap while the hammers run.
        std::thread::sleep(Duration::from_millis(30));
        save_model(&path, v2.as_ref()).unwrap();
        let mut admin = Client::connect(addr, Duration::from_secs(10)).unwrap();
        let reload = admin
            .post("/admin/reload/blobs", "application/json", "")
            .unwrap();
        assert_eq!(reload.status, 200, "{}", reload.body);
        assert!(reload.body.contains("\"version\":2"), "{}", reload.body);
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u32 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);

        // Settled state: everyone sees the retrained model.
        let r = admin
            .post("/models/blobs/predict", "application/json", &request)
            .unwrap();
        assert!(r.body.contains("\"version\":2"), "{}", r.body);
        assert!(r.body.contains(&render(label2)), "{}", r.body);
    });

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_requests_get_typed_errors_and_noise_stays_noise() {
    let points = toy_points();
    let registry = standard_registry();
    let outcome = registry
        .fit_model(
            &AlgorithmSpec::new("adawave").with("scale", 32),
            points.view(),
        )
        .unwrap();
    let path = temp_path("malformed");
    save_model(&path, outcome.model.as_ref()).unwrap();
    let store = Arc::new(ModelStore::new(model_loader()));
    store.load("blobs", &path).unwrap();
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        },
        store,
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(10)).unwrap();

    // Typed 4xx for requests the client got wrong.
    for (path, content_type, body) in [
        ("/models/blobs/predict", "application/json", "{broken"),
        (
            "/models/blobs/predict",
            "application/json",
            "{\"point\": [1.0]}",
        ),
        // JSON cannot spell NaN — a non-finite single point is a parse
        // error, not a prediction.
        (
            "/models/blobs/predict",
            "application/json",
            "{\"point\": [NaN, 0.2]}",
        ),
        (
            "/models/blobs/predict-batch",
            "application/json",
            "{\"rows\": [[0.1, 0.2], [0.3]]}",
        ),
        ("/models/blobs/predict-batch", "text/csv", "0.1,0.2,0.3\n"),
    ] {
        let response = client.post(path, content_type, body).unwrap();
        assert_eq!(response.status, 400, "{body:?} -> {}", response.body);
        assert!(response.body.contains("error"), "{}", response.body);
    }

    // CSV *can* spell nan, and the outlier contract routes it to noise:
    // the response is a well-formed answer with an empty label field.
    let response = client
        .post("/models/blobs/predict-batch", "text/csv", "nan,0.2\n")
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(response.body, "label\n\n");

    // An in-domain-shaped but out-of-domain single point answers null.
    let response = client
        .post(
            "/models/blobs/predict",
            "application/json",
            "{\"point\": [1e9, 1e9]}",
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(
        response.body.contains("\"label\":null"),
        "{}",
        response.body
    );

    // Unknown model: 404 with a suggestion. Unknown endpoint: 404 map.
    let response = client.get("/models/blob").unwrap();
    assert_eq!(response.status, 404);
    assert!(
        response.body.contains("did you mean blobs?"),
        "{}",
        response.body
    );
    let response = client.get("/modelz").unwrap();
    assert_eq!(response.status, 404);
    assert!(response.body.contains("GET /models"), "{}", response.body);

    // And after all that abuse the daemon still serves.
    assert_eq!(client.get("/health").unwrap().status, 200);

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}
