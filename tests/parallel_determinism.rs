//! The workspace's thread-count determinism contract, asserted end to end:
//! for **every** algorithm in the standard registry, fitting with
//! `threads=1` and with `threads=2..=8` must produce label-for-label
//! identical clusterings. The `adawave-runtime` primitives split work at
//! fixed chunk boundaries and merge partial results in chunk order, so the
//! thread count can never change an output — this suite is what holds that
//! promise at the API surface (CI additionally re-runs the whole test
//! suite under `ADAWAVE_THREADS=1` and `ADAWAVE_THREADS=4`).

use adawave::{standard_registry, AlgorithmSpec, ClusterError, PointMatrix, Runtime};
use adawave_baselines::{kmeans, KMeansConfig};
use adawave_data::{shapes, Rng};
use adawave_grid::Quantizer;
use proptest::prelude::*;

/// Two blobs plus uniform background noise — the regime every algorithm
/// is meant to handle (the same fixture family as `registry_parity`).
fn toy_points() -> PointMatrix {
    let mut rng = Rng::new(5);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 120);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 120);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
    points
}

/// A spec with sensible per-algorithm parameters (mirrors the parity
/// suite) plus the uniform `threads` parameter under test.
fn spec(name: &str, threads: usize) -> AlgorithmSpec {
    let base = AlgorithmSpec::new(name).with("threads", threads);
    match name {
        "adawave" | "wavecluster" => base.with("scale", 32),
        "kmeans" | "em" | "stsc" | "ric" => base.with("k", 3).with("seed", 7),
        "dbscan" => base.with("eps", 0.08).with("min-points", 8),
        "skinnydip" | "unidip" | "dipmeans" => base.with("seed", 7),
        "optics" => base.with("eps", 0.08),
        "meanshift" => base.with("bandwidth", 0.1),
        "sync" => base.with("eps", 0.08),
        _ => base, // sting, clique: defaults
    }
}

#[test]
fn every_registered_algorithm_is_thread_count_invariant() {
    let registry = standard_registry();
    let points = toy_points();
    assert!(registry.len() >= 15, "registry shrank");
    for name in registry.names() {
        let sequential = registry
            .fit(&spec(name, 1), points.view())
            .unwrap_or_else(|e| panic!("{name} sequential: {e}"));
        for threads in [2, 4, 8] {
            let parallel = registry
                .fit(&spec(name, threads), points.view())
                .unwrap_or_else(|e| panic!("{name} threads={threads}: {e}"));
            assert_eq!(
                sequential, parallel,
                "{name}: labels changed between threads=1 and threads={threads}"
            );
        }
    }
}

#[test]
fn threads_param_does_not_weaken_the_invalid_input_contract() {
    // Empty and zero-dimensional inputs stay typed `InvalidInput` errors
    // for every thread count — the parallel partitioning must never turn
    // them into panics or silent successes.
    let registry = standard_registry();
    let empty = PointMatrix::new(2);
    let zero_dim = PointMatrix::from_rows(vec![vec![], vec![]]).expect("zero-dim rows");
    for name in registry.names() {
        for threads in [1usize, 4] {
            let clusterer = registry
                .resolve(&AlgorithmSpec::new(name).with("threads", threads))
                .unwrap();
            for bad in [&empty, &zero_dim] {
                assert!(
                    matches!(
                        clusterer.fit(bad.view()),
                        Err(ClusterError::InvalidInput { .. })
                    ),
                    "{name} threads={threads}: degenerate input must stay InvalidInput"
                );
            }
        }
    }
}

/// Random rectangular point sets for the property checks below.
fn random_points() -> impl Strategy<Value = PointMatrix> {
    (
        1usize..4,
        prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 2..60),
    )
        .prop_map(|(d, rows)| {
            PointMatrix::from_rows(rows.into_iter().map(|r| r[..d].to_vec()).collect())
                .expect("constant-width rows")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quantizer_counts_match_sequential_for_1_to_8_threads(
        points in random_points(),
        threads in 1usize..9,
        tile in 1usize..4,
    ) {
        // Tile the random rows (with jitter) so larger cases cross the
        // parallel shard boundary while small ones stay inline.
        let mut tiled = PointMatrix::new(points.dims());
        let mut jitter = 0.0;
        for _ in 0..(tile * 120) {
            jitter += 1e-3;
            for row in points.rows() {
                let moved: Vec<f64> = row.iter().map(|v| v + jitter).collect();
                tiled.push_row(&moved);
            }
        }
        let quantizer = Quantizer::fit(tiled.view(), 16).unwrap();
        let (grid_seq, keys_seq) = quantizer.quantize_with(tiled.view(), Runtime::sequential());
        let (grid_par, keys_par) =
            quantizer.quantize_with(tiled.view(), Runtime::with_threads(threads));
        prop_assert_eq!(grid_seq, grid_par);
        prop_assert_eq!(keys_seq, keys_par);
    }

    #[test]
    fn kmeans_labels_match_sequential_for_1_to_8_threads(
        points in random_points(),
        threads in 1usize..9,
        k in 1usize..5,
        tile in 1usize..4,
    ) {
        let mut tiled = PointMatrix::new(points.dims());
        let mut jitter = 0.0;
        for _ in 0..(tile * 40) {
            jitter += 0.05;
            for row in points.rows() {
                let moved: Vec<f64> = row.iter().map(|v| v + jitter).collect();
                tiled.push_row(&moved);
            }
        }
        let sequential = kmeans(
            tiled.view(),
            &KMeansConfig {
                runtime: Runtime::sequential(),
                ..KMeansConfig::new(k, 11)
            },
        );
        let parallel = kmeans(
            tiled.view(),
            &KMeansConfig {
                runtime: Runtime::with_threads(threads),
                ..KMeansConfig::new(k, 11)
            },
        );
        prop_assert_eq!(&sequential.clustering, &parallel.clustering);
        prop_assert_eq!(&sequential.centroids, &parallel.centroids);
        prop_assert_eq!(sequential.inertia.to_bits(), parallel.inertia.to_bits());
    }
}
