//! Workspace-level integration tests: the full AdaWave pipeline against the
//! ground truth of the paper's synthetic workloads, exercising every crate
//! together (data → grid → wavelet → core → metrics).

use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_data::synthetic::{synthetic_benchmark, SYNTHETIC_NOISE_LABEL};
use adawave_data::uci::roadmap_like;
use adawave_data::{csv, Dataset};
use adawave_metrics::{ami, ami_ignoring_noise, v_measure, NOISE_LABEL};

fn masked_ami(ds: &Dataset, labels: &[usize]) -> f64 {
    ami_ignoring_noise(&ds.labels, labels, SYNTHETIC_NOISE_LABEL)
}

#[test]
fn adawave_clusters_the_running_example_structure() {
    // A reduced copy of the running example (Fig. 1/2): 5 irregular
    // clusters at 50% noise. AdaWave must find at least the five clusters
    // (the paper: "correctly detects all the five clusters") and score well
    // on the non-noise points.
    let ds = synthetic_benchmark(50.0, 700, 42);
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    assert!(
        result.cluster_count() >= 4,
        "only {} clusters detected",
        result.cluster_count()
    );
    let score = masked_ami(&ds, &result.to_labels(NOISE_LABEL));
    assert!(score > 0.55, "AMI {score}");
    // Noise really is filtered: a sizeable share of the uniform noise ends
    // up in the noise cluster.
    assert!(result.noise_fraction() > 0.2);
}

#[test]
fn adawave_survives_extreme_noise_better_than_threshold_free_wavecluster() {
    // At 85% noise the fixed-threshold WaveCluster pipeline (threshold 0 =
    // pure coefficient denoising) merges everything; the adaptive threshold
    // keeps the clusters apart. This is the core claim of the paper.
    let ds = synthetic_benchmark(85.0, 700, 7);
    let adaptive = AdaWave::default().fit(ds.view()).expect("adawave");
    let fixed = AdaWave::new(
        AdaWaveConfig::builder()
            .threshold(ThresholdStrategy::Fixed(0.0))
            .build(),
    )
    .fit(ds.view())
    .expect("adawave fixed");
    let adaptive_score = masked_ami(&ds, &adaptive.to_labels(NOISE_LABEL));
    let fixed_score = masked_ami(&ds, &fixed.to_labels(NOISE_LABEL));
    assert!(
        adaptive_score > fixed_score + 0.1,
        "adaptive {adaptive_score} vs fixed {fixed_score}"
    );
    assert!(adaptive_score > 0.3, "adaptive {adaptive_score}");
}

#[test]
fn adawave_finds_dense_cities_in_the_roadmap_surrogate() {
    let ds = roadmap_like(25_000, 3);
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    assert!(
        result.cluster_count() >= 3,
        "found {} dense areas",
        result.cluster_count()
    );
    let score = ami(&ds.labels, &result.to_labels(NOISE_LABEL));
    assert!(score > 0.3, "AMI {score}");
    // The majority class (arterials/countryside) is treated as noise.
    assert!(result.noise_fraction() > 0.3);
}

#[test]
fn multi_resolution_results_are_consistent() {
    let ds = synthetic_benchmark(50.0, 400, 11);
    let adawave = AdaWave::default();
    let results = adawave
        .fit_multi_resolution(ds.view(), &[1, 2])
        .expect("multi-resolution");
    assert_eq!(results.len(), 2);
    // Level 2 works on a coarser grid: fewer surviving cells, and clusters
    // can only merge or stay, so no explosion in cluster count.
    assert!(results[1].stats().surviving_cells <= results[0].stats().surviving_cells);
    assert!(results[1].cluster_count() <= results[0].cluster_count() + 2);
    // Both levels still agree reasonably with each other on labels.
    let a = results[0].to_labels(NOISE_LABEL);
    let b = results[1].to_labels(NOISE_LABEL);
    assert!(v_measure(&a, &b) > 0.3);
}

#[test]
fn csv_roundtrip_then_cluster() {
    // Save a dataset to CSV, load it back, cluster it: exercises the I/O
    // path a downstream user would take.
    let ds = synthetic_benchmark(40.0, 200, 13);
    let path = std::env::temp_dir().join("adawave_end_to_end.csv");
    csv::save_csv(&ds, &path).expect("save");
    let loaded = csv::load_csv(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.len(), ds.len());
    assert_eq!(loaded.dims(), 2);
    let result = AdaWave::default().fit(loaded.view()).expect("adawave");
    assert!(result.cluster_count() >= 3);
}

#[test]
fn noise_reassignment_protocol_produces_a_full_partition() {
    // The Table-I protocol: cluster, then assign detected noise to the
    // nearest cluster and score with plain AMI.
    let ds = synthetic_benchmark(30.0, 400, 17);
    let result = AdaWave::default().fit(ds.view()).expect("adawave");
    let full = result.assign_noise_to_nearest_centroid(ds.view());
    assert_eq!(full.len(), ds.len());
    let k = result.cluster_count().max(1);
    assert!(full.iter().all(|&l| l < k));
    let score = ami(&ds.labels, &full);
    assert!(score > 0.2, "AMI {score}");
}

#[test]
fn deterministic_across_runs_and_input_orderings() {
    let mut ds = synthetic_benchmark(60.0, 300, 19);
    let adawave = AdaWave::default();
    let first = adawave.fit(ds.view()).expect("adawave");
    let second = adawave.fit(ds.view()).expect("adawave");
    assert_eq!(first, second);

    // Reversing the point order permutes the assignment identically.
    ds.points.reverse_rows();
    let reversed = adawave.fit(ds.view()).expect("adawave");
    let mut realigned: Vec<Option<usize>> = reversed.assignment().to_vec();
    realigned.reverse();
    assert_eq!(first.assignment(), &realigned[..]);
}
