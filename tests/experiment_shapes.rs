//! Integration tests that check the *shape* of the paper's headline results
//! on reduced copies of each experiment: who wins, roughly by how much, and
//! where the trends go. (EXPERIMENTS.md records the full-scale numbers.)

use adawave_bench::experiments;
use adawave_bench::Algorithm;

/// Small helper: the AMI of one algorithm in a Fig. 8 row set at one noise level.
fn ami_of(rows: &[experiments::Fig8Row], noise: f64, algorithm: Algorithm) -> f64 {
    rows.iter()
        .find(|r| r.noise_percent == noise && r.algorithm == algorithm)
        .map(|r| r.ami)
        .unwrap_or(f64::NAN)
}

#[test]
fn fig2_adawave_handles_the_running_example() {
    // Paper: AdaWave reaches 0.76 on the running example while SkinnyDip
    // fails on the non-unimodal projections. On this *reduced* copy the
    // clusters are much smaller and more compact than the paper's
    // 5600-point shapes, which makes the centroid baselines stronger than
    // in the paper (see EXPERIMENTS.md); the claims we pin down here are
    // the ones that survive the down-scaling: AdaWave scores well, finds at
    // least the five planted clusters, and beats SkinnyDip.
    let rows = experiments::fig2_running_example(500, 99);
    let get = |a: Algorithm| rows.iter().find(|r| r.algorithm == a).unwrap();
    let adawave = get(Algorithm::AdaWave);
    let skinny = get(Algorithm::SkinnyDip);
    assert!(
        adawave.ami > skinny.ami,
        "AdaWave {} vs SkinnyDip {}",
        adawave.ami,
        skinny.ami
    );
    assert!(adawave.ami > 0.5, "AdaWave absolute score {}", adawave.ami);
    // AdaWave finds at least the five planted clusters; on this reduced copy
    // the thin line clusters can fragment into a few extra components.
    assert!(adawave.clusters >= 4 && adawave.clusters <= 80);
}

#[test]
fn fig8_trend_adawave_degrades_most_gracefully() {
    // Paper Fig. 8: AdaWave stays well above the baselines as noise grows;
    // DBSCAN is competitive at 20% noise but collapses at high noise.
    let rows = experiments::fig8_noise_sweep(350, &[20.0, 80.0], 5);

    let adawave_low = ami_of(&rows, 20.0, Algorithm::AdaWave);
    let adawave_high = ami_of(&rows, 80.0, Algorithm::AdaWave);
    assert!(adawave_low > 0.5, "AdaWave @20% = {adawave_low}");
    assert!(adawave_high > 0.25, "AdaWave @80% = {adawave_high}");
    // Degradation from 20% to 80% noise is graceful, not a collapse.
    assert!(
        adawave_high > adawave_low - 0.5,
        "AdaWave collapsed: {adawave_low} -> {adawave_high}"
    );
    // Every Fig. 8 algorithm produced a score for both noise levels
    // (the full dataset x algorithm matrix is what EXPERIMENTS.md records;
    // on this reduced copy the compact clusters keep the centroid baselines
    // artificially strong, so cross-algorithm margins are not asserted here
    // — see baseline_comparison.rs for the shape-sensitivity claims).
    for algorithm in Algorithm::FIG8 {
        for noise in [20.0, 80.0] {
            assert!(
                ami_of(&rows, noise, algorithm).is_finite(),
                "{} missing at {noise}%",
                algorithm.name()
            );
        }
    }
}

#[test]
fn fig10_adawave_runtime_grows_roughly_linearly() {
    // Paper Fig. 10: AdaWave scales linearly in n (it is grid-based).
    // Check that quadrupling n increases AdaWave's runtime by far less than
    // the 16x a quadratic method would show.
    let rows = experiments::fig10_runtime(&[200, 800], 3);
    let time_of = |n_per_cluster: usize, a: Algorithm| {
        rows.iter()
            .filter(|r| r.algorithm == a)
            .map(|r| (r.n, r.seconds))
            .collect::<Vec<_>>()
            .into_iter()
            .find(|&(n, _)| {
                // runtime_scaling_dataset at 75% noise: n = per_cluster*5*4
                n == n_per_cluster * 20
            })
            .map(|(_, s)| s)
            .unwrap_or(f64::NAN)
    };
    let small = time_of(200, Algorithm::AdaWave);
    let large = time_of(800, Algorithm::AdaWave);
    assert!(small > 0.0 && large > 0.0);
    let growth = large / small;
    assert!(
        growth < 10.0,
        "AdaWave runtime grew {growth:.1}x for 4x the data"
    );
}

#[test]
fn table2_reproduces_the_papers_correlation_signs() {
    // Paper Table II: Mg strongly negative, Na/Al/Ba positive, K/Ca ~ 0.
    let corr = experiments::table2_glass(20190407);
    let get = |name: &str| {
        corr.iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap()
    };
    assert!(get("Mg") < -0.45);
    assert!(get("Al") > 0.3);
    assert!(get("Ba") > 0.3);
    assert!(get("Na") > 0.25);
    assert!(get("K").abs() < 0.3);
    assert!(get("Ca").abs() < 0.3);
    // RI and Fe mildly negative, as in the paper.
    assert!(get("RI") < 0.1);
    assert!(get("Fe") < 0.1);
}

#[test]
fn fig5_wavelet_transform_suppresses_scattered_outliers() {
    // Paper Fig. 5: "the number of points sparsely scattered (outliers) in
    // the transformed feature space is lower than in the original space."
    let stats = experiments::fig5_transform(400, 21);
    assert!(stats.transformed_isolated <= stats.original_isolated);
    // And the clusters stand out more: higher max/mean contrast.
    assert!(stats.contrast_after > stats.contrast_before);
}

#[test]
fn fig6_adaptive_threshold_splits_head_from_tail() {
    let data = experiments::fig6_threshold(400, 23);
    // The adaptive strategies must drop a majority of the (noise) cells but
    // keep a meaningful head.
    for (name, _, surviving) in &data.thresholds {
        if name == "quantile" {
            continue;
        }
        let frac = *surviving as f64 / data.cells as f64;
        assert!(
            frac > 0.005 && frac < 0.9,
            "{name}: surviving fraction {frac}"
        );
    }
}

#[test]
fn fig9_roadmap_detects_the_dense_cities() {
    let result = experiments::fig9_roadmap(20_000, 31);
    assert!(result.clusters >= 3, "clusters {}", result.clusters);
    assert!(result.ami > 0.3, "AMI {}", result.ami);
    assert!(result.noise_fraction > 0.3);
}
