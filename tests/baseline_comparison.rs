//! Integration tests pitting AdaWave against the baselines on the paper's
//! qualitative claims (discussion §VI), at reduced scale.

use adawave_api::PointMatrix;
use adawave_baselines::{
    dbscan, em, kmeans, skinnydip, wavecluster, DbscanConfig, EmConfig, KMeansConfig,
    SkinnyDipConfig, WaveClusterConfig,
};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::synthetic::{synthetic_benchmark, SYNTHETIC_NOISE_LABEL};
use adawave_data::{shapes, Rng};
use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

#[test]
fn ring_clusters_defeat_kmeans_and_em_but_not_adawave() {
    // §VI: ring-shaped clusters with dense noise around them, "for which the
    // comparison methods tend to group together as one or separate them as
    // rectangle-style clusters". Two concentric rings are the canonical
    // instance: centroid/model-based methods cut them into halves, a
    // grid-connectivity method keeps each ring whole.
    let mut rng = Rng::new(1);
    let mut points = PointMatrix::new(2);
    let mut truth = Vec::new();
    shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.12, 0.008, 1500);
    truth.extend(std::iter::repeat_n(0usize, 1500));
    shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.34, 0.008, 1500);
    truth.extend(std::iter::repeat_n(1usize, 1500));
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 2000);
    const NOISE: usize = 2;
    truth.extend(std::iter::repeat_n(NOISE, 2000));

    let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
        .fit(points.view())
        .expect("adawave");
    let adawave_score = ami_ignoring_noise(&truth, &adawave.to_labels(NOISE_LABEL), NOISE);

    let km = kmeans(points.view(), &KMeansConfig::new(2, 3));
    let km_score = ami_ignoring_noise(&truth, &km.clustering.to_labels(NOISE_LABEL), NOISE);

    let (_, gmm) = em(points.view(), &EmConfig::new(2, 3));
    let em_score = ami_ignoring_noise(&truth, &gmm.to_labels(NOISE_LABEL), NOISE);

    assert!(
        adawave_score > km_score,
        "AdaWave {adawave_score} vs k-means {km_score}"
    );
    assert!(
        adawave_score > em_score,
        "AdaWave {adawave_score} vs EM {em_score}"
    );
    assert!(adawave_score > 0.3, "AdaWave {adawave_score}");
}

#[test]
fn dbscan_is_fine_at_low_noise_but_collapses_at_high_noise() {
    // §II/Fig. 8: "DBSCAN performs well only when the noise is controlled
    // below ~15-20%; its performance derogates drastically" afterwards.
    let low = synthetic_benchmark(20.0, 400, 5);
    let high = synthetic_benchmark(85.0, 400, 5);
    let score = |ds: &adawave_data::Dataset, eps: f64| {
        let clustering = dbscan(ds.view(), &DbscanConfig::new(eps, 8));
        ami_ignoring_noise(
            &ds.labels,
            &clustering.to_labels(NOISE_LABEL),
            SYNTHETIC_NOISE_LABEL,
        )
    };
    // Sweep eps and keep the best, mirroring the paper's automation.
    let best = |ds: &adawave_data::Dataset| {
        (1..=20)
            .map(|i| score(ds, i as f64 * 0.01))
            .fold(f64::MIN, f64::max)
    };
    let low_score = best(&low);
    let high_score = best(&high);
    assert!(low_score > 0.55, "DBSCAN @20% noise: {low_score}");
    // The paper reports a full collapse above ~60% noise; our smaller-scale
    // copy (denser clusters relative to the noise floor) shows a milder but
    // still clear degradation even with the best-eps oracle.
    assert!(
        high_score < low_score - 0.05,
        "DBSCAN should degrade: {low_score} -> {high_score}"
    );
}

#[test]
fn skinnydip_struggles_when_projections_are_not_unimodal() {
    // §II: SkinnyDip's precondition is unimodal projections per dimension;
    // the synthetic benchmark (rings + diagonal lines) violates it, and
    // AdaWave should come out ahead.
    let ds = synthetic_benchmark(60.0, 500, 9);
    let skinny = skinnydip(ds.view(), &SkinnyDipConfig::default());
    let skinny_score = ami_ignoring_noise(
        &ds.labels,
        &skinny.to_labels(NOISE_LABEL),
        SYNTHETIC_NOISE_LABEL,
    );
    let adawave = AdaWave::default().fit(ds.view()).expect("adawave");
    let adawave_score = ami_ignoring_noise(
        &ds.labels,
        &adawave.to_labels(NOISE_LABEL),
        SYNTHETIC_NOISE_LABEL,
    );
    assert!(
        adawave_score > skinny_score,
        "AdaWave {adawave_score} vs SkinnyDip {skinny_score}"
    );
}

#[test]
fn adawave_and_wavecluster_share_machinery_but_only_adawave_adapts() {
    // The paper's central comparison is AdaWave vs its ancestor WaveCluster
    // under heavy noise. Note: our WaveCluster baseline already uses a
    // data-dependent (mean-density) cut-off, which is stronger than the
    // original's fixed threshold (see EXPERIMENTS.md), so the decisive
    // adaptive-vs-fixed comparison lives in
    // `end_to_end::adawave_survives_extreme_noise_better_than_threshold_free_wavecluster`.
    // Here we check that on the same 80%-noise workload both grid methods
    // produce meaningful clusterings, and that AdaWave additionally reports
    // an explicit noise cluster covering a large share of the data.
    let ds = synthetic_benchmark(80.0, 500, 13);
    let wc = wavecluster(ds.view(), &WaveClusterConfig::default());
    let wc_score = ami_ignoring_noise(
        &ds.labels,
        &wc.to_labels(NOISE_LABEL),
        SYNTHETIC_NOISE_LABEL,
    );
    let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
        .fit(ds.view())
        .expect("adawave");
    let adawave_score = ami_ignoring_noise(
        &ds.labels,
        &adawave.to_labels(NOISE_LABEL),
        SYNTHETIC_NOISE_LABEL,
    );
    assert!(adawave.cluster_count() >= 2);
    assert!(wc.cluster_count() >= 2);
    assert!(adawave_score > 0.3, "AdaWave {adawave_score}");
    assert!(wc_score > 0.1, "WaveCluster {wc_score}");
    assert!(
        adawave.noise_fraction() > 0.3,
        "AdaWave should flag a large noise share, got {}",
        adawave.noise_fraction()
    );
}
