//! Integration tests for the related-work algorithms (§I/§II of the paper)
//! and the ground-truth-free validation indices, exercised together on the
//! paper's workloads.

use adawave_api::PointMatrix;
use adawave_baselines::{mean_shift, optics, sting, MeanShiftConfig, OpticsConfig, StingConfig};
use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_data::synthetic::synthetic_benchmark;
use adawave_data::{shapes, Rng};
use adawave_metrics::{
    ami_ignoring_noise, calinski_harabasz, davies_bouldin, silhouette_score, NOISE_LABEL,
};

/// Two well-separated rings plus background noise — the shape k-means cannot
/// handle and the grid/density methods can.
fn rings_with_noise(seed: u64) -> (PointMatrix, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(2);
    let mut truth = Vec::new();
    shapes::ring(&mut points, &mut rng, (0.3, 0.5), 0.12, 0.01, 1200);
    truth.extend(std::iter::repeat_n(0usize, 1200));
    shapes::ring(&mut points, &mut rng, (0.72, 0.5), 0.12, 0.01, 1200);
    truth.extend(std::iter::repeat_n(1usize, 1200));
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 800);
    truth.extend(std::iter::repeat_n(2usize, 800));
    (points, truth)
}

#[test]
fn grid_and_density_relatives_also_handle_the_synthetic_benchmark() {
    // STING and OPTICS belong to the same algorithm families AdaWave is
    // positioned against; at moderate noise both should find real structure
    // on the paper's synthetic benchmark (they are not expected to match
    // AdaWave at extreme noise).
    let ds = synthetic_benchmark(40.0, 700, 21);
    let noise = ds.noise_label.unwrap();

    let sting_result = sting(ds.view(), &StingConfig::new(6, 5));
    let sting_score = ami_ignoring_noise(&ds.labels, &sting_result.to_labels(NOISE_LABEL), noise);
    assert!(sting_score > 0.3, "STING AMI {sting_score}");

    let optics_result = optics(ds.view(), &OpticsConfig::new(0.05, 8, 0.02));
    let optics_score = ami_ignoring_noise(&ds.labels, &optics_result.to_labels(NOISE_LABEL), noise);
    assert!(optics_score > 0.3, "OPTICS AMI {optics_score}");
}

#[test]
fn mean_shift_cannot_separate_concentric_structure_that_adawave_can() {
    // A ring with a blob in its middle: mode-seeking merges them (one mode
    // basin), the grid transform keeps them apart.
    //
    // This dataset has no background noise, which is outside the adaptive
    // threshold's operating regime (the paper's method presumes a noise
    // tail in the density curve and over-prunes without one), so the
    // structural claim — grid connectivity separates concentric shapes that
    // mode seeking merges — is pinned with the threshold step disabled, and
    // the default configuration is only required to beat mean shift.
    let mut rng = Rng::new(33);
    let mut points = PointMatrix::new(2);
    let mut truth = Vec::new();
    shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.25, 0.01, 1500);
    truth.extend(std::iter::repeat_n(0usize, 1500));
    shapes::gaussian_blob(&mut points, &mut rng, &[0.5, 0.5], &[0.02, 0.02], 800);
    truth.extend(std::iter::repeat_n(1usize, 800));

    let config = AdaWaveConfig::builder()
        .scale(64)
        .threshold(ThresholdStrategy::Fixed(0.0))
        .build();
    let adawave = AdaWave::new(config).fit(points.view()).unwrap();
    let adawave_score = ami_ignoring_noise(&truth, &adawave.to_labels(NOISE_LABEL), usize::MAX);

    let ms = mean_shift(points.view(), &MeanShiftConfig::new(0.3));
    let ms_score = ami_ignoring_noise(&truth, &ms.to_labels(NOISE_LABEL), usize::MAX);

    assert!(adawave_score > 0.8, "AdaWave AMI {adawave_score}");
    assert!(
        adawave_score > ms_score + 0.2,
        "AdaWave {adawave_score} should clearly beat mean shift {ms_score} on concentric shapes"
    );

    // The default (adaptive) configuration mislabels part of the ring as
    // noise here, but still clearly beats mode seeking.
    let default_run = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
        .fit(points.view())
        .unwrap();
    let default_score = ami_ignoring_noise(&truth, &default_run.to_labels(NOISE_LABEL), usize::MAX);
    assert!(
        default_score > ms_score + 0.2,
        "default AdaWave {default_score} vs mean shift {ms_score}"
    );
}

#[test]
fn internal_indices_are_computable_on_adawave_results_without_ground_truth() {
    let (points, truth) = rings_with_noise(44);
    let result = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
        .fit(points.view())
        .unwrap();
    let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 2);
    assert!(score > 0.6, "AdaWave AMI {score}");

    // A user without labels can still rate the clustering: the indices must
    // be finite and consistent with a sensible clustering (positive CH,
    // moderate DB).
    let assignment = result.assignment().to_vec();
    let ch = calinski_harabasz(points.view(), &assignment);
    let db = davies_bouldin(points.view(), &assignment);
    let sil = silhouette_score(points.view(), &assignment);
    assert!(ch.is_finite() && ch > 0.0, "CH {ch}");
    assert!(db.is_finite() && db > 0.0, "DB {db}");
    assert!((-1.0..=1.0).contains(&sil), "silhouette {sil}");
}

#[test]
fn internal_indices_prefer_the_true_structure_over_a_random_split() {
    // Ground-truth-free indices should prefer k-means' own partition of two
    // plain blobs over a random relabeling of the same points.
    let mut rng = Rng::new(55);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.03, 0.03], 300);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.03, 0.03], 300);
    let good: Vec<Option<usize>> = (0..600).map(|i| Some(usize::from(i >= 300))).collect();
    let random: Vec<Option<usize>> = (0..600).map(|i| Some(i % 2)).collect();

    assert!(silhouette_score(points.view(), &good) > silhouette_score(points.view(), &random));
    assert!(calinski_harabasz(points.view(), &good) > calinski_harabasz(points.view(), &random));
    assert!(davies_bouldin(points.view(), &good) < davies_bouldin(points.view(), &random));
}
