//! Parity tests for the unified clustering API: for every algorithm in the
//! standard registry, resolving it through [`adawave::AlgorithmRegistry`]
//! with `key=value` params must produce the *identical* [`Clustering`] as
//! calling the algorithm's function directly with the equivalent typed
//! config — plus error-path tests for unknown names and bad params, and
//! layout-parity tests proving the flat [`PointMatrix`] representation is
//! label-identical to the seed's nested-`Vec` fixtures after conversion.

use adawave::{
    standard_registry, AlgorithmSpec, ClusterError, Clustering, PointMatrix, PointsView,
};
use adawave_baselines::{
    clique, dbscan, dipmeans, em, kmeans, mean_shift, optics, ric, self_tuning_spectral, skinnydip,
    sting, sync_cluster, unidip, wavecluster, CliqueConfig, DbscanConfig, DipMeansConfig, EmConfig,
    KMeansConfig, MeanShiftConfig, OpticsConfig, RicConfig, SkinnyDipConfig, SpectralConfig,
    StingConfig, SyncConfig, WaveClusterConfig,
};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::{shapes, Rng};

/// A small synthetic dataset with real structure: two blobs plus uniform
/// background noise, the regime every algorithm is meant to handle.
fn toy_points() -> PointMatrix {
    let mut rng = Rng::new(5);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 120);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 120);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
    points
}

/// The direct-call twin of each registered algorithm, with the typed
/// config equivalent to the spec used in `registry_output_equals_direct_call`.
fn direct(name: &str, points: PointsView<'_>) -> Clustering {
    match name {
        "adawave" => AdaWave::new(AdaWaveConfig::builder().scale(32).build())
            .fit(points)
            .expect("adawave")
            .to_clustering(),
        "kmeans" => kmeans(points, &KMeansConfig::new(3, 7)).clustering,
        "dbscan" => dbscan(points, &DbscanConfig::new(0.08, 8)),
        "em" => em(points, &EmConfig::new(3, 7)).1,
        "wavecluster" => wavecluster(
            points,
            &WaveClusterConfig {
                scale: 32,
                ..Default::default()
            },
        ),
        "skinnydip" => skinnydip(
            points,
            &SkinnyDipConfig {
                seed: 7,
                ..Default::default()
            },
        ),
        "unidip" => {
            // The registry's unidip projects onto dimension 0 and assigns
            // each point to the first modal interval containing it.
            let config = SkinnyDipConfig {
                seed: 7,
                ..Default::default()
            };
            let values: Vec<f64> = points.rows().map(|p| p[0]).collect();
            let mut rng = Rng::new(config.seed);
            let intervals = unidip(&values, &config, &mut rng);
            Clustering::new(
                values
                    .iter()
                    .map(|&v| intervals.iter().position(|&(lo, hi)| v >= lo && v <= hi))
                    .collect(),
            )
        }
        "dipmeans" => dipmeans(
            points,
            &DipMeansConfig {
                seed: 7,
                ..Default::default()
            },
        ),
        "stsc" => self_tuning_spectral(
            points,
            &SpectralConfig {
                k: Some(3),
                seed: 7,
                ..Default::default()
            },
        ),
        "ric" => ric(points, &RicConfig::new(6, 7)), // k=3 doubled by protocol
        "optics" => optics(points, &OpticsConfig::new(0.16, 8, 0.08)),
        "meanshift" => mean_shift(points, &MeanShiftConfig::new(0.1)),
        "sync" => sync_cluster(points, &SyncConfig::new(0.08)),
        "sting" => sting(points, &StingConfig::new(5, 4)),
        "clique" => clique(points, &CliqueConfig::new(10, 0.01)),
        other => panic!(
            "algorithm '{other}' is registered but has no direct-call twin in this parity test; \
             add one so registry dispatch stays verified"
        ),
    }
}

/// The spec whose params mirror the typed configs in [`direct`].
fn spec(name: &str) -> AlgorithmSpec {
    let base = AlgorithmSpec::new(name);
    match name {
        "adawave" | "wavecluster" => base.with("scale", 32),
        "kmeans" | "em" | "stsc" | "ric" => base.with("k", 3).with("seed", 7),
        "dbscan" => base.with("eps", 0.08).with("min-points", 8),
        "skinnydip" | "unidip" | "dipmeans" => base.with("seed", 7),
        "optics" => base.with("eps", 0.08),
        "meanshift" => base.with("bandwidth", 0.1),
        "sync" => base.with("eps", 0.08),
        _ => base, // sting, clique: defaults
    }
}

#[test]
fn registry_output_equals_direct_call_for_every_registered_algorithm() {
    let registry = standard_registry();
    let points = toy_points();
    assert!(
        registry.len() >= 15,
        "registry shrank: {:?}",
        registry.names()
    );
    for name in registry.names() {
        let via_registry = registry
            .fit(&spec(name), points.view())
            .unwrap_or_else(|e| panic!("{name} via registry: {e}"));
        let direct_result = direct(name, points.view());
        assert_eq!(
            via_registry, direct_result,
            "{name}: registry dispatch differs from the direct call"
        );
        assert_eq!(via_registry.len(), points.len(), "{name}");
    }
}

#[test]
fn flat_matrix_input_is_label_identical_to_converted_nested_fixtures() {
    // Layout parity: the seed stored fixtures as nested `Vec<Vec<f64>>`.
    // The first assert pins the load-bearing fact — converting a nested
    // fixture through the ingestion boundary (`PointMatrix::from_rows`)
    // reproduces the flat data bit-for-bit, so no algorithm can see a
    // different input. The fit loop then pins the second half of the
    // parity argument: every registered algorithm is deterministic on that
    // converted input, hence label-identical across the two fixture paths.
    let registry = standard_registry();
    let flat = toy_points();
    let nested: Vec<Vec<f64>> = flat.to_rows(); // the seed's fixture shape
    let converted = PointMatrix::from_rows(nested).expect("convert nested fixture");
    assert_eq!(flat, converted, "round-trip must preserve the data exactly");
    for name in registry.names() {
        let on_flat = registry
            .fit(&spec(name), flat.view())
            .unwrap_or_else(|e| panic!("{name} on flat: {e}"));
        let on_converted = registry
            .fit(&spec(name), converted.view())
            .unwrap_or_else(|e| panic!("{name} on converted: {e}"));
        assert_eq!(
            on_flat, on_converted,
            "{name}: labels differ between flat and converted nested input"
        );
    }
}

#[test]
fn every_algorithm_rejects_empty_and_zero_dimensional_input() {
    // The uniform empty-input contract introduced with the flat data
    // layer: dimension lives on the matrix, so empty input is a typed
    // error — never a `points[0]` panic — for every public entry point.
    let registry = standard_registry();
    let empty = PointMatrix::new(2);
    let zero_dim = PointMatrix::from_rows(vec![vec![], vec![]]).expect("zero-dim rows");
    for name in registry.names() {
        let clusterer = registry.resolve(&AlgorithmSpec::new(name)).unwrap();
        assert!(
            matches!(
                clusterer.fit(empty.view()),
                Err(ClusterError::InvalidInput { .. })
            ),
            "{name} should reject an empty point set"
        );
        assert!(
            matches!(
                clusterer.fit(zero_dim.view()),
                Err(ClusterError::InvalidInput { .. })
            ),
            "{name} should reject zero-dimensional points"
        );
    }
}

#[test]
fn resolved_clusterers_report_their_registry_name() {
    let registry = standard_registry();
    for name in registry.names() {
        let clusterer = registry.resolve(&AlgorithmSpec::new(name)).unwrap();
        assert_eq!(clusterer.name(), name);
        assert!(
            clusterer.describe().contains(name),
            "{}: describe() should mention the name",
            name
        );
    }
}

#[test]
fn unknown_algorithm_name_is_rejected_with_the_known_list() {
    let registry = standard_registry();
    let err = registry
        .resolve(&AlgorithmSpec::new("kmedoids"))
        .map(|_| ())
        .unwrap_err();
    match err {
        ClusterError::UnknownAlgorithm { name, known } => {
            assert_eq!(name, "kmedoids");
            assert!(known.contains(&"adawave".to_string()));
            assert!(known.contains(&"kmeans".to_string()));
        }
        other => panic!("expected UnknownAlgorithm, got {other:?}"),
    }
}

#[test]
fn bad_params_are_rejected_with_typed_errors() {
    let registry = standard_registry();

    // A key the algorithm does not declare.
    let err = registry
        .resolve(&AlgorithmSpec::new("kmeans").with("bandwidth", 0.5))
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::UnknownParam { ref param, .. } if param == "bandwidth"),
        "{err:?}"
    );

    // A value that does not parse as the declared type.
    let err = registry
        .resolve(&AlgorithmSpec::new("dbscan").with("eps", "wide"))
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::InvalidParam { ref param, .. } if param == "eps"),
        "{err:?}"
    );

    // Registry-level validation applies to every algorithm uniformly.
    for name in registry.names() {
        assert!(registry
            .resolve(&AlgorithmSpec::new(name).with("definitely-not-a-param", 1))
            .is_err());
    }
}
