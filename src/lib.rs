//! # adawave
//!
//! The umbrella crate of the AdaWave workspace — a Rust reproduction of
//! *Adaptive Wavelet Clustering for Highly Noisy Data* (ICDE 2019) grown
//! into a multi-algorithm clustering toolkit.
//!
//! It re-exports the unified clustering API of `adawave-api` and assembles
//! the **standard algorithm registry**: AdaWave plus every baseline of the
//! paper's evaluation (k-means, DBSCAN, EM, WaveCluster, SkinnyDip,
//! DipMeans, STSC, RIC, OPTICS, mean shift, SYNC, STING, CLIQUE), all
//! behind one [`Clusterer`] trait returning one canonical [`Clustering`].
//!
//! Point sets travel through every algorithm as the flat row-major
//! [`PointMatrix`] / [`PointsView`] data layer — one contiguous buffer,
//! no per-point allocation. The hot kernels fan out over the
//! [`Runtime`] of `adawave-runtime` (every registry algorithm accepts a
//! uniform `threads` parameter), with a fixed-chunk determinism contract:
//! any thread count produces identical labels.
//!
//! Data too large (or too late) to fit in one batch goes through the
//! streaming layer: [`StreamingAdaWave`] ingests point batches into an
//! additive sparse-grid accumulator, merges accumulators from independent
//! shards, and refits the cluster model in `O(occupied cells)` — see the
//! `adawave-stream` crate docs for the domain-freeze contract.
//!
//! Training and serving are split: `Clusterer::fit_model` returns a
//! [`FitOutcome`] whose boxed [`Model`] labels out-of-sample points
//! without refitting (`predict` / `predict_one`), and [`save_model`] /
//! [`load_model`] persist every registry algorithm's trained model across
//! processes in a dependency-free versioned text format (see [`persist`]).
//!
//! Persisted models are servable: the re-exported `adawave-serve` daemon
//! ([`Server`] / [`ModelStore`] / [`ServeConfig`]) answers single-point
//! and batch predictions over minimal HTTP/1.1 from a worker pool, with
//! atomic hot model reload. [`model_loader`] is the glue — it hands
//! [`load_model`] to the store, which is how `adawave serve` wires the
//! two layers together.
//!
//! ```
//! use adawave::{standard_registry, AlgorithmSpec, PointMatrix};
//!
//! // Two tight diagonal streaks plus one stray point.
//! let mut points = PointMatrix::new(2);
//! for i in 0..100 {
//!     let t = i as f64 * 0.0003;
//!     points.push_row(&[0.2 + t, 0.2 - t]);
//!     points.push_row(&[0.8 - t, 0.8 + t]);
//! }
//! points.push_row(&[0.5, 0.95]);
//!
//! let registry = standard_registry();
//! for spec in [
//!     AlgorithmSpec::new("adawave").with("scale", 32),
//!     AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7),
//! ] {
//!     let clusterer = registry.resolve(&spec).unwrap();
//!     let clustering = clusterer.fit(points.view()).unwrap();
//!     assert!(clustering.cluster_count() >= 2, "{}", clusterer.describe());
//! }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod persist;

pub use adawave_api::{
    AlgorithmEntry, AlgorithmRegistry, AlgorithmSpec, ClusterError, Clusterer, Clustering,
    FitOutcome, Model, ParamSpec, Params, PointMatrix, PointsView, PredictSupport,
};
pub use adawave_core::{
    cluster_grid, AdaWave, AdaWaveConfig, AdaWaveModel, AdaWaveResult, GridModel, ThresholdStrategy,
};
pub use adawave_runtime::Runtime;
pub use adawave_script as script;
pub use adawave_serve as serve;
pub use adawave_serve::{ModelEntry, ModelLoader, ModelStore, ServeConfig, Server};
pub use adawave_stream::{IngestReport, MergeRejected, StreamError, StreamingAdaWave};
pub use persist::{load_model, save_model, PersistError};

/// A [`ModelLoader`] backed by [`load_model`] — inject it into a
/// [`ModelStore`] to serve models saved by [`save_model`], exactly as
/// the `adawave serve` subcommand does:
///
/// ```no_run
/// use std::sync::Arc;
/// use adawave::{model_loader, ModelStore, ServeConfig, Server};
///
/// let store = Arc::new(ModelStore::new(model_loader()));
/// store.load("blobs", std::path::Path::new("blobs.awm")).unwrap();
/// let server = Server::start(ServeConfig::default(), store).unwrap();
/// server.join();
/// ```
pub fn model_loader() -> ModelLoader {
    std::sync::Arc::new(|path: &std::path::Path| {
        persist::load_model(path).map_err(|e| e.to_string())
    })
}

/// The standard registry: AdaWave plus every baseline of the paper's
/// evaluation, resolvable by name with `key=value` parameters.
///
/// Fit any algorithm by name in one call — every entry also accepts the
/// uniform `threads` parameter (`0` = auto), and parallel runs are
/// guaranteed to produce the same labels as sequential ones:
///
/// ```
/// use adawave::{standard_registry, AlgorithmSpec, PointMatrix};
///
/// let points = PointMatrix::from_rows(vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0],
/// ]).unwrap();
/// let registry = standard_registry();
/// let spec = AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7);
/// let clustering = registry.fit(&spec, points.view()).unwrap();
/// assert_eq!(clustering.cluster_count(), 2);
/// let with_threads = registry
///     .fit(&spec.clone().with("threads", 4), points.view())
///     .unwrap();
/// assert_eq!(clustering, with_threads);
/// ```
pub fn standard_registry() -> AlgorithmRegistry {
    let mut registry = AlgorithmRegistry::new();
    adawave_core::register(&mut registry);
    adawave_baselines::register(&mut registry);
    registry
}

/// A ready-made scenario-script [`script::Engine`]: the standard registry
/// with [`save_model`] / [`load_model`] wired in as the persistence hooks,
/// so scripts can exercise every algorithm plus `save` / `load model` /
/// `predict` round-trips. This is the engine behind `adawave script` and
/// the `scenarios/` golden corpus.
///
/// ```
/// let script = adawave::script::parse(
///     "marker $$kmeans round-trip$$\n\
///      generate blobs n=200 k=2 seed=7\n\
///      fit kmeans seed=7 as direct\n\
///      save \"m.awm\"\n\
///      load model \"m.awm\"\n\
///      predict\n\
///      assert labels == labels_from direct\n",
/// )
/// .unwrap();
/// let report = adawave::script_engine().run(&script);
/// assert!(report.passed(), "{}", report.render());
/// ```
pub fn script_engine() -> script::Engine {
    script::Engine::new(standard_registry()).with_persistence(
        Box::new(|path, model| save_model(path, model).map_err(|e| e.to_string())),
        Box::new(|path| load_model(path).map_err(|e| e.to_string())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_holds_adawave_and_all_baselines() {
        let registry = standard_registry();
        assert_eq!(registry.len(), 15);
        assert!(registry.contains("adawave"));
        assert!(registry.contains("kmeans"));
        assert!(registry.contains("clique"));
        // Every entry resolves with default parameters.
        for name in registry.names() {
            registry
                .resolve(&AlgorithmSpec::new(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn describe_covers_every_algorithm() {
        let registry = standard_registry();
        let text = registry.describe();
        for name in registry.names() {
            assert!(text.contains(name), "{name} missing from describe()");
        }
    }
}
