//! Versioned model persistence: save a trained [`Model`] to a file and
//! load it back in another process.
//!
//! The format is a dependency-free line-oriented text file (like the
//! workspace's vendored test shims, nothing to install):
//!
//! ```text
//! adawave-model v1
//! algorithm <name>
//! <algorithm-specific payload>
//! ```
//!
//! Floats in payloads are stored as the hex of their IEEE-754 bits, so a
//! save → load → predict roundtrip is *bit-identical* to the in-memory
//! model — the property CI pins end to end through the CLI (`cluster
//! --save-model` → `predict` → diff). The version is checked on load;
//! bumping the payload shape means bumping `v1`.
//!
//! The header discipline, payload parser and float encoding live in the
//! generic [`adawave_api::artifact`] layer (typed kind
//! [`ArtifactKind::Model`], magic `adawave-model`), which the streaming
//! layer shares for its `adawave-accumulator` files — this module adds
//! only the per-algorithm payload dispatch.
//!
//! Every registered algorithm's trained model is persistable, so every
//! registry entry is servable from a file: the native models serialize
//! their decision rule (grid table, centroids, mixture parameters, mode
//! representatives + training density, modal intervals) and the
//! nearest-training fallback models serialize the memorized training
//! batch with its labels — honest about their size scaling with n.
//! [`PersistError::Unsupported`] remains only for algorithm names this
//! build does not know.

use std::path::Path;

use adawave_api::{load_artifact, save_artifact, ArtifactError, ArtifactKind, Model};
use adawave_baselines::{
    CentroidModel, EmModel, IntervalModel, MeanShiftModel, NearestTrainingModel,
};
use adawave_core::AdaWaveModel;

/// The registry algorithms whose models predict via the documented
/// nearest-training-point fallback; they all share one payload shape
/// (memorized training batch + labels), parameterized by the name.
const FALLBACK_ALGORITHMS: [&str; 9] = [
    "dbscan",
    "optics",
    "wavecluster",
    "sting",
    "clique",
    "sync",
    "stsc",
    "skinnydip",
    "ric",
];

/// The typed artifact kind model files use; its magic (`adawave-model`)
/// and the shared [`adawave_api::ARTIFACT_VERSION`] form the header.
const KIND: ArtifactKind = ArtifactKind::Model;

/// Errors produced while saving or loading a model file.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The file is not a well-formed model file of the current version.
    Format(String),
    /// The algorithm named in the file (or by the model) is not one this
    /// build knows how to (de)serialize.
    Unsupported(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file i/o: {e}"),
            PersistError::Format(context) => write!(f, "bad model file: {context}"),
            PersistError::Unsupported(algorithm) => write!(
                f,
                "model persistence is not supported for '{algorithm}' \
                 (every standard-registry algorithm is supported — is the \
                 file from a newer build?)"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<ArtifactError> for PersistError {
    /// Strip the artifact layer's kind tag: model persistence reports the
    /// same `Io` / `Format` split (and the same `Display` wording) it
    /// always has.
    fn from(e: ArtifactError) -> Self {
        match e {
            ArtifactError::Io { error, .. } => PersistError::Io(error),
            ArtifactError::Format { context, .. } => PersistError::Format(context),
        }
    }
}

/// Save a trained model to `path` in the versioned text format.
///
/// Errors with [`PersistError::Unsupported`] when the model's
/// [`Model::serialize`] returns `None`.
pub fn save_model(path: &Path, model: &dyn Model) -> Result<(), PersistError> {
    let payload = model
        .serialize()
        .ok_or_else(|| PersistError::Unsupported(model.algorithm().to_string()))?;
    save_artifact(path, KIND, model.algorithm(), &payload)?;
    Ok(())
}

/// Load a model saved by [`save_model`], dispatching on the algorithm
/// named in the header.
pub fn load_model(path: &Path) -> Result<Box<dyn Model>, PersistError> {
    let artifact = load_artifact(path, KIND)?;
    let (algorithm, payload) = (artifact.algorithm.as_str(), artifact.payload.as_str());
    let boxed = |m: Result<Box<dyn Model>, String>| m.map_err(PersistError::Format);
    match algorithm {
        "adawave" => boxed(AdaWaveModel::deserialize(payload).map(|m| Box::new(m) as _)),
        "kmeans" | "dipmeans" => {
            boxed(CentroidModel::deserialize(algorithm, payload).map(|m| Box::new(m) as _))
        }
        "em" => boxed(EmModel::deserialize(payload).map(|m| Box::new(m) as _)),
        "meanshift" => boxed(MeanShiftModel::deserialize(payload).map(|m| Box::new(m) as _)),
        "unidip" => boxed(IntervalModel::deserialize(payload).map(|m| Box::new(m) as _)),
        name if FALLBACK_ALGORITHMS.contains(&name) => {
            boxed(NearestTrainingModel::deserialize(name, payload).map(|m| Box::new(m) as _))
        }
        other => Err(PersistError::Unsupported(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_registry, AlgorithmSpec, PointMatrix};
    use adawave_data::{shapes, Rng};

    fn noisy_blobs() -> PointMatrix {
        let mut rng = Rng::new(21);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 200);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 200);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        points
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("adawave_persist_{name}_{}.awm", std::process::id()))
    }

    #[test]
    fn adawave_and_kmeans_models_round_trip_through_files() {
        let registry = standard_registry();
        let points = noisy_blobs();
        for (name, spec) in [
            ("adawave", AlgorithmSpec::new("adawave").with("scale", 32)),
            (
                "kmeans",
                AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7),
            ),
        ] {
            let outcome = registry.fit_model(&spec, points.view()).unwrap();
            let path = temp_path(name);
            save_model(&path, outcome.model.as_ref()).unwrap();
            let loaded = load_model(&path).unwrap();
            assert_eq!(loaded.algorithm(), name);
            // Bit-identical labels through the file roundtrip.
            assert_eq!(
                loaded.predict(points.view()).unwrap(),
                outcome.clustering,
                "{name}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    /// Per-algorithm parameters that make the toy dataset meaningful
    /// (mirrors `tests/predict_parity.rs`).
    fn spec_for(name: &str) -> AlgorithmSpec {
        let base = AlgorithmSpec::new(name);
        match name {
            "adawave" | "wavecluster" => base.with("scale", 32),
            "kmeans" | "em" | "stsc" | "ric" => base.with("k", 3).with("seed", 7),
            "dbscan" => base.with("eps", 0.08).with("min-points", 8),
            "skinnydip" | "unidip" | "dipmeans" => base.with("seed", 7),
            "optics" => base.with("eps", 0.08),
            "meanshift" => base.with("bandwidth", 0.1),
            "sync" => base.with("eps", 0.08),
            _ => base, // sting, clique: defaults
        }
    }

    #[test]
    fn every_registry_algorithm_round_trips_through_files() {
        let registry = standard_registry();
        let points = noisy_blobs();
        assert!(registry.len() >= 15, "registry shrank");
        for name in registry.names() {
            let outcome = registry
                .fit_model(&spec_for(name), points.view())
                .unwrap_or_else(|e| panic!("{name} fit_model: {e}"));
            let path = temp_path(name);
            save_model(&path, outcome.model.as_ref())
                .unwrap_or_else(|e| panic!("{name} save: {e}"));
            let loaded = load_model(&path).unwrap_or_else(|e| panic!("{name} load: {e}"));
            assert_eq!(loaded.algorithm(), name);
            assert_eq!(loaded.dims(), 2, "{name}");
            // Bit-identical labels through the file roundtrip.
            assert_eq!(
                loaded.predict(points.view()).unwrap(),
                outcome.clustering,
                "{name}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn models_that_cannot_serialize_error_instead_of_writing_garbage() {
        /// A model outside the standard registry whose `serialize` is `None`.
        struct Opaque;
        impl Model for Opaque {
            fn algorithm(&self) -> &str {
                "opaque"
            }
            fn dims(&self) -> usize {
                2
            }
            fn predict_one(&self, _point: &[f64]) -> Option<usize> {
                None
            }
            fn summary(&self) -> String {
                "opaque".to_string()
            }
        }
        let path = temp_path("opaque");
        let err = save_model(&path, &Opaque).unwrap_err();
        assert!(matches!(err, PersistError::Unsupported(_)), "{err}");
        assert!(!path.exists());
    }

    #[test]
    fn malformed_files_are_rejected_with_context() {
        let path = temp_path("bad");
        for (text, needle) in [
            ("", "empty"),
            ("wrong-magic v1\n", "header"),
            ("adawave-model v999\nalgorithm adawave\n", "version"),
            ("adawave-model v1\nno-algo\n", "algorithm"),
            (
                "adawave-model v1\nalgorithm frobnicate\npayload\n",
                "frobnicate",
            ),
            (
                "adawave-model v1\nalgorithm adawave\ndims banana\n",
                "banana",
            ),
        ] {
            std::fs::write(&path, text).unwrap();
            let err = load_model(&path).map(|_| ()).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_model(Path::new("/definitely/not/here.awm")).map(|_| ()),
            Err(PersistError::Io(_))
        ));
    }
}
