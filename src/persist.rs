//! Versioned model persistence: save a trained [`Model`] to a file and
//! load it back in another process.
//!
//! The format is a dependency-free line-oriented text file (like the
//! workspace's vendored test shims, nothing to install):
//!
//! ```text
//! adawave-model v1
//! algorithm <name>
//! <algorithm-specific payload>
//! ```
//!
//! Floats in payloads are stored as the hex of their IEEE-754 bits, so a
//! save → load → predict roundtrip is *bit-identical* to the in-memory
//! model — the property CI pins end to end through the CLI (`cluster
//! --save-model` → `predict` → diff). The version is checked on load;
//! bumping the payload shape means bumping `v1`.
//!
//! Supported algorithms: `adawave` (the grid model) and the centroid
//! models (`kmeans`, `dipmeans`). Other models return
//! [`PersistError::Unsupported`] — their serving models either memorize
//! the training batch (the fallback) or carry non-trivially serializable
//! state; refit them from data instead.

use std::path::Path;

use adawave_api::Model;
use adawave_baselines::CentroidModel;
use adawave_core::AdaWaveModel;

/// Leading magic of every model file.
const MAGIC: &str = "adawave-model";
/// Current format version.
const VERSION: &str = "v1";

/// Errors produced while saving or loading a model file.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The file is not a well-formed model file of the current version.
    Format(String),
    /// The algorithm's model does not support persistence.
    Unsupported(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file i/o: {e}"),
            PersistError::Format(context) => write!(f, "bad model file: {context}"),
            PersistError::Unsupported(algorithm) => write!(
                f,
                "model persistence is not supported for '{algorithm}' \
                 (supported: adawave, kmeans, dipmeans)"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Save a trained model to `path` in the versioned text format.
///
/// Errors with [`PersistError::Unsupported`] when the model's
/// [`Model::serialize`] returns `None`.
pub fn save_model(path: &Path, model: &dyn Model) -> Result<(), PersistError> {
    let payload = model
        .serialize()
        .ok_or_else(|| PersistError::Unsupported(model.algorithm().to_string()))?;
    let text = format!(
        "{MAGIC} {VERSION}\nalgorithm {}\n{payload}",
        model.algorithm()
    );
    std::fs::write(path, text)?;
    Ok(())
}

/// Load a model saved by [`save_model`], dispatching on the algorithm
/// named in the header.
pub fn load_model(path: &Path) -> Result<Box<dyn Model>, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| PersistError::Format("empty file".to_string()))?;
    match header.split_once(' ') {
        Some((magic, version)) if magic == MAGIC => {
            if version != VERSION {
                return Err(PersistError::Format(format!(
                    "format version '{version}' (this build reads {VERSION})"
                )));
            }
        }
        _ => {
            return Err(PersistError::Format(format!(
                "missing '{MAGIC} {VERSION}' header"
            )))
        }
    }
    let algorithm = lines
        .next()
        .and_then(|line| line.strip_prefix("algorithm "))
        .ok_or_else(|| PersistError::Format("missing 'algorithm <name>' line".to_string()))?
        .to_string();
    let payload_start = text
        .splitn(3, '\n')
        .nth(2)
        .ok_or_else(|| PersistError::Format("missing payload".to_string()))?;
    match algorithm.as_str() {
        "adawave" => AdaWaveModel::deserialize(payload_start)
            .map(|m| Box::new(m) as Box<dyn Model>)
            .map_err(PersistError::Format),
        "kmeans" | "dipmeans" => CentroidModel::deserialize(&algorithm, payload_start)
            .map(|m| Box::new(m) as Box<dyn Model>)
            .map_err(PersistError::Format),
        other => Err(PersistError::Unsupported(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_registry, AlgorithmSpec, PointMatrix};
    use adawave_data::{shapes, Rng};

    fn noisy_blobs() -> PointMatrix {
        let mut rng = Rng::new(21);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.02, 0.02], 200);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.02, 0.02], 200);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        points
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("adawave_persist_{name}_{}.awm", std::process::id()))
    }

    #[test]
    fn adawave_and_kmeans_models_round_trip_through_files() {
        let registry = standard_registry();
        let points = noisy_blobs();
        for (name, spec) in [
            ("adawave", AlgorithmSpec::new("adawave").with("scale", 32)),
            (
                "kmeans",
                AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7),
            ),
        ] {
            let outcome = registry.fit_model(&spec, points.view()).unwrap();
            let path = temp_path(name);
            save_model(&path, outcome.model.as_ref()).unwrap();
            let loaded = load_model(&path).unwrap();
            assert_eq!(loaded.algorithm(), name);
            // Bit-identical labels through the file roundtrip.
            assert_eq!(
                loaded.predict(points.view()).unwrap(),
                outcome.clustering,
                "{name}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unsupported_models_error_instead_of_writing_garbage() {
        let registry = standard_registry();
        let points = noisy_blobs();
        let outcome = registry
            .fit_model(
                &AlgorithmSpec::new("dbscan").with("eps", 0.08),
                points.view(),
            )
            .unwrap();
        let path = temp_path("dbscan");
        let err = save_model(&path, outcome.model.as_ref()).unwrap_err();
        assert!(matches!(err, PersistError::Unsupported(_)), "{err}");
        assert!(!path.exists());
    }

    #[test]
    fn malformed_files_are_rejected_with_context() {
        let path = temp_path("bad");
        for (text, needle) in [
            ("", "empty"),
            ("wrong-magic v1\n", "header"),
            ("adawave-model v999\nalgorithm adawave\n", "version"),
            ("adawave-model v1\nno-algo\n", "algorithm"),
            (
                "adawave-model v1\nalgorithm frobnicate\npayload\n",
                "frobnicate",
            ),
            (
                "adawave-model v1\nalgorithm adawave\ndims banana\n",
                "banana",
            ),
        ] {
            std::fs::write(&path, text).unwrap();
            let err = load_model(&path).map(|_| ()).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_model(Path::new("/definitely/not/here.awm")).map(|_| ()),
            Err(PersistError::Io(_))
        ));
    }
}
