//! Property-based tests for the clustering metrics.

use adawave_metrics::{
    adjusted_rand_index, ami, completeness, homogeneity, normalized_mutual_information, purity,
    v_measure, AverageMethod, ContingencyTable,
};
use proptest::prelude::*;

fn labels_strategy(max_classes: usize, len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..max_classes, len..len + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ami_identity_is_one(labels in labels_strategy(5, 40)) {
        // Needs at least two distinct classes for the score to be defined as 1;
        // a single class is the degenerate "both trivial" case, also 1.
        let score = ami(&labels, &labels);
        prop_assert!((score - 1.0).abs() < 1e-9, "got {score}");
    }

    #[test]
    fn ami_is_symmetric(a in labels_strategy(4, 30), b in labels_strategy(4, 30)) {
        prop_assert!((ami(&a, &b) - ami(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn ami_invariant_to_label_permutation(labels in labels_strategy(4, 30), truth in labels_strategy(3, 30)) {
        // Applying an injective rename to the prediction labels leaves AMI unchanged.
        let renamed: Vec<usize> = labels.iter().map(|&l| l * 17 + 3).collect();
        let a = ami(&truth, &labels);
        let b = ami(&truth, &renamed);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ami_upper_bound(a in labels_strategy(5, 40), b in labels_strategy(5, 40)) {
        prop_assert!(ami(&a, &b) <= 1.0 + 1e-12);
    }

    #[test]
    fn nmi_bounds(a in labels_strategy(5, 40), b in labels_strategy(5, 40)) {
        let s = normalized_mutual_information(&a, &b, AverageMethod::Arithmetic);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
    }

    #[test]
    fn ari_symmetric_and_bounded(a in labels_strategy(4, 30), b in labels_strategy(4, 30)) {
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-12);
        prop_assert!(ab >= -1.0 - 1e-12);
    }

    #[test]
    fn ari_identity_is_one(labels in labels_strategy(6, 25)) {
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn v_measure_is_harmonic_mean(a in labels_strategy(4, 30), b in labels_strategy(4, 30)) {
        let h = homogeneity(&a, &b);
        let c = completeness(&a, &b);
        let v = v_measure(&a, &b);
        if h + c > 0.0 {
            prop_assert!((v - 2.0 * h * c / (h + c)).abs() < 1e-9);
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn homogeneity_completeness_duality(a in labels_strategy(4, 30), b in labels_strategy(4, 30)) {
        // homogeneity(a, b) == completeness(b, a)
        prop_assert!((homogeneity(&a, &b) - completeness(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn purity_bounds_and_monotonicity(truth in labels_strategy(4, 40)) {
        // Purity of the all-singletons prediction is 1; of a single blob it is
        // the share of the majority class.
        let singletons: Vec<usize> = (0..truth.len()).collect();
        prop_assert!((purity(&truth, &singletons) - 1.0).abs() < 1e-12);
        let blob = vec![0usize; truth.len()];
        let mut counts = std::collections::HashMap::new();
        for &t in &truth {
            *counts.entry(t).or_insert(0usize) += 1;
        }
        let majority = *counts.values().max().unwrap() as f64 / truth.len() as f64;
        prop_assert!((purity(&truth, &blob) - majority).abs() < 1e-12);
    }

    #[test]
    fn contingency_marginals_consistent(a in labels_strategy(5, 50), b in labels_strategy(5, 50)) {
        let t = ContingencyTable::from_labels(&a, &b);
        prop_assert_eq!(t.total() as usize, a.len());
        prop_assert_eq!(t.row_sums().iter().sum::<u64>(), t.total());
        prop_assert_eq!(t.col_sums().iter().sum::<u64>(), t.total());
        let mut cell_sum = 0;
        for i in 0..t.rows() {
            for j in 0..t.cols() {
                cell_sum += t.count(i, j);
            }
        }
        prop_assert_eq!(cell_sum, t.total());
    }

    #[test]
    fn ami_of_refinement_is_positive(truth in labels_strategy(3, 60)) {
        // A strict refinement of the truth (split each class deterministically
        // in two) still shares information with it.
        let refined: Vec<usize> = truth.iter().enumerate().map(|(i, &l)| l * 2 + (i % 2)).collect();
        let distinct = truth.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assume!(distinct >= 2);
        prop_assert!(ami(&truth, &refined) > 0.0);
    }
}

mod internal_properties {
    use adawave_api::PointMatrix;
    use adawave_metrics::{calinski_harabasz, davies_bouldin, dunn_index, silhouette_score};
    use proptest::prelude::*;

    /// Random labeled points in the unit square with up to `k` clusters.
    fn labeled_points(k: usize) -> impl Strategy<Value = (PointMatrix, Vec<Option<usize>>)> {
        prop::collection::vec(
            (
                (0.0f64..1.0, 0.0f64..1.0),
                prop::option::weighted(0.9, 0usize..k),
            ),
            4..60,
        )
        .prop_map(|rows| {
            let mut points = PointMatrix::with_capacity(2, rows.len());
            for ((x, y), _) in &rows {
                points.push_row(&[*x, *y]);
            }
            let labels = rows.iter().map(|(_, l)| *l).collect();
            (points, labels)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn silhouette_is_bounded((points, labels) in labeled_points(4)) {
            let s = silhouette_score(points.view(), &labels);
            prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
        }

        #[test]
        fn davies_bouldin_and_ch_and_dunn_are_non_negative((points, labels) in labeled_points(4)) {
            prop_assert!(davies_bouldin(points.view(), &labels) >= 0.0);
            prop_assert!(calinski_harabasz(points.view(), &labels) >= 0.0);
            prop_assert!(dunn_index(points.view(), &labels) >= 0.0);
        }

        #[test]
        fn indices_are_invariant_to_cluster_id_permutation((points, labels) in labeled_points(3)) {
            // Renaming cluster ids must not change any geometric index.
            let renamed: Vec<Option<usize>> = labels.iter().map(|l| l.map(|c| 2 - c)).collect();
            let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
            prop_assert!(close(
                silhouette_score(points.view(), &labels),
                silhouette_score(points.view(), &renamed)
            ));
            prop_assert!(close(
                davies_bouldin(points.view(), &labels),
                davies_bouldin(points.view(), &renamed)
            ));
            prop_assert!(close(
                calinski_harabasz(points.view(), &labels),
                calinski_harabasz(points.view(), &renamed)
            ));
            prop_assert!(close(
                dunn_index(points.view(), &labels),
                dunn_index(points.view(), &renamed)
            ));
        }

        #[test]
        fn indices_are_invariant_to_global_translation((points, labels) in labeled_points(3), shift in -10.0f64..10.0) {
            let mut moved = points.clone();
            for v in moved.as_mut_slice() {
                *v += shift;
            }
            let close = |a: f64, b: f64| (a - b).abs() < 1e-6 * (1.0 + a.abs());
            prop_assert!(close(
                silhouette_score(points.view(), &labels),
                silhouette_score(moved.view(), &labels)
            ));
            prop_assert!(close(
                davies_bouldin(points.view(), &labels),
                davies_bouldin(moved.view(), &labels)
            ));
            prop_assert!(close(
                dunn_index(points.view(), &labels),
                dunn_index(moved.view(), &labels)
            ));
        }
    }
}
