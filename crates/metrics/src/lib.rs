//! # adawave-metrics
//!
//! Clustering-quality metrics for the AdaWave reproduction.
//!
//! The paper evaluates every algorithm with **Adjusted Mutual Information**
//! (AMI), "a standard metric ranging from 0 at worst to 1 at best", and for
//! the synthetic experiments scores only the points that truly belong to a
//! cluster (noise points are excluded from the ground truth). This crate
//! implements AMI with the exact expected-mutual-information correction
//! (hypergeometric model), plus the related external metrics commonly used
//! as sanity checks: NMI, the Adjusted Rand Index, V-measure (homogeneity /
//! completeness) and purity. For users without ground truth the [`internal`]
//! module adds geometry-only validation indices (silhouette, Davies–Bouldin,
//! Calinski–Harabasz, Dunn).
//!
//! ```
//! use adawave_metrics::{ami, adjusted_rand_index};
//!
//! let truth =      vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
//! let prediction = vec![1, 1, 1, 0, 0, 0, 2, 2, 2]; // same partition, renamed
//! assert!((ami(&truth, &prediction) - 1.0).abs() < 1e-9);
//! assert!((adjusted_rand_index(&truth, &prediction) - 1.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ami;
pub mod ari;
pub mod contingency;
pub mod entropy;
pub mod external;
pub mod internal;
pub mod labels;
pub mod special;

pub use ami::{
    adjusted_mutual_information, ami, ami_ignoring_noise, normalized_mutual_information,
    AverageMethod,
};
pub use ari::{adjusted_rand_index, rand_index};
pub use contingency::ContingencyTable;
pub use entropy::{entropy_of_labels, mutual_information};
pub use external::{completeness, homogeneity, purity, v_measure};
pub use internal::{calinski_harabasz, davies_bouldin, dunn_index, silhouette_score};
pub use labels::{labels_from_options, relabel_to_compact, NOISE_LABEL};
pub use special::{ln_binomial, ln_factorial, ln_gamma};
