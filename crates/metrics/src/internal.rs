//! Internal (ground-truth-free) cluster validation indices.
//!
//! The paper scores every experiment with AMI against known labels, but a
//! downstream user of AdaWave rarely has ground truth. These indices rate a
//! clustering from the geometry of the points alone and are useful for
//! picking a grid scale or threshold strategy in the wild:
//!
//! * [`silhouette_score`] — mean silhouette width, in `[-1, 1]`, higher is
//!   better.
//! * [`davies_bouldin`] — average worst-case ratio of within-cluster scatter
//!   to between-cluster separation, lower is better.
//! * [`calinski_harabasz`] — ratio of between-group to within-group
//!   dispersion, higher is better.
//! * [`dunn_index`] — smallest inter-cluster distance over largest cluster
//!   diameter, higher is better.
//!
//! All functions take the points as a flat row-major
//! [`adawave_api::PointsView`] and per-point labels as `Option<usize>`;
//! `None` marks noise and is excluded from the computation, mirroring how
//! the paper excludes noise points from AMI on the synthetic benchmarks.

use adawave_api::{PointMatrix, PointsView};
use adawave_linalg::{euclidean_distance as distance, squared_distance};

/// Collect the indices of the members of each cluster, ignoring noise.
/// Returns an empty vector if labels and points disagree in length.
fn members_by_cluster(labels: &[Option<usize>]) -> Vec<Vec<usize>> {
    let k = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let mut members = vec![Vec::new(); k];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            members[*c].push(i);
        }
    }
    members.retain(|m| !m.is_empty());
    members
}

/// Centroid of the points at the given indices.
fn centroid(points: PointsView<'_>, indices: &[usize]) -> Vec<f64> {
    let mut c = vec![0.0; points.dims()];
    for &i in indices {
        for (acc, v) in c.iter_mut().zip(points.row(i).iter()) {
            *acc += v;
        }
    }
    for v in c.iter_mut() {
        *v /= indices.len() as f64;
    }
    c
}

/// Mean silhouette width over all non-noise points.
///
/// For each point `i`, `a(i)` is its mean distance to the other members of
/// its own cluster and `b(i)` the smallest mean distance to any other
/// cluster; the silhouette of `i` is `(b - a) / max(a, b)`. Returns `0.0`
/// when fewer than two clusters have at least one member, or when every
/// cluster is a singleton (the index is undefined in both cases).
///
/// Complexity is `O(n²)` over the non-noise points, so subsample large
/// datasets before calling this.
pub fn silhouette_score(points: PointsView<'_>, labels: &[Option<usize>]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let members = members_by_cluster(labels);
    if members.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (ci, cluster) in members.iter().enumerate() {
        if cluster.len() < 2 {
            // The silhouette of a singleton is defined as 0.
            counted += cluster.len();
            continue;
        }
        for &i in cluster {
            let a: f64 = cluster
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| distance(points.row(i), points.row(j)))
                .sum::<f64>()
                / (cluster.len() - 1) as f64;
            let mut b = f64::MAX;
            for (cj, other) in members.iter().enumerate() {
                if cj == ci {
                    continue;
                }
                let mean: f64 = other
                    .iter()
                    .map(|&j| distance(points.row(i), points.row(j)))
                    .sum::<f64>()
                    / other.len() as f64;
                if mean < b {
                    b = mean;
                }
            }
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Davies–Bouldin index (lower is better, 0 is ideal).
///
/// For each cluster the scatter is the mean distance of its members to its
/// centroid; the index averages, over clusters, the worst ratio
/// `(scatter_i + scatter_j) / distance(centroid_i, centroid_j)`. Returns
/// `0.0` when fewer than two clusters have members.
pub fn davies_bouldin(points: PointsView<'_>, labels: &[Option<usize>]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let members = members_by_cluster(labels);
    let k = members.len();
    if k < 2 {
        return 0.0;
    }
    // Centroids in one flat matrix, same layout as the points themselves.
    let centroids: PointMatrix = members.iter().map(|m| centroid(points, m)).collect();
    let scatter: Vec<f64> = members
        .iter()
        .zip(centroids.rows())
        .map(|(m, c)| m.iter().map(|&i| distance(points.row(i), c)).sum::<f64>() / m.len() as f64)
        .collect();
    let mut sum = 0.0;
    for i in 0..k {
        let mut worst: f64 = 0.0;
        for j in 0..k {
            if i == j {
                continue;
            }
            let separation = distance(centroids.row(i), centroids.row(j));
            if separation > 0.0 {
                worst = worst.max((scatter[i] + scatter[j]) / separation);
            }
        }
        sum += worst;
    }
    sum / k as f64
}

/// Calinski–Harabasz index (a.k.a. variance ratio criterion; higher is
/// better).
///
/// `CH = (between-group dispersion / (k - 1)) / (within-group dispersion /
/// (n - k))`. Returns `0.0` when fewer than two clusters have members or
/// when the within-group dispersion is zero.
pub fn calinski_harabasz(points: PointsView<'_>, labels: &[Option<usize>]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let members = members_by_cluster(labels);
    let k = members.len();
    if k < 2 {
        return 0.0;
    }
    let all: Vec<usize> = members.iter().flatten().copied().collect();
    let n = all.len();
    if n <= k {
        return 0.0;
    }
    let overall = centroid(points, &all);
    let mut between = 0.0;
    let mut within = 0.0;
    for m in &members {
        let c = centroid(points, m);
        between += m.len() as f64 * squared_distance(&c, &overall);
        within += m
            .iter()
            .map(|&i| squared_distance(points.row(i), &c))
            .sum::<f64>();
    }
    if within <= 0.0 {
        return 0.0;
    }
    (between / (k - 1) as f64) / (within / (n - k) as f64)
}

/// Dunn index: minimum inter-cluster (single-linkage) distance divided by
/// the maximum cluster diameter (higher is better).
///
/// Returns `0.0` when fewer than two clusters have members or when every
/// cluster has zero diameter. `O(n²)` over non-noise points.
pub fn dunn_index(points: PointsView<'_>, labels: &[Option<usize>]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let members = members_by_cluster(labels);
    let k = members.len();
    if k < 2 {
        return 0.0;
    }
    // Both extrema scan *squared* distances and take the root once at the
    // edge: IEEE sqrt is monotone, so min/max commute with it and the
    // result is bit-identical to rooting inside the loops.
    let mut max_diameter_sq: f64 = 0.0;
    for m in &members {
        for (a_pos, &a) in m.iter().enumerate() {
            for &b in &m[a_pos + 1..] {
                max_diameter_sq =
                    max_diameter_sq.max(squared_distance(points.row(a), points.row(b)));
            }
        }
    }
    let max_diameter = max_diameter_sq.sqrt();
    if max_diameter <= 0.0 {
        return 0.0;
    }
    let mut min_separation_sq = f64::MAX;
    for i in 0..k {
        for j in i + 1..k {
            for &a in &members[i] {
                for &b in &members[j] {
                    min_separation_sq =
                        min_separation_sq.min(squared_distance(points.row(a), points.row(b)));
                }
            }
        }
    }
    min_separation_sq.sqrt() / max_diameter
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;

    fn matrix(rows: Vec<Vec<f64>>) -> PointMatrix {
        PointMatrix::from_rows(rows).unwrap()
    }

    /// Two tight, well separated clusters of 4 points each.
    fn separated() -> (PointMatrix, Vec<Option<usize>>) {
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        for i in 0..4 {
            points.push_row(&[0.0 + 0.01 * i as f64, 0.0]);
            labels.push(Some(0));
        }
        for i in 0..4 {
            points.push_row(&[10.0 + 0.01 * i as f64, 10.0]);
            labels.push(Some(1));
        }
        (points, labels)
    }

    /// The same points with the clusters interleaved (a bad clustering).
    fn shuffled_labels() -> (PointMatrix, Vec<Option<usize>>) {
        let (points, _) = separated();
        let labels = (0..points.len()).map(|i| Some(i % 2)).collect();
        (points, labels)
    }

    #[test]
    fn silhouette_high_for_separated_low_for_shuffled() {
        let (points, labels) = separated();
        let good = silhouette_score(points.view(), &labels);
        assert!(good > 0.95, "good {good}");
        let (points, labels) = shuffled_labels();
        let bad = silhouette_score(points.view(), &labels);
        assert!(bad < 0.1, "bad {bad}");
        assert!(good > bad);
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let points = matrix(vec![vec![0.0], vec![1.0]]);
        // Single cluster: undefined, returns 0.
        assert_eq!(silhouette_score(points.view(), &[Some(0), Some(0)]), 0.0);
        // All noise: returns 0.
        assert_eq!(silhouette_score(points.view(), &[None, None]), 0.0);
        // Two singleton clusters: silhouette of singletons is 0.
        assert_eq!(silhouette_score(points.view(), &[Some(0), Some(1)]), 0.0);
    }

    #[test]
    fn silhouette_ignores_noise_points() {
        let (mut points, mut labels) = separated();
        let clean = silhouette_score(points.view(), &labels);
        // Add garbage points marked as noise: the score must not change.
        points.push_row(&[5.0, 5.0]);
        labels.push(None);
        points.push_row(&[-3.0, 8.0]);
        labels.push(None);
        let with_noise = silhouette_score(points.view(), &labels);
        assert!((clean - with_noise).abs() < 1e-12);
    }

    #[test]
    fn davies_bouldin_prefers_separated_clusters() {
        let (points, labels) = separated();
        let good = davies_bouldin(points.view(), &labels);
        let (points, labels) = shuffled_labels();
        let bad = davies_bouldin(points.view(), &labels);
        assert!(good < bad, "good {good} bad {bad}");
        assert!(good < 0.1);
    }

    #[test]
    fn davies_bouldin_degenerate_is_zero() {
        let points = matrix(vec![vec![0.0], vec![1.0]]);
        assert_eq!(davies_bouldin(points.view(), &[Some(0), Some(0)]), 0.0);
        assert_eq!(davies_bouldin(points.view(), &[None, None]), 0.0);
    }

    #[test]
    fn calinski_harabasz_prefers_separated_clusters() {
        let (points, labels) = separated();
        let good = calinski_harabasz(points.view(), &labels);
        let (points, labels) = shuffled_labels();
        let bad = calinski_harabasz(points.view(), &labels);
        assert!(good > 100.0 * bad.max(1e-12), "good {good} bad {bad}");
    }

    #[test]
    fn calinski_harabasz_degenerate_is_zero() {
        let points = matrix(vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(
            calinski_harabasz(points.view(), &[Some(0), Some(0), Some(0)]),
            0.0
        );
        // n == k (all singletons) is undefined -> 0.
        assert_eq!(
            calinski_harabasz(points.view(), &[Some(0), Some(1), Some(2)]),
            0.0
        );
    }

    #[test]
    fn dunn_index_prefers_separated_clusters() {
        let (points, labels) = separated();
        let good = dunn_index(points.view(), &labels);
        let (points, labels) = shuffled_labels();
        let bad = dunn_index(points.view(), &labels);
        assert!(good > 10.0, "good {good}");
        assert!(bad <= 1.5, "bad {bad}");
    }

    #[test]
    fn dunn_index_degenerate_is_zero() {
        let points = matrix(vec![vec![0.0], vec![0.0]]);
        // Two clusters with identical points: zero diameter AND zero
        // separation — defined as 0 here.
        assert_eq!(dunn_index(points.view(), &[Some(0), Some(1)]), 0.0);
        assert_eq!(dunn_index(points.view(), &[Some(0), Some(0)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let points = matrix(vec![vec![0.0]]);
        silhouette_score(points.view(), &[Some(0), Some(1)]);
    }

    #[test]
    fn indices_agree_on_ranking_three_blobs() {
        // Three blobs; compare correct labels against a 2-cluster merge.
        let mut points = PointMatrix::new(2);
        let mut good = Vec::new();
        let mut merged = Vec::new();
        for c in 0..3usize {
            for i in 0..6 {
                points.push_row(&[c as f64 * 5.0 + 0.05 * i as f64, 0.0]);
                good.push(Some(c));
                merged.push(Some(c.min(1)));
            }
        }
        assert!(silhouette_score(points.view(), &good) > silhouette_score(points.view(), &merged));
        assert!(davies_bouldin(points.view(), &good) < davies_bouldin(points.view(), &merged));
        assert!(
            calinski_harabasz(points.view(), &good) > calinski_harabasz(points.view(), &merged)
        );
        assert!(dunn_index(points.view(), &good) > dunn_index(points.view(), &merged));
    }
}
