//! Special functions: log-gamma, log-factorial and log-binomial.
//!
//! The expected-mutual-information correction of AMI needs factorials of
//! values up to the dataset size (hundreds of thousands for the Roadmap
//! experiment), so everything is computed in log space. `ln_gamma` uses the
//! Lanczos approximation; `ln_factorial` caches a cumulative table for small
//! arguments and falls back to `ln_gamma` for large ones.

/// Lanczos coefficients (g = 7, n = 9), the standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accuracy is ~1e-13 relative over the range used here. Returns
/// `f64::INFINITY` for `x <= 0` (poles and the undefined region are not
/// needed by the metrics).
pub fn ln_gamma(x: f64) -> f64 {
    if x <= 0.0 {
        return f64::INFINITY;
    }
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the cached `ln(k!)` table.
const FACTORIAL_TABLE_SIZE: usize = 4096;

fn factorial_table() -> &'static [f64; FACTORIAL_TABLE_SIZE] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; FACTORIAL_TABLE_SIZE]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0.0; FACTORIAL_TABLE_SIZE];
        for k in 2..FACTORIAL_TABLE_SIZE {
            table[k] = table[k - 1] + (k as f64).ln();
        }
        table
    })
}

/// Natural log of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < FACTORIAL_TABLE_SIZE {
        factorial_table()[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_of_integers_matches_factorials() {
        // Gamma(n) = (n-1)!
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in factorials.iter().enumerate() {
            let expected = f.ln();
            let got = ln_gamma((n + 1) as f64);
            assert!(
                (got - expected).abs() < 1e-10,
                "Gamma({}) -> {got} vs {expected}",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(0.5) = sqrt(pi)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
        // Gamma(1.5) = sqrt(pi)/2
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_nonpositive_is_infinite() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.5).is_infinite());
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3_628_800.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_table_and_gamma_agree_at_boundary() {
        let just_below = ln_factorial((FACTORIAL_TABLE_SIZE - 1) as u64);
        let via_gamma = ln_gamma(FACTORIAL_TABLE_SIZE as f64);
        assert!((just_below - via_gamma).abs() < 1e-7 * via_gamma);
    }

    #[test]
    fn ln_factorial_large_argument_uses_gamma() {
        let n = 1_000_000u64;
        // Stirling sanity: ln(n!) ~ n ln n - n
        let stirling = n as f64 * (n as f64).ln() - n as f64;
        let got = ln_factorial(n);
        assert!((got - stirling) / got < 1e-5);
        assert!(got > stirling);
    }

    #[test]
    fn ln_binomial_known_values() {
        assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 5) - 252.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
    }

    #[test]
    fn ln_binomial_symmetry() {
        for n in [10u64, 100, 1000] {
            for k in [0u64, 1, 3, 7] {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-9, "C({n},{k})");
            }
        }
    }
}
