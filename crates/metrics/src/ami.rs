//! Adjusted and Normalized Mutual Information.
//!
//! AMI corrects mutual information for chance agreement using the expected
//! MI under a hypergeometric model of random labelings with fixed marginals
//! (Vinh, Epps & Bailey, JMLR 2010):
//!
//! `AMI = (MI - E[MI]) / (avg(H(U), H(V)) - E[MI])`
//!
//! This is the metric the paper reports in every experiment.

use crate::contingency::ContingencyTable;
use crate::entropy::{entropy_of_counts, mutual_information};
use crate::special::ln_factorial;

/// How the two entropies are combined in the denominator of AMI/NMI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AverageMethod {
    /// Arithmetic mean (scikit-learn's default, and ours).
    #[default]
    Arithmetic,
    /// Maximum of the two entropies (the original Vinh et al. "max" form).
    Max,
    /// Geometric mean.
    Geometric,
    /// Minimum of the two entropies.
    Min,
}

impl AverageMethod {
    fn combine(&self, hu: f64, hv: f64) -> f64 {
        match self {
            AverageMethod::Arithmetic => 0.5 * (hu + hv),
            AverageMethod::Max => hu.max(hv),
            AverageMethod::Geometric => (hu * hv).sqrt(),
            AverageMethod::Min => hu.min(hv),
        }
    }
}

/// Expected mutual information between two random labelings with the given
/// marginals, under the hypergeometric model.
pub fn expected_mutual_information(table: &ContingencyTable) -> f64 {
    let n = table.total();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let ln_n_fact = ln_factorial(n);
    let mut emi = 0.0;
    for &a in table.row_sums() {
        if a == 0 {
            continue;
        }
        for &b in table.col_sums() {
            if b == 0 {
                continue;
            }
            let lower = 1.max((a + b).saturating_sub(n));
            let upper = a.min(b);
            // Precompute the parts of the hypergeometric log-probability
            // that do not depend on nij.
            let ln_fixed =
                ln_factorial(a) + ln_factorial(b) + ln_factorial(n - a) + ln_factorial(n - b)
                    - ln_n_fact;
            let mut nij = lower;
            while nij <= upper {
                let nij_f = nij as f64;
                let ln_p = ln_fixed
                    - ln_factorial(nij)
                    - ln_factorial(a - nij)
                    - ln_factorial(b - nij)
                    - ln_factorial(n + nij - a - b);
                let term = (nij_f / nf) * ((nf * nij_f) / (a as f64 * b as f64)).ln();
                emi += term * ln_p.exp();
                nij += 1;
            }
        }
    }
    emi
}

/// Adjusted Mutual Information with an explicit averaging method.
///
/// Returns a value `<= 1`, equal to 1 only for identical partitions and
/// close to 0 for independent labelings. Degenerate cases (both labelings
/// constant) return 1.0 if they are identical partitions, else 0.0.
pub fn adjusted_mutual_information(
    truth: &[usize],
    prediction: &[usize],
    method: AverageMethod,
) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    if table.total() == 0 {
        return 0.0;
    }
    let hu = entropy_of_counts(table.row_sums(), table.total());
    let hv = entropy_of_counts(table.col_sums(), table.total());
    // Both partitions are a single cluster: identical by definition.
    if hu == 0.0 && hv == 0.0 {
        return 1.0;
    }
    let mi = mutual_information(&table);
    let emi = expected_mutual_information(&table);
    let denom = method.combine(hu, hv) - emi;
    if denom.abs() < 1e-15 {
        return 0.0;
    }
    let ami = (mi - emi) / denom;
    ami.min(1.0)
}

/// Adjusted Mutual Information with the arithmetic-mean denominator (the
/// scikit-learn default the paper's numbers correspond to).
pub fn ami(truth: &[usize], prediction: &[usize]) -> f64 {
    adjusted_mutual_information(truth, prediction, AverageMethod::Arithmetic)
}

/// AMI computed only over the points whose *true* label is not
/// `noise_label`. This is the protocol of the paper's synthetic experiments:
/// "the AMI only considers the objects which truly belong to a cluster
/// (non-noise points)".
pub fn ami_ignoring_noise(truth: &[usize], prediction: &[usize], noise_label: usize) -> f64 {
    assert_eq!(truth.len(), prediction.len());
    let mut t = Vec::with_capacity(truth.len());
    let mut p = Vec::with_capacity(truth.len());
    for (&a, &b) in truth.iter().zip(prediction.iter()) {
        if a != noise_label {
            t.push(a);
            p.push(b);
        }
    }
    if t.is_empty() {
        return 0.0;
    }
    ami(&t, &p)
}

/// Normalized Mutual Information: `MI / avg(H(U), H(V))`. Not
/// chance-corrected; provided for comparison and sanity checks.
pub fn normalized_mutual_information(
    truth: &[usize],
    prediction: &[usize],
    method: AverageMethod,
) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    if table.total() == 0 {
        return 0.0;
    }
    let hu = entropy_of_counts(table.row_sums(), table.total());
    let hv = entropy_of_counts(table.col_sums(), table.total());
    if hu == 0.0 && hv == 0.0 {
        return 1.0;
    }
    let denom = method.combine(hu, hv);
    if denom <= 0.0 {
        return 0.0;
    }
    (mutual_information(&table) / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0, 0, 0, 1, 1, 1, 2, 2];
        assert!((ami(&labels, &labels) - 1.0).abs() < 1e-9);
        let renamed: Vec<usize> = labels.iter().map(|&l| (l + 5) * 3).collect();
        assert!((ami(&labels, &renamed) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // A prediction that splits each true class in half carries no
        // information about the truth; AMI must be ~0 (can be slightly
        // negative).
        let truth: Vec<usize> = (0..200).map(|i| i / 100).collect();
        let pred: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let score = ami(&truth, &pred);
        assert!(score.abs() < 0.05, "expected ~0, got {score}");
    }

    #[test]
    fn single_cluster_prediction_scores_zero() {
        let truth: Vec<usize> = (0..60).map(|i| i / 20).collect();
        let pred = vec![0usize; 60];
        let score = ami(&truth, &pred);
        assert!(score.abs() < 1e-9, "got {score}");
    }

    #[test]
    fn both_single_cluster_scores_one() {
        let truth = vec![0usize; 10];
        let pred = vec![5usize; 10];
        assert_eq!(ami(&truth, &pred), 1.0);
    }

    #[test]
    fn ami_is_symmetric() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1, 2, 2, 1, 0];
        let b = vec![1, 1, 0, 0, 2, 2, 2, 0, 1, 1, 0, 2];
        assert!((ami(&a, &b) - ami(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn ami_penalizes_over_clustering_more_than_nmi() {
        // Splitting every true class into many small clusters inflates NMI
        // but AMI corrects for the chance agreement.
        let truth: Vec<usize> = (0..120).map(|i| i / 60).collect();
        let pred: Vec<usize> = (0..120).map(|i| i / 5).collect();
        let nmi = normalized_mutual_information(&truth, &pred, AverageMethod::Arithmetic);
        let ami_score = ami(&truth, &pred);
        assert!(ami_score < nmi);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        let pred = vec![0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 0, 2];
        let score = ami(&truth, &pred);
        assert!(score > 0.1 && score < 1.0, "got {score}");
    }

    #[test]
    fn expected_mi_positive_and_below_mi_for_correlated() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 0];
        let table = ContingencyTable::from_labels(&truth, &pred);
        let emi = expected_mutual_information(&table);
        assert!(emi > 0.0);
        assert!(emi < entropy_of_counts(table.row_sums(), table.total()));
    }

    #[test]
    fn ami_ignoring_noise_matches_manual_filter() {
        const NOISE: usize = 99;
        let truth = vec![0, 0, 1, 1, NOISE, NOISE, NOISE];
        let pred = vec![0, 0, 1, 1, 0, 1, 1];
        let masked = ami_ignoring_noise(&truth, &pred, NOISE);
        // On the non-noise subset the prediction is perfect.
        assert!((masked - 1.0).abs() < 1e-9);
        // Whereas the unmasked score is lower.
        assert!(ami(&truth, &pred) < masked);
    }

    #[test]
    fn ami_ignoring_noise_all_noise_returns_zero() {
        let truth = vec![9, 9, 9];
        let pred = vec![0, 1, 2];
        assert_eq!(ami_ignoring_noise(&truth, &pred, 9), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(ami(&[], &[]), 0.0);
        assert_eq!(
            normalized_mutual_information(&[], &[], AverageMethod::Arithmetic),
            0.0
        );
    }

    #[test]
    fn nmi_equals_one_for_identical() {
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let nmi = normalized_mutual_information(&labels, &labels, AverageMethod::Geometric);
        assert!((nmi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_methods_order() {
        // For a fixed pair of labelings: min >= arithmetic/geometric >= max
        // in terms of the resulting normalized score denominators, so the
        // scores order the other way around.
        let truth = vec![0, 0, 0, 0, 1, 1, 2, 2, 2, 1];
        let pred = vec![0, 0, 1, 1, 1, 1, 2, 2, 0, 2];
        let max = normalized_mutual_information(&truth, &pred, AverageMethod::Max);
        let arith = normalized_mutual_information(&truth, &pred, AverageMethod::Arithmetic);
        let min = normalized_mutual_information(&truth, &pred, AverageMethod::Min);
        assert!(max <= arith + 1e-12);
        assert!(arith <= min + 1e-12);
    }
}
