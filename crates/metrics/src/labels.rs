//! Label vector utilities shared by all metrics.

/// Conventional label used for "noise" when converting optional cluster
/// assignments to dense label vectors. Chosen large enough to never collide
/// with real cluster ids.
pub const NOISE_LABEL: usize = usize::MAX;

/// Convert a vector of optional cluster assignments (as produced by
/// AdaWave / DBSCAN, where `None` means noise) into a plain label vector,
/// mapping `None` to [`NOISE_LABEL`].
pub fn labels_from_options(assignment: &[Option<usize>]) -> Vec<usize> {
    assignment
        .iter()
        .map(|a| a.unwrap_or(NOISE_LABEL))
        .collect()
}

/// Relabel an arbitrary label vector to compact ids `0..k`, preserving the
/// partition. Returns the relabeled vector and `k`.
pub fn relabel_to_compact(labels: &[usize]) -> (Vec<usize>, usize) {
    let mut mapping = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = mapping.len();
        let id = *mapping.entry(l).or_insert(next);
        out.push(id);
    }
    (out, mapping.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_to_labels() {
        let assignment = vec![Some(0), None, Some(2), Some(0)];
        let labels = labels_from_options(&assignment);
        assert_eq!(labels, vec![0, NOISE_LABEL, 2, 0]);
    }

    #[test]
    fn relabel_compacts_and_preserves_partition() {
        let labels = vec![42, 7, 42, 100, 7];
        let (compact, k) = relabel_to_compact(&labels);
        assert_eq!(k, 3);
        assert_eq!(compact, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn relabel_empty() {
        let (compact, k) = relabel_to_compact(&[]);
        assert!(compact.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn relabel_noise_label_is_just_another_class() {
        let labels = vec![NOISE_LABEL, 0, NOISE_LABEL];
        let (compact, k) = relabel_to_compact(&labels);
        assert_eq!(k, 2);
        assert_eq!(compact[0], compact[2]);
        assert_ne!(compact[0], compact[1]);
    }
}
