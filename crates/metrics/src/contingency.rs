//! Contingency tables between two labelings of the same points.

/// A contingency table: `counts[i][j]` is the number of points with true
/// class `i` and predicted cluster `j` (after compaction of both label
/// sets).
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    counts: Vec<Vec<u64>>,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    total: u64,
}

impl ContingencyTable {
    /// Build a contingency table from two equal-length label vectors.
    /// Labels may be arbitrary `usize` values; they are compacted
    /// internally.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn from_labels(truth: &[usize], prediction: &[usize]) -> Self {
        assert_eq!(
            truth.len(),
            prediction.len(),
            "contingency: label vectors must have equal length"
        );
        let (truth_compact, rows) = crate::labels::relabel_to_compact(truth);
        let (pred_compact, cols) = crate::labels::relabel_to_compact(prediction);
        let mut counts = vec![vec![0u64; cols]; rows];
        for (&t, &p) in truth_compact.iter().zip(pred_compact.iter()) {
            counts[t][p] += 1;
        }
        Self::from_counts(counts)
    }

    /// Build directly from a count matrix.
    pub fn from_counts(counts: Vec<Vec<u64>>) -> Self {
        let rows = counts.len();
        let cols = counts.first().map(|r| r.len()).unwrap_or(0);
        let mut row_sums = vec![0u64; rows];
        let mut col_sums = vec![0u64; cols];
        let mut total = 0u64;
        for (i, row) in counts.iter().enumerate() {
            assert_eq!(row.len(), cols, "contingency: ragged count matrix");
            for (j, &c) in row.iter().enumerate() {
                row_sums[i] += c;
                col_sums[j] += c;
                total += c;
            }
        }
        Self {
            counts,
            row_sums,
            col_sums,
            total,
        }
    }

    /// Number of true classes (rows).
    pub fn rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of predicted clusters (columns).
    pub fn cols(&self) -> usize {
        self.col_sums.len()
    }

    /// Count of points with true class `i` and prediction `j`.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i][j]
    }

    /// Row marginals (true class sizes).
    pub fn row_sums(&self) -> &[u64] {
        &self.row_sums
    }

    /// Column marginals (predicted cluster sizes).
    pub fn col_sums(&self) -> &[u64] {
        &self.col_sums
    }

    /// Total number of points.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_counts_pairs() {
        let truth = vec![0, 0, 1, 1, 1, 2];
        let pred = vec![0, 0, 0, 1, 1, 1];
        let t = ContingencyTable::from_labels(&truth, &pred);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.count(0, 0), 2);
        assert_eq!(t.count(1, 0), 1);
        assert_eq!(t.count(1, 1), 2);
        assert_eq!(t.count(2, 1), 1);
        assert_eq!(t.total(), 6);
        assert_eq!(t.row_sums(), &[2, 3, 1]);
        assert_eq!(t.col_sums(), &[3, 3]);
    }

    #[test]
    fn arbitrary_label_values_are_compacted() {
        let truth = vec![100, 100, 7];
        let pred = vec![usize::MAX, 3, 3];
        let t = ContingencyTable::from_labels(&truth, &pred);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn empty_labels() {
        let t = ContingencyTable::from_labels(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = ContingencyTable::from_labels(&[0, 1], &[0]);
    }

    #[test]
    fn marginals_sum_to_total() {
        let truth = vec![0, 1, 2, 0, 1, 2, 0, 0];
        let pred = vec![1, 1, 0, 0, 1, 0, 1, 1];
        let t = ContingencyTable::from_labels(&truth, &pred);
        assert_eq!(t.row_sums().iter().sum::<u64>(), t.total());
        assert_eq!(t.col_sums().iter().sum::<u64>(), t.total());
    }
}
