//! Rand index and Adjusted Rand Index.

use crate::ContingencyTable;

fn choose2(x: u64) -> f64 {
    let x = x as f64;
    x * (x - 1.0) / 2.0
}

/// The (unadjusted) Rand index: fraction of point pairs on which the two
/// labelings agree. 1.0 for identical partitions.
pub fn rand_index(truth: &[usize], prediction: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    let n = table.total();
    if n < 2 {
        return 1.0;
    }
    let total_pairs = choose2(n);
    let mut same_same = 0.0;
    for i in 0..table.rows() {
        for j in 0..table.cols() {
            same_same += choose2(table.count(i, j));
        }
    }
    let same_truth: f64 = table.row_sums().iter().map(|&a| choose2(a)).sum();
    let same_pred: f64 = table.col_sums().iter().map(|&b| choose2(b)).sum();
    // Agreements = pairs together in both + pairs separated in both.
    let agreements = same_same + (total_pairs - same_truth - same_pred + same_same);
    agreements / total_pairs
}

/// Adjusted Rand Index (Hubert & Arabie): chance-corrected Rand index,
/// 1.0 for identical partitions, ~0 for random labelings, can be negative.
pub fn adjusted_rand_index(truth: &[usize], prediction: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    let n = table.total();
    if n < 2 {
        return 1.0;
    }
    let sum_ij: f64 = (0..table.rows())
        .flat_map(|i| (0..table.cols()).map(move |j| (i, j)))
        .map(|(i, j)| choose2(table.count(i, j)))
        .sum();
    let sum_a: f64 = table.row_sums().iter().map(|&a| choose2(a)).sum();
    let sum_b: f64 = table.col_sums().iter().map(|&b| choose2(b)).sum();
    let total_pairs = choose2(n);
    let expected = sum_a * sum_b / total_pairs;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-15 {
        // Degenerate: both partitions trivial.
        return if (sum_ij - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_partitions_score_one() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![7, 7, 3, 3];
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_sklearn_example() {
        // sklearn docs: ARI([0,0,1,1], [0,0,1,2]) = 0.5714...
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 1, 2];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!((ari - 0.5714285714285714).abs() < 1e-9, "got {ari}");
    }

    #[test]
    fn independent_labelings_near_zero_ari() {
        let truth: Vec<usize> = (0..400).map(|i| i / 200).collect();
        let pred: Vec<usize> = (0..400).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 0.05, "got {ari}");
        // ...while the plain Rand index stays around 0.5 here.
        let ri = rand_index(&truth, &pred);
        assert!(ri > 0.4 && ri < 0.6);
    }

    #[test]
    fn single_cluster_vs_split() {
        let truth = vec![0usize; 8];
        let pred = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // One partition is trivial: degenerate case, ARI defined as 0 here.
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 1e-12);
    }

    #[test]
    fn ari_symmetric() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 0, 0, 2, 2, 1, 1, 0];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ari_can_be_negative() {
        // Systematically anti-correlated assignment on a small example.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari <= 0.0);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }
}
