//! Additional external clustering metrics: purity, homogeneity,
//! completeness and V-measure.

use crate::contingency::ContingencyTable;
use crate::entropy::{entropy_of_counts, mutual_information};

/// Purity: every predicted cluster is assigned its majority true class; the
/// score is the fraction of correctly "classified" points. Easy to inflate
/// by over-clustering, but a useful sanity check.
pub fn purity(truth: &[usize], prediction: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    if table.total() == 0 {
        return 0.0;
    }
    let mut correct = 0u64;
    for j in 0..table.cols() {
        let best = (0..table.rows())
            .map(|i| table.count(i, j))
            .max()
            .unwrap_or(0);
        correct += best;
    }
    correct as f64 / table.total() as f64
}

/// Homogeneity: 1 when every predicted cluster contains members of a single
/// true class (`1 - H(truth | prediction) / H(truth)`).
pub fn homogeneity(truth: &[usize], prediction: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    let h_truth = entropy_of_counts(table.row_sums(), table.total());
    if h_truth == 0.0 {
        return 1.0;
    }
    let mi = mutual_information(&table);
    (mi / h_truth).clamp(0.0, 1.0)
}

/// Completeness: 1 when all members of a true class end up in the same
/// predicted cluster (`1 - H(prediction | truth) / H(prediction)`).
pub fn completeness(truth: &[usize], prediction: &[usize]) -> f64 {
    let table = ContingencyTable::from_labels(truth, prediction);
    let h_pred = entropy_of_counts(table.col_sums(), table.total());
    if h_pred == 0.0 {
        return 1.0;
    }
    let mi = mutual_information(&table);
    (mi / h_pred).clamp(0.0, 1.0)
}

/// V-measure: the harmonic mean of homogeneity and completeness.
pub fn v_measure(truth: &[usize], prediction: &[usize]) -> f64 {
    let h = homogeneity(truth, prediction);
    let c = completeness(truth, prediction);
    if h + c == 0.0 {
        0.0
    } else {
        2.0 * h * c / (h + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one_everywhere() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert!((purity(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((homogeneity(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((completeness(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((v_measure(&labels, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_clustering_is_homogeneous_but_incomplete() {
        // Every point in its own cluster.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 1, 2, 3, 4, 5];
        assert!((homogeneity(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!(completeness(&truth, &pred) < 0.5);
        assert!((purity(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!(v_measure(&truth, &pred) < 1.0);
    }

    #[test]
    fn under_clustering_is_complete_but_not_homogeneous() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0usize; 6];
        assert!((completeness(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!(homogeneity(&truth, &pred) < 1e-12);
        assert!(v_measure(&truth, &pred) < 1e-12);
        assert!((purity(&truth, &pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn purity_of_majority_assignment() {
        let truth = vec![0, 0, 0, 1, 1, 2];
        let pred = vec![0, 0, 1, 1, 1, 1];
        // cluster 0: majority class 0 (2 points); cluster 1: majority class 1 (2 points)
        assert!((purity(&truth, &pred) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn v_measure_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0];
        let b = vec![1, 1, 0, 2, 2, 0, 1];
        assert!((v_measure(&a, &b) - v_measure(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert_eq!(purity(&[], &[]), 0.0);
    }

    #[test]
    fn scores_are_bounded() {
        let truth = vec![0, 1, 2, 0, 1, 2, 1, 1, 0, 2, 2, 2];
        let pred = vec![0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 1, 2];
        for f in [purity, homogeneity, completeness, v_measure] {
            let s = f(&truth, &pred);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
