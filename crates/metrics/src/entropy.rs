//! Entropy and mutual information of labelings.

use crate::ContingencyTable;

/// Shannon entropy (in nats) of a label vector's empirical distribution.
pub fn entropy_of_labels(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    // BTreeMap so the float sum below runs in label order — a HashMap
    // would add the -p*ln(p) terms in random-seeded order and the total
    // could differ in the last bits between runs.
    let mut counts = std::collections::BTreeMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0u64) += 1;
    }
    let n = labels.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Entropy of a marginal distribution given as counts.
pub(crate) fn entropy_of_counts(counts: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (in nats) between the two labelings summarized by a
/// contingency table.
pub fn mutual_information(table: &ContingencyTable) -> f64 {
    let n = table.total() as f64;
    if table.total() == 0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for i in 0..table.rows() {
        let a = table.row_sums()[i] as f64;
        if a == 0.0 {
            continue;
        }
        for j in 0..table.cols() {
            let nij = table.count(i, j) as f64;
            if nij == 0.0 {
                continue;
            }
            let b = table.col_sums()[j] as f64;
            mi += (nij / n) * ((nij * n) / (a * b)).ln();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_two_classes() {
        let labels = vec![0, 0, 1, 1];
        assert!((entropy_of_labels(&labels) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_single_class_is_zero() {
        assert_eq!(entropy_of_labels(&[3, 3, 3, 3]), 0.0);
        assert_eq!(entropy_of_labels(&[]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_k_classes_is_ln_k() {
        let labels: Vec<usize> = (0..40).map(|i| i % 8).collect();
        assert!((entropy_of_labels(&labels) - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_of_identical_labelings_is_entropy() {
        let labels = vec![0, 0, 1, 1, 2, 2, 2, 2];
        let t = ContingencyTable::from_labels(&labels, &labels);
        let mi = mutual_information(&t);
        assert!((mi - entropy_of_labels(&labels)).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_of_independent_labelings_is_zero() {
        // Prediction splits every true class exactly in half -> MI = 0.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let t = ContingencyTable::from_labels(&truth, &pred);
        assert!(mutual_information(&t).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_is_symmetric() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 1, 0, 2, 2, 2, 1, 0];
        let mi_ab = mutual_information(&ContingencyTable::from_labels(&a, &b));
        let mi_ba = mutual_information(&ContingencyTable::from_labels(&b, &a));
        assert!((mi_ab - mi_ba).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_bounded_by_entropies() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1, 2, 0];
        let b = vec![1, 0, 0, 2, 2, 1, 1, 0, 2, 1];
        let mi = mutual_information(&ContingencyTable::from_labels(&a, &b));
        assert!(mi <= entropy_of_labels(&a) + 1e-12);
        assert!(mi <= entropy_of_labels(&b) + 1e-12);
        assert!(mi >= 0.0);
    }
}
