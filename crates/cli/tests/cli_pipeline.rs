//! End-to-end test of the `adawave` CLI: generate → cluster → evaluate,
//! exercising the same code paths as the binary but through the library so
//! no subprocess is needed.

use std::path::PathBuf;

use adawave_cli::args::ParsedArgs;
use adawave_cli::commands::dispatch;

/// A scratch directory unique to this test run, removed on drop.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("adawave-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        Self { path }
    }

    fn file(&self, name: &str) -> String {
        self.path.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn run(args: &[&str]) -> String {
    let parsed = ParsedArgs::parse(args.iter().copied()).expect("parse args");
    dispatch(&parsed).unwrap_or_else(|e| panic!("command {args:?} failed: {e}"))
}

#[test]
fn generate_cluster_evaluate_round_trip() {
    let dir = ScratchDir::new("roundtrip");
    let data = dir.file("synthetic.csv");
    let labels = dir.file("labels.csv");

    // 1. generate a small synthetic dataset at 60% noise.
    let report = run(&[
        "generate",
        "--dataset",
        "synthetic",
        "--noise",
        "60",
        "--points-per-cluster",
        "400",
        "--seed",
        "5",
        "--out",
        &data,
    ]);
    assert!(report.contains("wrote"), "{report}");
    assert!(std::fs::metadata(&data).unwrap().len() > 1000);

    // 2. cluster it with AdaWave and write the labels file.
    let report = run(&[
        "cluster",
        "--input",
        &data,
        "--algorithm",
        "adawave",
        "--scale",
        "64",
        "--out",
        &labels,
    ]);
    assert!(report.contains("clusters"), "{report}");
    let label_lines = std::fs::read_to_string(&labels).unwrap().lines().count();
    // One label per point: 5 clusters x 400 points plus 60% noise.
    assert_eq!(label_lines, 5000);

    // 3. evaluate the predictions against the ground truth column. The CSV
    // format does not record which class is noise, so tell the evaluator
    // that the synthetic generator labels noise as class 5.
    let report = run(&[
        "evaluate",
        "--input",
        &data,
        "--labels",
        &labels,
        "--noise-label",
        "5",
    ]);
    assert!(report.contains("AMI"), "{report}");
    let ami_line = report
        .lines()
        .find(|l| l.starts_with("AMI (non-noise only)"))
        .expect("non-noise AMI line");
    let score: f64 = ami_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("parse AMI");
    assert!(score > 0.4, "end-to-end AMI {score}");
}

#[test]
fn cluster_with_a_baseline_and_reassign_noise() {
    let dir = ScratchDir::new("baseline");
    let data = dir.file("blobs.csv");
    run(&[
        "generate",
        "--dataset",
        "synthetic",
        "--noise",
        "30",
        "--points-per-cluster",
        "200",
        "--seed",
        "9",
        "--out",
        &data,
    ]);
    let labels = dir.file("kmeans.csv");
    let report = run(&[
        "cluster",
        "--input",
        &data,
        "--algorithm",
        "kmeans",
        "--k",
        "5",
        "--out",
        &labels,
        "--reassign-noise",
    ]);
    assert!(report.contains("0 noise points"), "{report}");
    let text = std::fs::read_to_string(&labels).unwrap();
    assert!(!text.contains("noise"));
}

#[test]
fn sweep_command_prints_a_table() {
    let report = run(&[
        "sweep",
        "--noise",
        "40,80",
        "--points-per-cluster",
        "200",
        "--seed",
        "3",
        "--scale",
        "48",
    ]);
    assert!(report.contains("adawave"));
    assert!(report.contains("40"));
    assert!(report.contains("80"));
    assert_eq!(report.lines().count(), 3, "{report}");
}

#[test]
fn evaluate_rejects_mismatched_label_counts() {
    let dir = ScratchDir::new("mismatch");
    let data = dir.file("data.csv");
    run(&["generate", "--dataset", "iris", "--out", &data]);
    let labels = dir.file("short.csv");
    std::fs::write(&labels, "0\n1\n").unwrap();
    let parsed = ParsedArgs::parse([
        "evaluate",
        "--input",
        data.as_str(),
        "--labels",
        labels.as_str(),
    ])
    .unwrap();
    assert!(dispatch(&parsed).is_err());
}

#[test]
fn missing_input_file_is_a_clean_error() {
    let parsed =
        ParsedArgs::parse(["cluster", "--input", "/definitely/not/a/real/file.csv"]).unwrap();
    let err = dispatch(&parsed).unwrap_err();
    assert!(err.to_string().contains("file.csv"));
}
