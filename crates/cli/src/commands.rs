//! Implementations of the `adawave` subcommands.
//!
//! Every command is a plain function over in-memory data so it can be unit
//! tested without touching the filesystem; `main.rs` only wires file I/O and
//! argument parsing around these functions.

use std::path::Path;
use std::time::Instant;

use adawave::{
    load_model, save_model, standard_registry, AdaWaveConfig, AlgorithmEntry, AlgorithmSpec,
    ClusterError, Model, Params, PointMatrix, PointsView,
};
use adawave_api::closest_matches;
use adawave_data::csv::CsvBatches;
use adawave_data::synthetic::{running_example, synthetic_benchmark};
use adawave_data::{csv, uci, Dataset};
use adawave_grid::BoundingBox;
use adawave_metrics::{
    adjusted_rand_index, ami, ami_ignoring_noise, calinski_harabasz, davies_bouldin,
    normalized_mutual_information, purity, silhouette_score, v_measure, NOISE_LABEL,
};
use adawave_stream::{load_accumulator, save_accumulator, Checkpointer, StreamingAdaWave};
use adawave_wavelet::Wavelet;

use crate::args::{ArgError, ParsedArgs};

/// Errors surfaced to the user by any command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// The command line parsed but the invocation is malformed (unknown
    /// command, missing operands).
    Usage(String),
    /// Anything that prevented the command from completing.
    Message(String),
}

impl CliError {
    /// The process exit code for this error: `2` for usage errors
    /// (bad/unknown command line), `1` for runtime and assertion
    /// failures. Success is `0`, as usual.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) | CliError::Usage(_) => 2,
            CliError::Message(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Message(m)
    }
}

impl From<ClusterError> for CliError {
    fn from(e: ClusterError) -> Self {
        CliError::Message(e.to_string())
    }
}

/// Result alias for command functions.
pub type CliResult<T> = Result<T, CliError>;

/// The usage text printed by `adawave help`.
pub const USAGE: &str = "\
adawave — adaptive wavelet clustering for highly noisy data

USAGE:
  adawave <command> [--option value]...

COMMANDS:
  generate   Generate a synthetic or surrogate dataset as CSV
             --dataset <running-example|synthetic|roadmap|seeds|iris|glass|
                        dumdh|htru2|dermatology|motor|wholesale>
             [--noise <percent>] [--points-per-cluster <n>] [--seed <n>]
             --out <file.csv>
  cluster    Cluster a CSV file (features..., label per line)
             --input <file.csv> [--algo|--algorithm <name[:key=value,...]>]
             [--out <labels.csv>] [--output csv|json] (per-point labels,
              noise as empty/null; to stdout when --out is absent)
             [--save-model <file>] (persist the trained model for
              `predict` / `serve`; supported for every algorithm)
             [--param <key=value>]... (uniform, see `list-algorithms`;
              on collision: shorthand flag < algo spec < --param)
             [--scale <n>] [--wavelet <haar|db2|db3|cdf22|cdf13>]
             [--levels <n>] [--threshold <three-segment|elbow|kneedle|
              quantile:<f>|fixed:<f>>] [--k <n>] [--eps <f>]
             [--min-points <n>] [--bandwidth <f>] [--seed <n>]
             [--threads <n>] (0 = auto: ADAWAVE_THREADS or all cores;
              labels are identical for every thread count)
             [--reassign-noise] [--quiet]
  predict    Label a CSV with a trained model — no refitting
             --input <file.csv>
             --model <file> (saved by `cluster --save-model`) OR
             --train <train.csv> (fit a model first; same algorithm
              options as `cluster`: --algo, --param, shorthand flags)
             [--out <labels.csv>] [--output csv|json] [--quiet]
             [--verbose] (also print the model's summary())
             Out-of-domain/non-finite points are labeled noise.
  serve      Serve trained models over HTTP until killed
             --model <name>=<file.awm> (repeatable; a bare <file.awm>
              is served under its file stem)
             [--addr <host:port>] (default 127.0.0.1:8355; port 0 picks
              a free port)
             [--workers <n>] (0 = auto: ADAWAVE_THREADS or all cores)
             [--verbose] (also print each model's summary())
             Endpoints: GET /health | GET /models | GET /models/<name> |
             POST /models/<name>/predict {\"point\": [..]} |
             POST /models/<name>/predict-batch (CSV or JSON rows;
              responses match `predict --output csv|json` byte for byte) |
             POST /admin/reload/<name> (atomic hot reload from the file)
  stream     Cluster a CSV by ingesting it in bounded batches (constant
             memory for the points; the model is refit from the grid)
             --input <file.csv> [--batch-rows <n>] (default 8192)
             [--prescan] (extra streaming pass computes the exact domain
              first, so labels match `cluster` on the same file; without
              it the domain freezes on the first batch and later
              out-of-domain points are counted as outliers = noise)
             [--out <labels.csv>] [--output csv|json] [--scale <n>]
             [--wavelet <name>] [--levels <n>] [--threshold <name>]
             [--threads <n>]
             [--param <key=value>]... (adawave params, validated like
              `cluster`; --param beats the shorthand flags) [--quiet]
             [--checkpoint <file.awa>] (write the accumulator to the
              file every --checkpoint-every rows and on completion; if
              the file already exists the stream resumes after the rows
              it holds instead of re-ingesting them — the labels are
              bit-identical to the uninterrupted run)
             [--checkpoint-every <rows>] (default 100000)
  shard-ingest
             Ingest one contiguous shard of a CSV into an accumulator
             file — distributed ingestion: run one process per shard,
             then combine with `merge-accumulators`
             --input <file.csv> --shard <i/k> (shard i of k, 1-based)
             --out <file.awa> [--batch-rows <n>]
             [--scale <n>] [--wavelet <name>] [--levels <n>]
             [--threshold <name>] [--threads <n>] [--param <key=value>]...
             The domain is prescanned over the whole file, so every
             shard freezes the identical grid and the merge is exact;
             every shard must be given the same algorithm options.
  merge-accumulators
             Merge accumulator files and refit — labels are identical
             to one-shot `cluster` on the concatenated shard rows
             --input <file.awa> (repeat once per shard, in row order)
             [--out <labels.csv>] [--output csv|json]
             [--save-model <file>] (persist the refit model for
              `predict` / `serve`) [--quiet]
  evaluate   Score predicted labels against the ground truth in a CSV
             --input <file.csv> --labels <labels.csv> [--noise-label <n>]
  sweep      AMI of AdaWave and the baselines across noise levels (mini Fig. 8)
             [--noise <list, default 20,50,80>] [--points-per-cluster <n>]
             [--seed <n>]
  script     Run scenario scripts (the end-to-end regression DSL; the
             golden corpus lives in scenarios/)
             adawave script <file.adw>... [--list]
             [--list] (dry-run: parse and print each script's test plans
              without executing anything)
             Prints a per-plan pass/fail report per file. Exit codes:
             0 = every plan passed, 1 = a plan failed or a script could
             not be parsed/read, 2 = usage error.
  audit      Static-analysis pass over the workspace sources enforcing
             the determinism, panic-safety and float-discipline
             contracts (same engine as the `adawave-audit` binary)
             adawave audit [--root <dir>] [--list] [lint-name ...]
             [--root <dir>] (audit the workspace containing <dir>;
              default: the current directory)
             [--list] (print the lint table and the escape syntax)
             Exit codes: 0 = clean, 1 = findings, 2 = usage error.
  list-algorithms
             Every registered algorithm with its parameters and defaults
  info       List the available algorithms, wavelets and threshold strategies
  help       Show this message

ALGORITHMS:
  adawave (default) and every baseline in the algorithm registry — run
  `adawave list-algorithms` for the authoritative list with per-algorithm
  parameters and defaults; `--param k=3` passes any listed parameter
  directly to the algorithm.
";

/// Dispatch a parsed command line; returns the text to print on stdout.
pub fn dispatch(args: &ParsedArgs) -> CliResult<String> {
    // Only `script` (files) and `audit` (lint names) take positional
    // operands; everywhere else a bare word is a mistake (e.g. a
    // forgotten `--input`).
    if args.command != "script" && args.command != "audit" {
        args.reject_positionals()?;
    }
    match args.command.as_str() {
        "generate" => generate(args),
        "cluster" => cluster(args),
        "predict" => predict(args),
        "serve" => serve(args),
        "stream" => stream(args),
        "shard-ingest" => shard_ingest(args),
        "merge-accumulators" => merge_accumulators(args),
        "evaluate" => evaluate(args),
        "sweep" => sweep(args),
        "script" => script(args),
        "audit" => audit(args),
        "list-algorithms" => Ok(list_algorithms()),
        "info" => Ok(info()),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => {
            let suggestions = closest_matches(other, COMMANDS.iter().copied());
            let hint = match suggestions.as_slice() {
                [] => String::new(),
                names => format!(" — did you mean {}?", names.join(" or ")),
            };
            Err(CliError::Usage(format!(
                "unknown command '{other}'{hint} (try `adawave help`)"
            )))
        }
    }
}

/// Every subcommand `dispatch` accepts, for the did-you-mean suggestions.
const COMMANDS: &[&str] = &[
    "generate",
    "cluster",
    "predict",
    "serve",
    "stream",
    "shard-ingest",
    "merge-accumulators",
    "evaluate",
    "sweep",
    "script",
    "audit",
    "list-algorithms",
    "info",
    "help",
];

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

/// Build the dataset selected by `--dataset`.
pub fn build_dataset(
    name: &str,
    noise_percent: f64,
    points_per_cluster: usize,
    seed: u64,
) -> CliResult<Dataset> {
    let ds = match name {
        "running-example" => running_example(seed),
        "synthetic" => synthetic_benchmark(noise_percent, points_per_cluster, seed),
        "roadmap" => uci::roadmap_like(points_per_cluster.max(1) * 5, seed),
        "seeds" => uci::seeds(seed),
        "iris" => uci::iris(seed),
        "glass" => uci::glass(seed),
        "dumdh" => uci::dumdh(seed),
        "htru2" => uci::htru2(seed),
        "dermatology" => uci::dermatology(seed),
        "motor" => uci::motor(seed),
        "wholesale" => uci::wholesale(seed),
        other => {
            return Err(CliError::Message(format!(
                "unknown dataset '{other}' (see `adawave help`)"
            )))
        }
    };
    Ok(ds)
}

fn generate(args: &ParsedArgs) -> CliResult<String> {
    let dataset_name = args.require("dataset")?;
    let noise = args.parse_or("noise", 50.0)?;
    let per_cluster = args.parse_or("points-per-cluster", 5600usize)?;
    let seed = args.parse_or("seed", 42u64)?;
    let out = args.require("out")?;
    let ds = build_dataset(dataset_name, noise, per_cluster, seed)?;
    csv::save_csv(&ds, Path::new(out))
        .map_err(|e| CliError::Message(format!("writing {out}: {e}")))?;
    Ok(format!(
        "wrote {} ({} points, {} dims, {} classes, {:.1}% noise) to {}\n",
        ds.name,
        ds.len(),
        ds.dims(),
        ds.class_count(),
        100.0 * ds.noise_fraction(),
        out
    ))
}

// ---------------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------------

/// The outcome of clustering a dataset through the CLI.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Per-point labels with noise mapped to [`NOISE_LABEL`].
    pub labels: Vec<usize>,
    /// Number of clusters found.
    pub clusters: usize,
    /// Number of points labeled noise.
    pub noise_points: usize,
    /// Wall-clock seconds spent clustering.
    pub seconds: f64,
}

/// Build the [`AlgorithmSpec`] for one CLI invocation from a parsed base
/// spec (the compact `name[:key=value,...]` form of `--algo`). Shorthand
/// flags the user actually gave (`--k`, `--eps`, `--scale`, ...) become
/// parameters that [`resolve_lenient`] trims to whatever the selected
/// algorithm declares; flags the user did not give are left out so the
/// registry defaults shown by `list-algorithms` apply. The one exception
/// is `k`, which defaults to the dataset's class count (the paper's
/// protocol for the centroid/model-based algorithms). Compact-spec params
/// and explicit `--param key=value` pairs are validated strictly against
/// the algorithm's parameter list so typos are caught. On key collision,
/// precedence is shorthand flag < compact spec < `--param` — the dedicated
/// parameter channels deliberately beat the shared convenience flags.
///
/// [`resolve_lenient`]: adawave::AlgorithmRegistry::resolve_lenient
pub fn build_spec(
    base: AlgorithmSpec,
    args: &ParsedArgs,
    true_k: usize,
    entry: &AlgorithmEntry,
) -> CliResult<AlgorithmSpec> {
    entry.validate_keys(&base.params)?;
    let mut spec =
        AlgorithmSpec::new(base.name.clone()).with("k", args.parse_or("k", true_k.max(1))?);
    for key in [
        "seed",
        "eps",
        "min-points",
        "bandwidth",
        "scale",
        "wavelet",
        "levels",
        "threshold",
        "threads",
    ] {
        if let Some(value) = args.get(key) {
            spec.params.set(key, value);
        }
    }
    spec.params.merge(&base.params);
    let mut explicit = Params::new();
    for pair in args.get_all("param") {
        explicit.set_pair(pair)?;
    }
    entry.validate_keys(&explicit)?;
    spec.params.merge(&explicit);
    Ok(spec)
}

/// Cluster a point set with the algorithm and options from the command
/// line, resolving the algorithm by name through the standard registry.
/// `algorithm` accepts the bare name or the compact spec form
/// `name:key=value,...`; `true_k` is the number of ground-truth classes,
/// used as `k` by the centroid/model-based algorithms when `--k` is not
/// given.
pub fn run_clustering(
    algorithm: &str,
    points: PointsView<'_>,
    args: &ParsedArgs,
    true_k: usize,
) -> CliResult<ClusterOutcome> {
    Ok(run_clustering_impl(algorithm, points, args, true_k, false)?.0)
}

/// [`run_clustering`] through the two-stage `fit_model` path, additionally
/// returning the trained model (for `--save-model` and `predict --train`).
pub fn run_clustering_with_model(
    algorithm: &str,
    points: PointsView<'_>,
    args: &ParsedArgs,
    true_k: usize,
) -> CliResult<(ClusterOutcome, Box<dyn Model>)> {
    let (outcome, model) = run_clustering_impl(algorithm, points, args, true_k, true)?;
    Ok((outcome, model.expect("requested above")))
}

#[allow(clippy::type_complexity)]
fn run_clustering_impl(
    algorithm: &str,
    points: PointsView<'_>,
    args: &ParsedArgs,
    true_k: usize,
    want_model: bool,
) -> CliResult<(ClusterOutcome, Option<Box<dyn Model>>)> {
    let registry = standard_registry();
    let base = AlgorithmSpec::parse(algorithm)?;
    let entry = registry.entry(&base.name)?;
    let spec = build_spec(base, args, true_k, entry)?;
    let clusterer = registry.resolve_lenient(&spec)?;
    let start = Instant::now();
    let (clustering, model) = if want_model {
        let outcome = clusterer.fit_model(points)?;
        (outcome.clustering, Some(outcome.model))
    } else {
        (clusterer.fit(points)?, None)
    };
    let seconds = start.elapsed().as_secs_f64();

    let labels = if args.flag("reassign-noise") {
        clustering
            .assign_noise_to_nearest_centroid(points)
            .to_labels(NOISE_LABEL)
    } else {
        clustering.to_labels(NOISE_LABEL)
    };
    Ok((
        ClusterOutcome {
            noise_points: labels.iter().filter(|&&l| l == NOISE_LABEL).count(),
            clusters: clustering.cluster_count(),
            labels,
            seconds,
        },
        model,
    ))
}

// ---------------------------------------------------------------------------
// label output (shared by cluster, stream and predict)
// ---------------------------------------------------------------------------

/// Per-point label output format selected by `--output`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// One label per line; noise points are empty lines.
    Csv,
    /// A JSON document with a `labels` array; noise points are `null`.
    Json,
}

/// Parse the `--output` option (`None` = the default summary/labels-file
/// behavior).
pub fn output_format(args: &ParsedArgs) -> CliResult<Option<OutputFormat>> {
    match args.get("output") {
        None => Ok(None),
        Some("csv") => Ok(Some(OutputFormat::Csv)),
        Some("json") => Ok(Some(OutputFormat::Json)),
        Some(other) => Err(CliError::Args(ArgError::InvalidValue {
            option: "output".to_string(),
            value: other.to_string(),
            expected: "csv or json".to_string(),
        })),
    }
}

/// Render per-point labels in the selected format — the one writer shared
/// by `cluster`, `stream` and `predict`. Noise is an empty field in CSV
/// and `null` in JSON.
pub fn render_labels(labels: &[usize], format: OutputFormat) -> String {
    match format {
        OutputFormat::Csv => {
            let mut out = String::with_capacity(labels.len() * 4 + 6);
            out.push_str("label\n");
            for &l in labels {
                if l != NOISE_LABEL {
                    out.push_str(&l.to_string());
                }
                out.push('\n');
            }
            out
        }
        OutputFormat::Json => {
            let clusters = labels
                .iter()
                .filter(|&&l| l != NOISE_LABEL)
                .max()
                .map_or(0, |&m| m + 1);
            let noise = labels.iter().filter(|&&l| l == NOISE_LABEL).count();
            let mut out = String::with_capacity(labels.len() * 6 + 64);
            out.push_str(&format!(
                "{{\n  \"points\": {},\n  \"clusters\": {clusters},\n  \"noise_points\": {noise},\n  \"labels\": [",
                labels.len()
            ));
            for (i, &l) in labels.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if l == NOISE_LABEL {
                    out.push_str("null");
                } else {
                    out.push_str(&l.to_string());
                }
            }
            out.push_str("]\n}\n");
            out
        }
    }
}

/// Route per-point labels to where the flags say: with `--output`, the
/// formatted labels go to `--out` when given (the summary `report` becomes
/// the stdout text) or straight to stdout otherwise; without `--output`,
/// the legacy labels-file format is written to `--out` and the summary is
/// printed. This is the one emission path `cluster`, `stream` and
/// `predict` share.
fn emit_labels(args: &ParsedArgs, labels: &[usize], report: String) -> CliResult<String> {
    let format = output_format(args)?;
    match (format, args.get("out")) {
        (None, None) => Ok(report),
        (None, Some(out)) => {
            std::fs::write(out, labels_to_text(labels))
                .map_err(|e| CliError::Message(format!("writing {out}: {e}")))?;
            Ok(report)
        }
        (Some(format), None) => Ok(render_labels(labels, format)),
        (Some(format), Some(out)) => {
            std::fs::write(out, render_labels(labels, format))
                .map_err(|e| CliError::Message(format!("writing {out}: {e}")))?;
            Ok(report)
        }
    }
}

/// Render the predicted labels as the text of a labels file: one label per
/// line, with the literal word `noise` for noise points.
pub fn labels_to_text(labels: &[usize]) -> String {
    let mut text = String::with_capacity(labels.len() * 4);
    for &l in labels {
        if l == NOISE_LABEL {
            text.push_str("noise\n");
        } else {
            text.push_str(&l.to_string());
            text.push('\n');
        }
    }
    text
}

/// Parse a labels file produced by [`labels_to_text`] or by
/// `--output csv` ([`render_labels`]): one label per line, where `noise`,
/// `-1` and an **empty line** all mean noise, a leading `label` header is
/// skipped, and `#` lines are comments — so every label format this CLI
/// writes round-trips into `evaluate --labels`.
pub fn labels_from_text(text: &str) -> CliResult<Vec<usize>> {
    let mut labels = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || (line_no == 0 && line == "label") {
            continue;
        }
        if line.is_empty() || line == "noise" || line == "-1" {
            labels.push(NOISE_LABEL);
        } else {
            labels.push(line.parse::<usize>().map_err(|_| {
                CliError::Message(format!(
                    "labels file line {}: bad label '{line}'",
                    line_no + 1
                ))
            })?);
        }
    }
    Ok(labels)
}

fn cluster(args: &ParsedArgs) -> CliResult<String> {
    let input = args.require("input")?;
    let algorithm = args
        .get("algorithm")
        .or_else(|| args.get("algo"))
        .unwrap_or("adawave");
    let ds = csv::load_csv(Path::new(input))
        .map_err(|e| CliError::Message(format!("reading {input}: {e}")))?;
    // Only the two-stage path builds the trained model artifact; plain
    // clustering keeps the cheaper label-only path.
    let (outcome, model) = if let Some(model_path) = args.get("save-model") {
        let (outcome, model) =
            run_clustering_with_model(algorithm, ds.view(), args, ds.cluster_count())?;
        save_model(Path::new(model_path), model.as_ref())
            .map_err(|e| CliError::Message(format!("saving model to {model_path}: {e}")))?;
        (outcome, Some(model))
    } else {
        (
            run_clustering(algorithm, ds.view(), args, ds.cluster_count())?,
            None,
        )
    };

    let mut report = format!(
        "{}: {} clusters, {} noise points / {} total in {:.3}s\n",
        algorithm,
        outcome.clusters,
        outcome.noise_points,
        ds.len(),
        outcome.seconds
    );
    if let (Some(model), Some(path)) = (&model, args.get("save-model")) {
        report.push_str(&format!("saved model to {path} ({})\n", model.summary()));
    }
    if !args.flag("quiet") {
        let score = match ds.noise_label {
            Some(noise) => ami_ignoring_noise(&ds.labels, &outcome.labels, noise),
            None => ami(&ds.labels, &outcome.labels),
        };
        report.push_str(&format!("AMI against the labels in {input}: {score:.3}\n"));
    }
    emit_labels(args, &outcome.labels, report)
}

// ---------------------------------------------------------------------------
// predict
// ---------------------------------------------------------------------------

/// Obtain the model `predict` should serve from: load a saved model file,
/// or fit one on a training CSV with the same algorithm options `cluster`
/// accepts.
fn predict_model(args: &ParsedArgs) -> CliResult<Box<dyn Model>> {
    match (args.get("model"), args.get("train")) {
        (Some(path), None) => load_model(Path::new(path))
            .map_err(|e| CliError::Message(format!("loading model from {path}: {e}"))),
        (None, Some(train_path)) => {
            let train = csv::load_csv(Path::new(train_path))
                .map_err(|e| CliError::Message(format!("reading {train_path}: {e}")))?;
            let algorithm = args
                .get("algorithm")
                .or_else(|| args.get("algo"))
                .unwrap_or("adawave");
            let (_, model) =
                run_clustering_with_model(algorithm, train.view(), args, train.cluster_count())?;
            Ok(model)
        }
        (Some(_), Some(_)) => Err(CliError::Message(
            "give either --model <file> or --train <csv>, not both".to_string(),
        )),
        (None, None) => Err(CliError::Message(
            "predict needs a model: --model <file> (saved by `cluster --save-model`) \
             or --train <csv> (fit one first)"
                .to_string(),
        )),
    }
}

fn predict(args: &ParsedArgs) -> CliResult<String> {
    let input = args.require("input")?;
    // Resolve the model first so a missing/ambiguous source is reported
    // before any input parsing work.
    let model = predict_model(args)?;
    let ds = csv::load_csv(Path::new(input))
        .map_err(|e| CliError::Message(format!("reading {input}: {e}")))?;
    let start = Instant::now();
    let clustering = model.predict(ds.view())?;
    let seconds = start.elapsed().as_secs_f64();
    let labels = clustering.to_labels(NOISE_LABEL);

    let mut report = format!(
        "predict ({}): {} clusters, {} noise points / {} total in {:.3}s\n",
        model.algorithm(),
        clustering.cluster_count(),
        clustering.noise_count(),
        ds.len(),
        seconds,
    );
    if args.flag("verbose") {
        report.push_str(&format!("{}\n", model.summary()));
    }
    if !args.flag("quiet") {
        let score = match ds.noise_label {
            Some(noise) => ami_ignoring_noise(&ds.labels, &labels, noise),
            None => ami(&ds.labels, &labels),
        };
        report.push_str(&format!("AMI against the labels in {input}: {score:.3}\n"));
    }
    emit_labels(args, &labels, report)
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// Resolve every `--model` spec (`name=file`, or a bare `file` served
/// under its file stem) into a loaded [`adawave::ModelStore`] and start
/// the daemon, returning it with the startup banner. Split from the
/// blocking `serve` command body so tests can start and stop a server.
pub fn start_serve(args: &ParsedArgs) -> CliResult<(adawave::Server, String)> {
    let specs: Vec<&str> = args.get_all("model").collect();
    if specs.is_empty() {
        return Err(CliError::Message(
            "serve needs at least one --model <name>=<file.awm> \
             (files come from `cluster --save-model`)"
                .to_string(),
        ));
    }
    let store = std::sync::Arc::new(adawave::ModelStore::new(adawave::model_loader()));
    for spec in specs {
        let (name, path) = match spec.split_once('=') {
            Some((name, path)) if !name.is_empty() => (name.to_string(), path),
            _ => {
                let stem = Path::new(spec)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| {
                        CliError::Message(format!("--model {spec}: cannot derive a name"))
                    })?;
                (stem.to_string(), spec)
            }
        };
        store
            .load(&name, Path::new(path))
            .map_err(|e| CliError::Message(format!("loading model '{name}' from {path}: {e}")))?;
    }
    let config = adawave::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8355").to_string(),
        workers: args.parse_or("workers", 0usize)?,
        ..adawave::ServeConfig::default()
    };
    let server = adawave::Server::start(config, std::sync::Arc::clone(&store))
        .map_err(|e| CliError::Message(format!("starting server: {e}")))?;

    let mut banner = format!(
        "serving {} model(s) on http://{} with {} worker(s)\n",
        store.len(),
        server.local_addr(),
        server.workers(),
    );
    for entry in store.entries() {
        banner.push_str(&format!(
            "  {}: {} ({}-d, v{}, {})\n",
            entry.name,
            entry.model.algorithm(),
            entry.model.dims(),
            entry.version,
            entry.path.display(),
        ));
        if args.flag("verbose") {
            banner.push_str(&format!("    {}\n", entry.model.summary()));
        }
    }
    banner.push_str(
        "endpoints: GET /health | GET /models | GET /models/<name> | \
         POST /models/<name>/predict | POST /models/<name>/predict-batch | \
         POST /admin/reload/<name>",
    );
    Ok((server, banner))
}

fn serve(args: &ParsedArgs) -> CliResult<String> {
    let (server, banner) = start_serve(args)?;
    // Print and flush before parking so wrappers (the CI smoke) can wait
    // for the banner as the readiness signal.
    println!("{banner}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(String::new())
}

// ---------------------------------------------------------------------------
// stream
// ---------------------------------------------------------------------------

/// Build an [`AdaWaveConfig`] from the shared shorthand flags
/// (`--scale`, `--wavelet`, `--levels`, `--threshold`, `--threads`) plus
/// explicit `--param key=value` pairs, reusing the registry-facing
/// parameter parsing and validation so the accepted keys, values,
/// precedence (shorthand < `--param`) and error messages match
/// `cluster --algo adawave`.
fn adawave_config_from_args(args: &ParsedArgs) -> CliResult<AdaWaveConfig> {
    let mut params = Params::new();
    for key in ["scale", "wavelet", "levels", "threshold", "threads"] {
        if let Some(value) = args.get(key) {
            params.set(key, value);
        }
    }
    let mut explicit = Params::new();
    for pair in args.get_all("param") {
        explicit.set_pair(pair)?;
    }
    standard_registry()
        .entry("adawave")?
        .validate_keys(&explicit)?;
    params.merge(&explicit);
    Ok(AdaWaveConfig::from_params(&params)?)
}

/// The outcome of streaming a CSV through [`StreamingAdaWave`].
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Per-point labels with noise mapped to [`NOISE_LABEL`], in file order.
    pub labels: Vec<usize>,
    /// Ground-truth labels from the CSV's last column, in file order.
    pub truth: Vec<usize>,
    /// Number of clusters found.
    pub clusters: usize,
    /// Number of points labeled noise (outliers included).
    pub noise_points: usize,
    /// Points that fell outside the frozen domain.
    pub outliers: usize,
    /// Number of ingested batches.
    pub batches: usize,
    /// Total points ingested.
    pub points: usize,
    /// Occupied cells of the accumulated grid (the refit cost driver).
    pub occupied_cells: usize,
    /// Wall-clock seconds spent reading + quantizing batches.
    pub ingest_seconds: f64,
    /// Wall-clock seconds spent refitting the model and labeling.
    pub refit_seconds: f64,
    /// Rows restored from a `--checkpoint` file and skipped (0 when the
    /// stream started fresh).
    pub resumed_points: usize,
}

/// Where `stream --checkpoint` persists and resumes the accumulator.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// The accumulator file, written atomically (write-then-rename).
    pub path: std::path::PathBuf,
    /// Flush cadence in ingested rows.
    pub every: usize,
}

/// Rows `lo..hi` of a matrix as a borrowed view (no copying).
fn point_rows(points: &PointMatrix, lo: usize, hi: usize) -> PointsView<'_> {
    let dims = points.dims();
    PointsView::from_flat(&points.as_slice()[lo * dims..hi * dims], dims)
        .expect("row-aligned slice of a valid matrix")
}

/// Stream a CSV file through [`StreamingAdaWave`] in batches of
/// `batch_rows` points. With `prescan`, a first streaming pass computes
/// the exact bounding box of the whole file (batch-box unions — still one
/// batch in memory at a time) so the result is identical to the one-shot
/// `cluster` command; without it the domain freezes on the first batch.
pub fn run_stream(
    path: &Path,
    batch_rows: usize,
    prescan: bool,
    config: AdaWaveConfig,
) -> CliResult<StreamOutcome> {
    run_stream_checkpointed(path, batch_rows, prescan, config, None)
}

/// [`run_stream`] with an optional checkpoint: the accumulator is written
/// to `checkpoint.path` every `checkpoint.every` ingested rows (and once
/// more at the end), and when the file already exists the session restores
/// from it and skips the rows it holds — so a killed run picks up where
/// the last checkpoint left off and still produces bit-identical labels.
pub fn run_stream_checkpointed(
    path: &Path,
    batch_rows: usize,
    prescan: bool,
    config: AdaWaveConfig,
    checkpoint: Option<&CheckpointSpec>,
) -> CliResult<StreamOutcome> {
    let read_err = |e: csv::CsvError| CliError::Message(format!("reading {}: {e}", path.display()));
    let stream_err = |e: adawave_stream::StreamError| {
        CliError::Message(format!("streaming {}: {e}", path.display()))
    };

    // Resume path: the checkpoint file holds the whole session (frozen
    // domain included), so the prescan is unnecessary when it exists.
    let resume = match checkpoint {
        Some(cp) if cp.path.exists() => {
            let restored = load_accumulator(&cp.path).map_err(|e| {
                CliError::Message(format!("reading checkpoint {}: {e}", cp.path.display()))
            })?;
            // The restored config must match the flags of this run — the
            // runtime aside, which never changes results.
            let mut theirs = restored.config().clone();
            theirs.runtime = config.runtime;
            if theirs != config {
                return Err(CliError::Message(format!(
                    "checkpoint {} was written under a different configuration; \
                     rerun with the original flags or delete the file",
                    cp.path.display()
                )));
            }
            Some(restored)
        }
        _ => None,
    };
    let mut stream = match resume {
        Some(restored) => restored,
        None if prescan => {
            // Union of per-batch finite-row boxes — the same outlier
            // semantics as the ingest pass, so rows with non-finite values
            // stay outliers instead of turning the prescan fatal.
            let mut domain: Option<BoundingBox> = None;
            for batch in CsvBatches::open(path, batch_rows).map_err(read_err)? {
                let batch = batch.map_err(read_err)?;
                if let Some(bounds) = adawave_stream::finite_bounds(batch.view()) {
                    domain = Some(match domain {
                        Some(d) => d.union(&bounds),
                        None => bounds,
                    });
                }
            }
            let domain = domain.ok_or_else(|| {
                CliError::Message(format!("{} holds no finite data points", path.display()))
            })?;
            StreamingAdaWave::with_domain(config, domain).map_err(stream_err)?
        }
        None => StreamingAdaWave::new(config),
    };
    let resumed_points = stream.points_ingested();

    let mut checkpointer = checkpoint.map(|cp| Checkpointer::new(&cp.path, cp.every));
    let checkpoint_err = |c: &Checkpointer, e: adawave_api::ArtifactError| {
        CliError::Message(format!("writing checkpoint {}: {e}", c.path().display()))
    };
    let mut truth = Vec::new();
    let mut batches = 0usize;
    let mut row = 0usize;
    let ingest_start = Instant::now();
    for batch in CsvBatches::open(path, batch_rows).map_err(read_err)? {
        let batch = batch.map_err(read_err)?;
        let n = batch.points.len();
        truth.extend_from_slice(&batch.labels);
        // Rows the checkpoint already holds are skipped, not re-ingested.
        let skip = resumed_points.saturating_sub(row).min(n);
        if skip < n {
            let report = stream
                .ingest(point_rows(&batch.points, skip, n))
                .map_err(stream_err)?;
            if let Some(c) = checkpointer.as_mut() {
                c.observe(&stream, report.points)
                    .map_err(|e| checkpoint_err(c, e))?;
            }
        }
        row += n;
        batches += 1;
    }
    if stream.points_ingested() != row {
        return Err(CliError::Message(format!(
            "checkpoint holds {resumed_points} rows but {} has {row}; \
             was it written for a different file?",
            path.display()
        )));
    }
    if let Some(c) = checkpointer.as_mut() {
        // Final flush: a rerun of the same command skips every row and
        // goes straight to the refit.
        c.flush(&stream).map_err(|e| checkpoint_err(c, e))?;
    }
    let outliers = stream.outlier_count();
    let ingest_seconds = ingest_start.elapsed().as_secs_f64();

    let refit_start = Instant::now();
    let result = stream.refit().map_err(stream_err)?;
    let refit_seconds = refit_start.elapsed().as_secs_f64();

    // Route through the canonical `Clustering` so the emitted ids follow
    // the same first-appearance numbering as the `cluster` command —
    // `stream --prescan` and `cluster` then agree label for label, not
    // just partition for partition.
    let labels = result.to_clustering().to_labels(NOISE_LABEL);
    Ok(StreamOutcome {
        noise_points: labels.iter().filter(|&&l| l == NOISE_LABEL).count(),
        clusters: result.cluster_count(),
        outliers,
        batches,
        points: labels.len(),
        occupied_cells: stream.occupied_cells(),
        ingest_seconds,
        refit_seconds,
        resumed_points,
        labels,
        truth,
    })
}

fn stream(args: &ParsedArgs) -> CliResult<String> {
    let input = args.require("input")?;
    let batch_rows = args.parse_or("batch-rows", 8192usize)?;
    if batch_rows == 0 {
        return Err(CliError::Args(ArgError::InvalidValue {
            option: "batch-rows".to_string(),
            value: "0".to_string(),
            expected: "a positive batch size".to_string(),
        }));
    }
    let config = adawave_config_from_args(args)?;
    let checkpoint = match (args.get("checkpoint"), args.get("checkpoint-every")) {
        (None, Some(_)) => {
            return Err(CliError::Usage(
                "--checkpoint-every needs --checkpoint <file.awa>".to_string(),
            ))
        }
        (None, None) => None,
        (Some(p), _) => {
            let every = args.parse_or("checkpoint-every", 100_000usize)?;
            if every == 0 {
                return Err(CliError::Args(ArgError::InvalidValue {
                    option: "checkpoint-every".to_string(),
                    value: "0".to_string(),
                    expected: "a positive row interval".to_string(),
                }));
            }
            Some(CheckpointSpec {
                path: std::path::PathBuf::from(p),
                every,
            })
        }
    };
    let outcome = run_stream_checkpointed(
        Path::new(input),
        batch_rows,
        args.flag("prescan"),
        config,
        checkpoint.as_ref(),
    )?;

    let mut report = format!(
        "adawave-stream: {} clusters, {} noise points / {} total \
         ({} batches, {} points outside the frozen domain)\n\
         {} occupied cells; read+ingest {:.3}s, refit {:.3}s\n",
        outcome.clusters,
        outcome.noise_points,
        outcome.points,
        outcome.batches,
        outcome.outliers,
        outcome.occupied_cells,
        outcome.ingest_seconds,
        outcome.refit_seconds,
    );
    if let Some(cp) = &checkpoint {
        if outcome.resumed_points > 0 {
            report.push_str(&format!(
                "resumed from {}: {} already-ingested rows skipped\n",
                cp.path.display(),
                outcome.resumed_points
            ));
        }
        report.push_str(&format!(
            "checkpoint {} (every {} rows)\n",
            cp.path.display(),
            cp.every
        ));
    }
    if !args.flag("quiet") {
        let score = ami(&outcome.truth, &outcome.labels);
        report.push_str(&format!("AMI against the labels in {input}: {score:.3}\n"));
    }
    emit_labels(args, &outcome.labels, report)
}

// ---------------------------------------------------------------------------
// shard-ingest & merge-accumulators
// ---------------------------------------------------------------------------

/// Parse the `--shard i/k` spec into a 1-based `(index, count)` pair.
fn parse_shard(spec: &str) -> CliResult<(usize, usize)> {
    let parsed = spec.split_once('/').and_then(|(i, k)| {
        Some((
            i.trim().parse::<usize>().ok()?,
            k.trim().parse::<usize>().ok()?,
        ))
    });
    match parsed {
        Some((index, count)) if count >= 1 && (1..=count).contains(&index) => Ok((index, count)),
        _ => Err(CliError::Args(ArgError::InvalidValue {
            option: "shard".to_string(),
            value: spec.to_string(),
            expected: "<i>/<k> with 1 <= i <= k (e.g. --shard 2/3)".to_string(),
        })),
    }
}

/// The `shard-ingest` command: ingest rows `[n*(i-1)/k, n*i/k)` of the CSV
/// into an accumulator file. The domain is always prescanned over the
/// *whole* file (like `stream --prescan`), so every shard of the same file
/// freezes the identical quantizer and the accumulators merge exactly —
/// the shards only differ in which rows they count into the grid.
fn shard_ingest(args: &ParsedArgs) -> CliResult<String> {
    let input = args.require("input")?;
    let out = args.require("out")?;
    let (index, count) = parse_shard(args.require("shard")?)?;
    let batch_rows = args.parse_or("batch-rows", 8192usize)?;
    if batch_rows == 0 {
        return Err(CliError::Args(ArgError::InvalidValue {
            option: "batch-rows".to_string(),
            value: "0".to_string(),
            expected: "a positive batch size".to_string(),
        }));
    }
    let config = adawave_config_from_args(args)?;
    let path = Path::new(input);
    let read_err = |e: csv::CsvError| CliError::Message(format!("reading {input}: {e}"));
    let stream_err =
        |e: adawave_stream::StreamError| CliError::Message(format!("streaming {input}: {e}"));

    // Pass 1: the exact domain and row count of the whole file — identical
    // for every shard, whichever slice it goes on to ingest.
    let mut domain: Option<BoundingBox> = None;
    let mut total = 0usize;
    for batch in CsvBatches::open(path, batch_rows).map_err(read_err)? {
        let batch = batch.map_err(read_err)?;
        total += batch.points.len();
        if let Some(bounds) = adawave_stream::finite_bounds(batch.view()) {
            domain = Some(match domain {
                Some(d) => d.union(&bounds),
                None => bounds,
            });
        }
    }
    let domain =
        domain.ok_or_else(|| CliError::Message(format!("{input} holds no finite data points")))?;
    let (lo, hi) = (total * (index - 1) / count, total * index / count);

    // Pass 2: ingest only this shard's contiguous row slice.
    let mut stream = StreamingAdaWave::with_domain(config, domain).map_err(stream_err)?;
    let start = Instant::now();
    let mut row = 0usize;
    for batch in CsvBatches::open(path, batch_rows).map_err(read_err)? {
        let batch = batch.map_err(read_err)?;
        let n = batch.points.len();
        let (a, b) = (lo.clamp(row, row + n), hi.clamp(row, row + n));
        if a < b {
            stream
                .ingest(point_rows(&batch.points, a - row, b - row))
                .map_err(stream_err)?;
        }
        row += n;
        if row >= hi {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    save_accumulator(Path::new(out), &stream)
        .map_err(|e| CliError::Message(format!("writing {out}: {e}")))?;
    Ok(format!(
        "shard {index}/{count} of {input}: rows {lo}..{hi} ({} points, {} outliers, \
         {} occupied cells) in {seconds:.3}s -> {out}\n",
        stream.points_ingested(),
        stream.outlier_count(),
        stream.occupied_cells(),
    ))
}

/// The `merge-accumulators` command: load every `--input` accumulator in
/// argument order, merge them, refit once, and emit the labels of all
/// ingested points in shard order — identical to what one-shot `cluster`
/// labels the concatenated rows, because the merged grid is bit-identical.
fn merge_accumulators(args: &ParsedArgs) -> CliResult<String> {
    let inputs: Vec<&str> = args.get_all("input").collect();
    if inputs.is_empty() {
        return Err(CliError::Usage(
            "merge-accumulators needs at least one --input <file.awa> \
             (written by `shard-ingest` or `stream --checkpoint`)"
                .to_string(),
        ));
    }
    let mut merged: Option<StreamingAdaWave> = None;
    for input in &inputs {
        let shard = load_accumulator(Path::new(input))
            .map_err(|e| CliError::Message(format!("reading {input}: {e}")))?;
        merged = Some(match merged.take() {
            None => shard,
            Some(mut acc) => {
                acc.merge(shard)
                    .map_err(|e| CliError::Message(format!("merging {input}: {e}")))?;
                acc
            }
        });
    }
    let stream = merged.expect("inputs is non-empty");
    let refit_err = |e: adawave_stream::StreamError| CliError::Message(format!("refit: {e}"));

    let start = Instant::now();
    // Only the two-stage path builds the serving model artifact.
    let (labels, clusters, model_line) = if let Some(model_path) = args.get("save-model") {
        let outcome = stream.refit_outcome().map_err(refit_err)?;
        save_model(Path::new(model_path), outcome.model.as_ref())
            .map_err(|e| CliError::Message(format!("saving model to {model_path}: {e}")))?;
        let line = format!(
            "saved model to {model_path} ({})\n",
            outcome.model.summary()
        );
        (
            outcome.clustering.to_labels(NOISE_LABEL),
            outcome.clustering.cluster_count(),
            Some(line),
        )
    } else {
        let result = stream.refit().map_err(refit_err)?;
        (
            result.to_clustering().to_labels(NOISE_LABEL),
            result.cluster_count(),
            None,
        )
    };
    let seconds = start.elapsed().as_secs_f64();

    let noise_points = labels.iter().filter(|&&l| l == NOISE_LABEL).count();
    let mut report = format!(
        "merged {} accumulator(s): {} clusters, {} noise points / {} total \
         ({} outliers, {} occupied cells); refit {seconds:.3}s\n",
        inputs.len(),
        clusters,
        noise_points,
        labels.len(),
        stream.outlier_count(),
        stream.occupied_cells(),
    );
    if let Some(line) = model_line {
        report.push_str(&line);
    }
    emit_labels(args, &labels, report)
}

// ---------------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------------

/// Compute the evaluation report for a (truth, predicted) pair.
pub fn evaluation_report(
    points: PointsView<'_>,
    truth: &[usize],
    predicted: &[usize],
    noise_label: Option<usize>,
) -> CliResult<String> {
    if truth.len() != predicted.len() {
        return Err(CliError::Message(format!(
            "{} ground-truth labels but {} predictions",
            truth.len(),
            predicted.len()
        )));
    }
    let mut out = String::new();
    out.push_str(&format!("points                {}\n", truth.len()));
    out.push_str(&format!(
        "AMI                   {:.4}\n",
        ami(truth, predicted)
    ));
    if let Some(noise) = noise_label {
        out.push_str(&format!(
            "AMI (non-noise only)  {:.4}\n",
            ami_ignoring_noise(truth, predicted, noise)
        ));
    }
    out.push_str(&format!(
        "NMI                   {:.4}\n",
        normalized_mutual_information(truth, predicted, adawave_metrics::AverageMethod::Arithmetic)
    ));
    out.push_str(&format!(
        "ARI                   {:.4}\n",
        adjusted_rand_index(truth, predicted)
    ));
    out.push_str(&format!(
        "V-measure             {:.4}\n",
        v_measure(truth, predicted)
    ));
    out.push_str(&format!(
        "purity                {:.4}\n",
        purity(truth, predicted)
    ));
    // Internal indices need the geometry; cap the cost on large inputs.
    if !points.is_empty() && points.len() <= 20_000 {
        let optional: Vec<Option<usize>> = predicted
            .iter()
            .map(|&l| if l == NOISE_LABEL { None } else { Some(l) })
            .collect();
        out.push_str(&format!(
            "silhouette            {:.4}\n",
            silhouette_score(points, &optional)
        ));
        out.push_str(&format!(
            "Davies-Bouldin        {:.4}\n",
            davies_bouldin(points, &optional)
        ));
        out.push_str(&format!(
            "Calinski-Harabasz     {:.1}\n",
            calinski_harabasz(points, &optional)
        ));
    }
    Ok(out)
}

fn evaluate(args: &ParsedArgs) -> CliResult<String> {
    let input = args.require("input")?;
    let labels_path = args.require("labels")?;
    let ds = csv::load_csv(Path::new(input))
        .map_err(|e| CliError::Message(format!("reading {input}: {e}")))?;
    let text = std::fs::read_to_string(labels_path)
        .map_err(|e| CliError::Message(format!("reading {labels_path}: {e}")))?;
    let predicted = labels_from_text(&text)?;
    let noise_label = match args.get("noise-label") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| CliError::Message(format!("bad --noise-label '{raw}'")))?,
        ),
        None => ds.noise_label,
    };
    evaluation_report(ds.view(), &ds.labels, &predicted, noise_label)
}

// ---------------------------------------------------------------------------
// sweep
// ---------------------------------------------------------------------------

/// One row of the sweep table.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Noise percentage of the dataset.
    pub noise_percent: f64,
    /// `(algorithm name, AMI over non-noise points)` pairs.
    pub scores: Vec<(String, f64)>,
}

/// Run the mini Fig. 8 sweep over the given noise levels. `scale` is the
/// AdaWave grid scale — reduced sweeps (a few hundred points per cluster)
/// need a coarser grid than the paper's full-size default of 128, otherwise
/// cluster cells hold as few points as noise cells.
pub fn run_sweep(
    noise_levels: &[f64],
    points_per_cluster: usize,
    seed: u64,
    scale: u32,
) -> Vec<SweepRow> {
    use adawave_data::synthetic::SYNTHETIC_NOISE_LABEL;
    let algorithms = ["adawave", "kmeans", "dbscan", "skinnydip"];
    let scale_arg = scale.to_string();
    let mut rows = Vec::new();
    for &noise in noise_levels {
        let ds = synthetic_benchmark(noise, points_per_cluster, seed);
        let mut scores = Vec::new();
        for algo in algorithms {
            let args = ParsedArgs::parse(["cluster", "--scale", &scale_arg]).expect("static args");
            let outcome = match run_clustering(algo, ds.view(), &args, ds.cluster_count()) {
                Ok(o) => o,
                Err(_) => continue,
            };
            let score = ami_ignoring_noise(&ds.labels, &outcome.labels, SYNTHETIC_NOISE_LABEL);
            scores.push((algo.to_string(), score));
        }
        rows.push(SweepRow {
            noise_percent: noise,
            scores,
        });
    }
    rows
}

/// Render the sweep table.
pub fn format_sweep(rows: &[SweepRow]) -> String {
    let mut out = String::from("noise%  ");
    if let Some(first) = rows.first() {
        for (name, _) in &first.scores {
            out.push_str(&format!("{name:>10}"));
        }
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:>6.0}  ", row.noise_percent));
        for (_, score) in &row.scores {
            out.push_str(&format!("{score:>10.3}"));
        }
        out.push('\n');
    }
    out
}

fn sweep(args: &ParsedArgs) -> CliResult<String> {
    let noise_levels = args.parse_f64_list("noise", &[20.0, 50.0, 80.0])?;
    let per_cluster = args.parse_or("points-per-cluster", 600usize)?;
    let seed = args.parse_or("seed", 7u64)?;
    let scale = args.parse_or("scale", 64u32)?;
    let rows = run_sweep(&noise_levels, per_cluster, seed, scale);
    Ok(format_sweep(&rows))
}

// ---------------------------------------------------------------------------
// script
// ---------------------------------------------------------------------------

fn script(args: &ParsedArgs) -> CliResult<String> {
    let list = args.flag("list") || args.get("list").is_some();
    // Files are positional; `--list before.adw` makes the file the
    // option's value, so fold those back into the file list too.
    let mut files: Vec<String> = args.positionals().to_vec();
    files.extend(args.get_all("list").map(String::from));
    if files.is_empty() {
        return Err(CliError::Usage(
            "script needs at least one script file: adawave script <file.adw>... [--list]"
                .to_string(),
        ));
    }
    let mut out = String::new();
    let mut failed = 0usize;
    for file in &files {
        let path = Path::new(file);
        let source =
            std::fs::read_to_string(path).map_err(|e| CliError::Message(format!("{file}: {e}")))?;
        let parsed = adawave::script::parse(&source)
            .map_err(|e| CliError::Message(format!("{file}: {e}")))?;
        if list {
            out.push_str(&format!("{file}: {} plan(s)\n", parsed.plans.len()));
            for plan in &parsed.plans {
                out.push_str(&format!("  line {:>3}: {}\n", plan.line, plan.title));
            }
            continue;
        }
        // Relative `load "data.csv"` paths resolve next to the script.
        let dir = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let report = adawave::script_engine().with_script_dir(dir).run(&parsed);
        out.push_str(&format!("{file}:\n{}", report.render()));
        if !report.passed() {
            failed += 1;
        }
    }
    if failed > 0 {
        Err(CliError::Message(format!(
            "{out}{failed} of {} script(s) failed",
            files.len()
        )))
    } else {
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// audit
// ---------------------------------------------------------------------------

fn audit(args: &ParsedArgs) -> CliResult<String> {
    if args.flag("list") || args.get("list").is_some() {
        return Ok(adawave_audit::list_text());
    }
    let names: Vec<String> = args.positionals().to_vec();
    let filter = adawave_audit::resolve_lint_names(&names).map_err(CliError::Usage)?;
    let filter = (!filter.is_empty()).then_some(filter.as_slice());
    let start = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::current_dir().map_err(|e| {
            CliError::Message(format!("cannot determine the working directory: {e}"))
        })?,
    };
    let root = adawave_audit::find_root(&start).ok_or_else(|| {
        CliError::Usage(format!(
            "no workspace Cargo.toml at or above {} (use --root)",
            start.display()
        ))
    })?;
    let findings = adawave_audit::audit_workspace(&root, filter).map_err(CliError::Message)?;
    if findings.is_empty() {
        return Ok("audit: workspace clean\n".to_string());
    }
    let mut out = String::new();
    for finding in &findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    out.push_str(&format!("audit: {} finding(s)", findings.len()));
    Err(CliError::Message(out))
}

// ---------------------------------------------------------------------------
// info & list-algorithms
// ---------------------------------------------------------------------------

fn info() -> String {
    let mut out = String::new();
    out.push_str(&format!("adawave {}\n\n", env!("CARGO_PKG_VERSION")));
    out.push_str("algorithms: ");
    out.push_str(&standard_registry().names().join(" "));
    out.push('\n');
    out.push_str("wavelets:   ");
    for w in Wavelet::ALL {
        out.push_str(w.name());
        out.push(' ');
    }
    out.push('\n');
    out.push_str("thresholds: three-segment elbow kneedle quantile:<f> fixed:<f>\n");
    out.push_str("datasets:   running-example synthetic roadmap seeds iris glass dumdh htru2 dermatology motor wholesale\n");
    out.push_str("\n(run `adawave list-algorithms` for per-algorithm parameters)\n");
    out
}

/// The `list-algorithms` command: every registered algorithm with its
/// summary, parameters and defaults, straight from the registry.
pub fn list_algorithms() -> String {
    standard_registry().describe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave::PointMatrix;
    use adawave_data::shapes;
    use adawave_data::Rng;

    fn toy_points() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(1);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.02, 0.02], 120);
        truth.extend(std::iter::repeat_n(0usize, 120));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.02, 0.02], 120);
        truth.extend(std::iter::repeat_n(1usize, 120));
        // The adaptive threshold expects a noise regime to cut away, so the
        // toy data mirrors the paper's setting: blobs plus uniform noise.
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 60);
        truth.extend(std::iter::repeat_n(2usize, 60));
        (points, truth)
    }

    #[test]
    fn every_algorithm_name_runs_on_a_toy_dataset() {
        let (points, _) = toy_points();
        let args = ParsedArgs::parse(["cluster", "--scale", "32", "--eps", "0.08"]).unwrap();
        for algo in [
            "adawave",
            "kmeans",
            "dbscan",
            "em",
            "wavecluster",
            "skinnydip",
            "dipmeans",
            "stsc",
            "ric",
            "optics",
            "meanshift",
            "sync",
            "sting",
            "clique",
        ] {
            let outcome = run_clustering(algo, points.view(), &args, 2)
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(outcome.labels.len(), points.len(), "{algo}");
        }
    }

    #[test]
    fn unknown_algorithm_is_rejected() {
        let (points, _) = toy_points();
        let args = ParsedArgs::parse(["cluster"]).unwrap();
        let err = run_clustering("definitely-not-real", points.view(), &args, 2).unwrap_err();
        // The registry error names the known algorithms.
        assert!(err.to_string().contains("adawave"), "{err}");
    }

    #[test]
    fn param_flag_reaches_the_algorithm_and_typos_are_rejected() {
        let (points, _) = toy_points();
        // `--param k=3` overrides the k inferred from the dataset.
        let args = ParsedArgs::parse(["cluster", "--param", "k=3", "--param", "seed=11"]).unwrap();
        let outcome = run_clustering("kmeans", points.view(), &args, 2).unwrap();
        assert_eq!(outcome.clusters, 3);
        // A typo'd key is rejected with the accepted keys listed...
        let args = ParsedArgs::parse(["cluster", "--param", "kk=3"]).unwrap();
        let err = run_clustering("kmeans", points.view(), &args, 2).unwrap_err();
        assert!(err.to_string().contains("kk"), "{err}");
        assert!(err.to_string().contains("seed"), "{err}");
        // ...as is a malformed pair and a bad value.
        let args = ParsedArgs::parse(["cluster", "--param", "k"]).unwrap();
        assert!(run_clustering("kmeans", points.view(), &args, 2).is_err());
        let args = ParsedArgs::parse(["cluster", "--param", "k=banana"]).unwrap();
        assert!(run_clustering("kmeans", points.view(), &args, 2).is_err());
    }

    #[test]
    fn compact_algo_spec_and_stsc_auto_k() {
        let (points, _) = toy_points();
        // `--algo name:key=value,...` carries params inline.
        let args = ParsedArgs::parse(["cluster"]).unwrap();
        let outcome = run_clustering("kmeans:k=4,seed=3", points.view(), &args, 2).unwrap();
        assert_eq!(outcome.clusters, 4);
        // Typos in the compact form are caught like --param typos.
        let err = run_clustering("kmeans:kk=4", points.view(), &args, 2).unwrap_err();
        assert!(err.to_string().contains("kk"), "{err}");
        // `--param` wins over the compact form on collision.
        let args = ParsedArgs::parse(["cluster", "--param", "k=5"]).unwrap();
        let outcome = run_clustering("kmeans:k=2,seed=3", points.view(), &args, 2).unwrap();
        assert_eq!(outcome.clusters, 5);
        // The documented stsc default (eigengap auto-k) is expressible even
        // though the CLI injects a numeric k by default.
        let args = ParsedArgs::parse(["cluster", "--param", "k=auto"]).unwrap();
        let outcome = run_clustering("stsc", points.view(), &args, 2).unwrap();
        assert!(outcome.clusters >= 1);
    }

    #[test]
    fn list_algorithms_documents_every_registered_algorithm() {
        let text = list_algorithms();
        for name in adawave::standard_registry().names() {
            assert!(text.contains(name), "{name} missing:\n{text}");
        }
        assert!(text.contains("default"), "{text}");
    }

    #[test]
    fn list_algorithms_is_one_aligned_table_with_types_and_defaults() {
        let text = list_algorithms();
        let lines: Vec<&str> = text.lines().collect();
        // Header row names the columns (the README documents this format).
        let header = lines[0];
        for column in ["algorithm", "param", "type", "default", "description"] {
            assert!(
                header.contains(column),
                "missing column {column}:\n{header}"
            );
        }
        // Every algorithm declares `threads` and a default for it.
        let threads_rows = lines.iter().filter(|l| l.contains(" threads ")).count();
        assert_eq!(threads_rows, adawave::standard_registry().len(), "{text}");
        // Alignment: the `param` column starts at the same offset in the
        // header and in a parameter row.
        let param_col = header.find("param").unwrap();
        let k_row = lines.iter().find(|l| l.trim().starts_with("k ")).unwrap();
        assert_eq!(k_row.find('k').unwrap(), param_col, "{text}");
    }

    #[test]
    fn thread_count_does_not_change_cli_labels() {
        let (points, _) = toy_points();
        for algo in ["adawave", "kmeans", "dbscan", "meanshift"] {
            let one = ParsedArgs::parse(["cluster", "--scale", "32", "--threads", "1"]).unwrap();
            let four = ParsedArgs::parse(["cluster", "--scale", "32", "--threads", "4"]).unwrap();
            let a = run_clustering(algo, points.view(), &one, 2).unwrap();
            let b = run_clustering(algo, points.view(), &four, 2).unwrap();
            assert_eq!(a.labels, b.labels, "{algo}");
        }
    }

    #[test]
    fn adawave_separates_the_toy_blobs() {
        let (points, truth) = toy_points();
        let args = ParsedArgs::parse(["cluster", "--scale", "32"]).unwrap();
        let outcome = run_clustering("adawave", points.view(), &args, 2).unwrap();
        assert!(outcome.clusters >= 2);
        let score = ami_ignoring_noise(&truth, &outcome.labels, 2);
        assert!(score > 0.8, "AMI {score}");
    }

    #[test]
    fn reassign_noise_flag_removes_noise_points() {
        let (points, _) = toy_points();
        let args = ParsedArgs::parse(["cluster", "--scale", "32", "--reassign-noise"]).unwrap();
        let outcome = run_clustering("adawave", points.view(), &args, 2).unwrap();
        assert_eq!(outcome.noise_points, 0);
    }

    fn save_temp_dataset(name: &str, points: &PointMatrix, truth: &[usize]) -> std::path::PathBuf {
        let ds = Dataset::new(name, points.clone(), truth.to_vec(), None);
        let path = std::env::temp_dir().join(format!("{name}.csv"));
        csv::save_csv(&ds, &path).unwrap();
        path
    }

    #[test]
    fn stream_with_prescan_matches_the_one_shot_cluster_command() {
        let (points, truth) = toy_points();
        let path = save_temp_dataset("adawave_cli_stream_prescan", &points, &truth);

        let config =
            adawave_config_from_args(&ParsedArgs::parse(["stream", "--scale", "32"]).unwrap())
                .unwrap();
        // Small batches force many ingest/merge rounds.
        let outcome = run_stream(&path, 37, true, config).unwrap();
        assert_eq!(outcome.points, points.len());
        assert_eq!(outcome.outliers, 0, "prescan domain covers everything");
        assert!(outcome.batches > 5);

        let args = ParsedArgs::parse(["cluster", "--scale", "32"]).unwrap();
        let one_shot = run_clustering("adawave", points.view(), &args, 2).unwrap();
        assert_eq!(outcome.labels, one_shot.labels);
        assert_eq!(outcome.clusters, one_shot.clusters);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_without_prescan_freezes_on_the_first_batch_and_counts_outliers() {
        // First two rows span [0,1]^2; the last row is far outside and must
        // be reported as an outlier (= noise), not clamped into the grid.
        let points = PointMatrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![9.0, 9.0],
        ])
        .unwrap();
        let path = save_temp_dataset("adawave_cli_stream_outliers", &points, &[0, 0, 0, 0]);
        let config =
            adawave_config_from_args(&ParsedArgs::parse(["stream", "--scale", "8"]).unwrap())
                .unwrap();
        let outcome = run_stream(&path, 2, false, config).unwrap();
        assert_eq!(outcome.outliers, 1);
        assert_eq!(outcome.labels[3], NOISE_LABEL);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_prescan_tolerates_non_finite_rows_as_outliers() {
        // A NaN row must be an outlier under --prescan too (the prescan
        // unions finite-row boxes), not a fatal error.
        let path = std::env::temp_dir().join("adawave_cli_stream_nan.csv");
        std::fs::write(&path, "nan,0.5,0\n0.0,0.0,0\n1.0,1.0,0\n0.5,0.5,0\n").unwrap();
        let config =
            adawave_config_from_args(&ParsedArgs::parse(["stream", "--scale", "8"]).unwrap())
                .unwrap();
        // Without prescan the domain freezes on the first batch's only
        // finite row (0,0), so the later points are out of domain too;
        // with prescan the finite-row union covers them and only the NaN
        // row stays an outlier.
        for (prescan, expected_outliers) in [(false, 3), (true, 1)] {
            let outcome = run_stream(&path, 2, prescan, config.clone()).unwrap();
            assert_eq!(outcome.outliers, expected_outliers, "prescan = {prescan}");
            assert_eq!(outcome.labels[0], NOISE_LABEL, "prescan = {prescan}");
            assert_eq!(outcome.points, 4, "prescan = {prescan}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_dispatch_reports_and_writes_labels() {
        let (points, truth) = toy_points();
        let path = save_temp_dataset("adawave_cli_stream_dispatch", &points, &truth);
        let out = std::env::temp_dir().join("adawave_cli_stream_dispatch_labels.csv");
        let report = dispatch(
            &ParsedArgs::parse([
                "stream",
                "--input",
                path.to_str().unwrap(),
                "--scale",
                "32",
                "--batch-rows",
                "64",
                "--prescan",
                "--out",
                out.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(report.contains("clusters"), "{report}");
        assert!(report.contains("refit"), "{report}");
        assert!(report.contains("AMI"), "{report}");
        let labels = labels_from_text(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(labels.len(), points.len());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn stream_accepts_and_validates_param_pairs() {
        // `--param` reaches the config with the same precedence as in
        // `cluster` (explicit pair beats the shorthand flag)...
        let args = ParsedArgs::parse(["stream", "--scale", "48", "--param", "scale=16"]).unwrap();
        let config = adawave_config_from_args(&args).unwrap();
        assert_eq!(config.scale, 16);
        let args = ParsedArgs::parse(["stream", "--param", "levels=0"]).unwrap();
        assert_eq!(adawave_config_from_args(&args).unwrap().levels, 0);
        // ...and typo'd keys are rejected with the accepted keys listed
        // instead of being silently ignored.
        let args = ParsedArgs::parse(["stream", "--param", "scal=16"]).unwrap();
        let err = adawave_config_from_args(&args).unwrap_err();
        assert!(err.to_string().contains("scal"), "{err}");
        assert!(err.to_string().contains("scale"), "{err}");
        // Malformed pairs are caught too.
        let args = ParsedArgs::parse(["stream", "--param", "scale"]).unwrap();
        assert!(adawave_config_from_args(&args).is_err());
    }

    #[test]
    fn stream_rejects_bad_arguments() {
        // Zero batch size.
        let args = ParsedArgs::parse(["stream", "--input", "x.csv", "--batch-rows", "0"]).unwrap();
        assert!(dispatch(&args).is_err());
        // Unknown wavelet surfaces the registry-style error.
        let args = ParsedArgs::parse(["stream", "--input", "x.csv", "--wavelet", "sinc"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("wavelet"), "{err}");
        // Missing file.
        let args = ParsedArgs::parse(["stream", "--input", "/definitely/not/here.csv"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn predict_with_train_reproduces_cluster_labels() {
        let (points, truth) = toy_points();
        let train = save_temp_dataset("adawave_cli_predict_train", &points, &truth);
        // Fit labels via `cluster`...
        let args = ParsedArgs::parse(["cluster", "--scale", "32"]).unwrap();
        let fit = run_clustering("adawave", points.view(), &args, 2).unwrap();
        // ...and via `predict --train` on the same file: the model predicts
        // the training batch identically.
        let out = std::env::temp_dir().join("adawave_cli_predict_labels.csv");
        let report = dispatch(
            &ParsedArgs::parse([
                "predict",
                "--train",
                train.to_str().unwrap(),
                "--input",
                train.to_str().unwrap(),
                "--scale",
                "32",
                "--out",
                out.to_str().unwrap(),
                "--verbose",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(report.contains("predict (adawave)"), "{report}");
        // The model summary() rides along only under --verbose.
        assert!(report.contains("model:"), "{report}");
        let plain_report = dispatch(
            &ParsedArgs::parse([
                "predict",
                "--train",
                train.to_str().unwrap(),
                "--input",
                train.to_str().unwrap(),
                "--scale",
                "32",
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(!plain_report.contains("model:"), "{plain_report}");
        let predicted = labels_from_text(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(predicted, fit.labels);
        std::fs::remove_file(&train).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn save_model_then_predict_round_trips_label_identically() {
        let (points, truth) = toy_points();
        let train = save_temp_dataset("adawave_cli_save_model", &points, &truth);
        let model_path = std::env::temp_dir().join("adawave_cli_model.awm");
        let fit_out = std::env::temp_dir().join("adawave_cli_fit_labels.csv");
        let pred_out = std::env::temp_dir().join("adawave_cli_pred_labels.csv");
        for algo in ["adawave", "kmeans"] {
            let report = dispatch(
                &ParsedArgs::parse([
                    "cluster",
                    "--input",
                    train.to_str().unwrap(),
                    "--algo",
                    algo,
                    "--scale",
                    "32",
                    "--seed",
                    "7",
                    "--save-model",
                    model_path.to_str().unwrap(),
                    "--out",
                    fit_out.to_str().unwrap(),
                    "--quiet",
                ])
                .unwrap(),
            )
            .unwrap();
            assert!(report.contains("saved model"), "{report}");
            dispatch(
                &ParsedArgs::parse([
                    "predict",
                    "--model",
                    model_path.to_str().unwrap(),
                    "--input",
                    train.to_str().unwrap(),
                    "--out",
                    pred_out.to_str().unwrap(),
                    "--quiet",
                ])
                .unwrap(),
            )
            .unwrap();
            // The paper-grade contract: save -> load -> predict is label-
            // identical to the fit, byte for byte in the labels file.
            assert_eq!(
                std::fs::read_to_string(&fit_out).unwrap(),
                std::fs::read_to_string(&pred_out).unwrap(),
                "{algo}"
            );
        }
        for p in [&train, &model_path, &fit_out, &pred_out] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn save_model_covers_fallback_algorithms() {
        // dbscan persists via the nearest-training fallback payload: the
        // saved file predicts the training set label-identically.
        let (points, truth) = toy_points();
        let train = save_temp_dataset("adawave_cli_save_fallback", &points, &truth);
        let model_path = std::env::temp_dir().join("adawave_cli_fallback.awm");
        let fit_out = std::env::temp_dir().join("adawave_cli_fallback_fit.csv");
        let pred_out = std::env::temp_dir().join("adawave_cli_fallback_pred.csv");
        let report = dispatch(
            &ParsedArgs::parse([
                "cluster",
                "--input",
                train.to_str().unwrap(),
                "--algo",
                "dbscan",
                "--param",
                "eps=0.1",
                "--save-model",
                model_path.to_str().unwrap(),
                "--out",
                fit_out.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(report.contains("saved model"), "{report}");
        dispatch(
            &ParsedArgs::parse([
                "predict",
                "--model",
                model_path.to_str().unwrap(),
                "--input",
                train.to_str().unwrap(),
                "--out",
                pred_out.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&fit_out).unwrap(),
            std::fs::read_to_string(&pred_out).unwrap(),
        );
        for p in [&train, &model_path, &fit_out, &pred_out] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn predict_requires_exactly_one_model_source() {
        let args = ParsedArgs::parse(["predict", "--input", "x.csv"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("--model"), "{err}");
        assert!(err.to_string().contains("--train"), "{err}");
    }

    #[test]
    fn output_formats_render_labels_with_noise_as_empty_or_null() {
        let labels = vec![0, NOISE_LABEL, 2, 1];
        let csv = render_labels(&labels, OutputFormat::Csv);
        assert_eq!(csv, "label\n0\n\n2\n1\n");
        let json = render_labels(&labels, OutputFormat::Json);
        assert!(json.contains("\"labels\": [0, null, 2, 1]"), "{json}");
        assert!(json.contains("\"clusters\": 3"), "{json}");
        assert!(json.contains("\"noise_points\": 1"), "{json}");
        // --output validation.
        let bad = ParsedArgs::parse(["cluster", "--output", "xml"]).unwrap();
        assert!(output_format(&bad).is_err());
        assert_eq!(
            output_format(&ParsedArgs::parse(["cluster", "--output", "json"]).unwrap()).unwrap(),
            Some(OutputFormat::Json)
        );
    }

    #[test]
    fn output_flag_replaces_stdout_with_labels_across_commands() {
        let (points, truth) = toy_points();
        let path = save_temp_dataset("adawave_cli_output_flag", &points, &truth);
        // cluster --output csv: stdout IS the label listing.
        let text = dispatch(
            &ParsedArgs::parse([
                "cluster",
                "--input",
                path.to_str().unwrap(),
                "--scale",
                "32",
                "--output",
                "csv",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(text.starts_with("label\n"), "{text}");
        assert_eq!(text.lines().count(), points.len() + 1);
        // stream --output json: a JSON document with one entry per point.
        let text = dispatch(
            &ParsedArgs::parse([
                "stream",
                "--input",
                path.to_str().unwrap(),
                "--scale",
                "32",
                "--prescan",
                "--output",
                "json",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(text.trim_start().starts_with('{'), "{text}");
        assert!(
            text.contains(&format!("\"points\": {}", points.len())),
            "{text}"
        );
        // With --out as well, the labels go to the file and stdout keeps
        // the summary.
        let out = std::env::temp_dir().join("adawave_cli_output_flag_labels.json");
        let report = dispatch(
            &ParsedArgs::parse([
                "predict",
                "--train",
                path.to_str().unwrap(),
                "--input",
                path.to_str().unwrap(),
                "--scale",
                "32",
                "--output",
                "json",
                "--out",
                out.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(report.contains("predict (adawave)"), "{report}");
        let doc = std::fs::read_to_string(&out).unwrap();
        assert!(doc.contains("\"labels\""), "{doc}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn unknown_algorithm_suggests_the_closest_name() {
        let (points, _) = toy_points();
        let args = ParsedArgs::parse(["cluster"]).unwrap();
        let err = run_clustering("kmean", points.view(), &args, 2).unwrap_err();
        assert!(err.to_string().contains("did you mean kmeans?"), "{err}");
        // Unknown --param keys reuse the same suggestion path.
        let args = ParsedArgs::parse(["cluster", "--param", "bandwith=0.2"]).unwrap();
        let err = run_clustering("meanshift", points.view(), &args, 2).unwrap_err();
        assert!(err.to_string().contains("did you mean bandwidth?"), "{err}");
    }

    #[test]
    fn labels_round_trip_through_text() {
        let labels = vec![0, 2, NOISE_LABEL, 1];
        let text = labels_to_text(&labels);
        assert_eq!(labels_from_text(&text).unwrap(), labels);
        // -1 is accepted as noise too.
        assert_eq!(
            labels_from_text("0\n-1\n3\n").unwrap(),
            vec![0, NOISE_LABEL, 3]
        );
        assert!(labels_from_text("0\nbanana\n").is_err());
        // The --output csv format round-trips too: `label` header skipped,
        // empty line = noise — so evaluate can consume predict's output.
        let csv = render_labels(&labels, OutputFormat::Csv);
        assert_eq!(labels_from_text(&csv).unwrap(), labels);
    }

    #[test]
    fn build_dataset_covers_every_name() {
        for name in [
            "running-example",
            "synthetic",
            "roadmap",
            "seeds",
            "iris",
            "glass",
            "dumdh",
            "htru2",
            "dermatology",
            "motor",
            "wholesale",
        ] {
            let ds = build_dataset(name, 50.0, 200, 3).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!ds.is_empty(), "{name}");
        }
        assert!(build_dataset("nope", 50.0, 200, 3).is_err());
    }

    #[test]
    fn evaluation_report_contains_all_metrics() {
        let (points, truth) = toy_points();
        let args = ParsedArgs::parse(["cluster", "--scale", "32"]).unwrap();
        let outcome = run_clustering("kmeans", points.view(), &args, 2).unwrap();
        let report = evaluation_report(points.view(), &truth, &outcome.labels, None).unwrap();
        for needle in ["AMI", "NMI", "ARI", "V-measure", "purity", "silhouette"] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }
    }

    #[test]
    fn evaluation_report_rejects_length_mismatch() {
        let empty = PointMatrix::new(2);
        assert!(evaluation_report(empty.view(), &[0, 1], &[0], None).is_err());
    }

    #[test]
    fn sweep_produces_one_row_per_noise_level_and_adawave_degrades_gracefully() {
        // Cross-algorithm margins are only meaningful at the paper's full
        // dataset size (see the Fig. 8 bench); this reduced sweep checks the
        // plumbing and that AdaWave does not collapse between 30% and 80%.
        let rows = run_sweep(&[30.0, 80.0], 600, 11, 64);
        assert_eq!(rows.len(), 2);
        let adawave_score = |row: &SweepRow| {
            row.scores
                .iter()
                .find(|(n, _)| n == "adawave")
                .map(|(_, s)| *s)
                .unwrap()
        };
        let low = adawave_score(&rows[0]);
        let high = adawave_score(&rows[1]);
        assert!(low > 0.4, "AdaWave @30% = {low}");
        assert!(high > low - 0.5, "AdaWave collapsed: {low} -> {high}");
        for row in &rows {
            assert_eq!(row.scores.len(), 4, "an algorithm is missing a score");
        }
        let table = format_sweep(&rows);
        assert!(table.contains("adawave"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn dispatch_help_and_info_and_unknown() {
        let help = dispatch(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert!(help.contains("serve"));
        let info = dispatch(&ParsedArgs::parse(["info"]).unwrap()).unwrap();
        assert!(info.contains("algorithms"));
        assert!(dispatch(&ParsedArgs::parse(["frobnicate"]).unwrap()).is_err());
    }

    #[test]
    fn serve_answers_batch_predictions_identical_to_the_predict_command() {
        let (points, truth) = toy_points();
        let train = save_temp_dataset("adawave_cli_serve", &points, &truth);
        let model_path = std::env::temp_dir().join("adawave_cli_serve.awm");
        let labels_path = std::env::temp_dir().join("adawave_cli_serve_labels.csv");
        dispatch(
            &ParsedArgs::parse([
                "cluster",
                "--input",
                train.to_str().unwrap(),
                "--algo",
                "kmeans",
                "--param",
                "k=2",
                "--seed",
                "7",
                "--save-model",
                model_path.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();

        // Offline ground truth: `predict --output csv` on the same rows.
        dispatch(
            &ParsedArgs::parse([
                "predict",
                "--model",
                model_path.to_str().unwrap(),
                "--input",
                train.to_str().unwrap(),
                "--output",
                "csv",
                "--out",
                labels_path.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        let expected = std::fs::read_to_string(&labels_path).unwrap();

        let model_spec = format!("blobs={}", model_path.display());
        let (server, banner) = start_serve(
            &ParsedArgs::parse(["serve", "--model", &model_spec, "--addr", "127.0.0.1:0"]).unwrap(),
        )
        .unwrap();
        assert!(banner.contains("blobs: kmeans"), "{banner}");
        // Without --verbose the banner has no model summary() line.
        let summary = load_model(&model_path).unwrap().summary();
        assert!(!banner.contains(&summary), "{banner}");

        // The served batch answer is byte-identical to the offline one.
        let body: String = points
            .rows()
            .map(|row| format!("{},{}\n", row[0], row[1]))
            .collect();
        let mut client =
            adawave::serve::Client::connect(server.local_addr(), std::time::Duration::from_secs(5))
                .unwrap();
        let response = client
            .post("/models/blobs/predict-batch", "text/csv", &body)
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.body, expected);

        let typo = client.get("/models/blods").unwrap();
        assert_eq!(typo.status, 404);
        assert!(typo.body.contains("did you mean blobs?"), "{}", typo.body);

        server.shutdown();
        server.join();
        for p in [&train, &model_path, &labels_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_banner_includes_summaries_only_with_verbose() {
        let (points, truth) = toy_points();
        let train = save_temp_dataset("adawave_cli_serve_verbose", &points, &truth);
        let model_path = std::env::temp_dir().join("adawave_cli_serve_verbose.awm");
        dispatch(
            &ParsedArgs::parse([
                "cluster",
                "--input",
                train.to_str().unwrap(),
                "--algo",
                "kmeans",
                "--param",
                "k=2",
                "--seed",
                "7",
                "--save-model",
                model_path.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();
        let model_spec = model_path.to_str().unwrap().to_string();
        let (server, banner) = start_serve(
            &ParsedArgs::parse([
                "serve",
                "--model",
                &model_spec,
                "--addr",
                "127.0.0.1:0",
                "--verbose",
            ])
            .unwrap(),
        )
        .unwrap();
        // The bare-file spec is served under its stem, with the summary.
        assert!(
            banner.contains("adawave_cli_serve_verbose: kmeans"),
            "{banner}"
        );
        let model = load_model(&model_path).unwrap();
        assert!(banner.contains(&model.summary()), "{banner}");
        server.shutdown();
        server.join();
        for p in [&train, &model_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_rejects_missing_models_and_bad_files() {
        let err = start_serve(&ParsedArgs::parse(["serve"]).unwrap())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("--model"), "{err}");

        let err = start_serve(
            &ParsedArgs::parse(["serve", "--model", "x=/definitely/not/here.awm"]).unwrap(),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("loading model 'x'"), "{err}");
    }

    fn save_temp_script(name: &str, source: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("{name}.adw"));
        std::fs::write(&path, source).unwrap();
        path
    }

    #[test]
    fn script_runs_a_file_and_reports_per_plan() {
        let path = save_temp_script(
            "adawave_cli_script_pass",
            "marker $$kmeans on blobs$$\n\
             generate blobs n=200 k=2 seed=7\n\
             fit kmeans seed=7\n\
             assert clusters == 2\n\
             assert points == 200\n",
        );
        let out = dispatch(&ParsedArgs::parse(["script", path.to_str().unwrap()]).unwrap())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.contains("plan \"kmeans on blobs\" .. ok"), "{out}");
        assert!(out.contains("1 plan: 1 passed, 0 failed"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn script_list_is_a_dry_run_over_plan_titles() {
        // The dataset below doesn't exist: --list must not execute steps.
        let path = save_temp_script(
            "adawave_cli_script_list",
            "marker $$first$$\n\
             load \"no-such-file.csv\"\n\
             fit adawave\n\
             marker $$second$$\n\
             generate blobs n=100\n\
             fit kmeans\n",
        );
        for argv in [
            vec!["script", path.to_str().unwrap(), "--list"],
            // `--list <file>` swallows the file as its value; the command
            // folds it back into the file list.
            vec!["script", "--list", path.to_str().unwrap()],
        ] {
            let out = dispatch(&ParsedArgs::parse(argv).unwrap()).unwrap();
            assert!(out.contains("2 plan(s)"), "{out}");
            assert!(out.contains("first") && out.contains("second"), "{out}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn audit_subcommand_lists_reports_and_suggests() {
        // --list prints the lint table without touching the filesystem.
        let out = dispatch(&ParsedArgs::parse(["audit", "--list"]).unwrap()).unwrap();
        assert!(out.contains("float-sort-unwrap"), "{out}");
        assert!(out.contains("audit:allow"), "{out}");

        // The known-bad fixture workspace: findings, exit code 1, the
        // pinned file:line diagnostics in the message.
        let fixtures = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../audit/tests/fixtures/workspace"
        );
        let err = dispatch(&ParsedArgs::parse(["audit", "--root", fixtures]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let msg = err.to_string();
        assert!(
            msg.contains("grid/src/bad_float.rs:2: float-sort-unwrap"),
            "{msg}"
        );
        assert!(msg.contains("finding(s)"), "{msg}");

        // Restricting the pass to one lint narrows the findings.
        let err =
            dispatch(&ParsedArgs::parse(["audit", "--root", fixtures, "wall-clock"]).unwrap())
                .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("wall-clock"), "{err}");
        assert!(!err.to_string().contains("float-sort-unwrap"), "{err}");

        // A misspelled lint name is a usage error with a suggestion.
        let err =
            dispatch(&ParsedArgs::parse(["audit", "--root", fixtures, "wall-cloak"]).unwrap())
                .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("wall-clock"), "{err}");

        // The live workspace itself audits clean through the subcommand.
        let here = concat!(env!("CARGO_MANIFEST_DIR"));
        let out = dispatch(&ParsedArgs::parse(["audit", "--root", here]).unwrap())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.contains("workspace clean"), "{out}");
    }

    #[test]
    fn script_failures_and_usage_map_to_exit_codes() {
        // No files: usage error, exit code 2.
        let err = dispatch(&ParsedArgs::parse(["script"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(
            err.to_string().contains("at least one script file"),
            "{err}"
        );

        // Unknown command: usage error, exit code 2.
        let err = dispatch(&ParsedArgs::parse(["frobnicate"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);

        // Positional operand on an options-only command: exit code 2.
        let err = dispatch(&ParsedArgs::parse(["cluster", "stray.csv"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("stray.csv"), "{err}");

        // A parse error carries the 1-based line number: exit code 1.
        let path = save_temp_script(
            "adawave_cli_script_parse_error",
            "marker $$broken$$\ngenerate blobs n=100\nfrobnicate the grid\n",
        );
        let err =
            dispatch(&ParsedArgs::parse(["script", path.to_str().unwrap()]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_file(&path).ok();

        // A failing assertion: exit code 1, report names the line.
        let path = save_temp_script(
            "adawave_cli_script_assert_fail",
            "marker $$fails$$\n\
             generate blobs n=100 k=2 seed=7\n\
             fit kmeans seed=7\n\
             assert clusters == 9\n",
        );
        let err =
            dispatch(&ParsedArgs::parse(["script", path.to_str().unwrap()]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("FAILED at line 4"), "{err}");
        assert!(err.to_string().contains("1 of 1 script(s) failed"), "{err}");
        std::fs::remove_file(&path).ok();

        // A missing file: exit code 1.
        let err = dispatch(&ParsedArgs::parse(["script", "/definitely/not/here.adw"]).unwrap())
            .unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn unknown_command_suggests_the_closest_subcommand() {
        let err = dispatch(&ParsedArgs::parse(["streem"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("did you mean stream?"), "{err}");
        let err = dispatch(&ParsedArgs::parse(["merge-accumulator"]).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("did you mean merge-accumulators?"),
            "{err}"
        );
        // Nothing close: no suggestion, still a usage error.
        let err = dispatch(&ParsedArgs::parse(["frobnicate"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn shard_ingest_and_merge_match_the_one_shot_cluster_command() {
        let (points, truth) = toy_points();
        let data = save_temp_dataset("adawave_cli_shard_merge", &points, &truth);
        let dir = std::env::temp_dir();
        let fit_out = dir.join("adawave_cli_shard_fit.csv");
        dispatch(
            &ParsedArgs::parse([
                "cluster",
                "--input",
                data.to_str().unwrap(),
                "--scale",
                "32",
                "--out",
                fit_out.to_str().unwrap(),
                "--quiet",
            ])
            .unwrap(),
        )
        .unwrap();

        for shards in [1usize, 3] {
            let mut argv: Vec<String> = vec!["merge-accumulators".into()];
            let mut files = Vec::new();
            for i in 1..=shards {
                let acc = dir.join(format!("adawave_cli_shard_{shards}_{i}.awa"));
                let report = dispatch(
                    &ParsedArgs::parse([
                        "shard-ingest",
                        "--input",
                        data.to_str().unwrap(),
                        "--shard",
                        &format!("{i}/{shards}"),
                        "--scale",
                        "32",
                        "--batch-rows",
                        "64",
                        "--out",
                        acc.to_str().unwrap(),
                    ])
                    .unwrap(),
                )
                .unwrap();
                assert!(report.contains(&format!("shard {i}/{shards}")), "{report}");
                argv.push("--input".into());
                argv.push(acc.to_str().unwrap().into());
                files.push(acc);
            }
            let merged_out = dir.join(format!("adawave_cli_shard_merged_{shards}.csv"));
            let model_path = dir.join(format!("adawave_cli_shard_model_{shards}.awm"));
            argv.extend([
                "--out".into(),
                merged_out.to_str().unwrap().into(),
                "--save-model".into(),
                model_path.to_str().unwrap().into(),
            ]);
            let report = dispatch(&ParsedArgs::parse(argv).unwrap()).unwrap();
            assert!(
                report.contains(&format!("merged {shards} accumulator(s)")),
                "{report}"
            );
            assert!(report.contains("saved model"), "{report}");
            // The distributed labels are byte-identical to the one-shot fit.
            assert_eq!(
                std::fs::read_to_string(&merged_out).unwrap(),
                std::fs::read_to_string(&fit_out).unwrap(),
                "{shards} shard(s)"
            );
            // And the saved model re-predicts the same labels file.
            let pred_out = dir.join(format!("adawave_cli_shard_pred_{shards}.csv"));
            dispatch(
                &ParsedArgs::parse([
                    "predict",
                    "--model",
                    model_path.to_str().unwrap(),
                    "--input",
                    data.to_str().unwrap(),
                    "--out",
                    pred_out.to_str().unwrap(),
                    "--quiet",
                ])
                .unwrap(),
            )
            .unwrap();
            assert_eq!(
                std::fs::read_to_string(&pred_out).unwrap(),
                std::fs::read_to_string(&fit_out).unwrap(),
                "{shards} shard(s)"
            );
            for f in files {
                std::fs::remove_file(f).ok();
            }
            for f in [&merged_out, &model_path, &pred_out] {
                std::fs::remove_file(f).ok();
            }
        }
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&fit_out).ok();
    }

    #[test]
    fn stream_checkpoint_resumes_and_reproduces_the_labels() {
        let (points, truth) = toy_points();
        let data = save_temp_dataset("adawave_cli_stream_ckpt", &points, &truth);
        let ckpt = std::env::temp_dir().join("adawave_cli_stream_ckpt.awa");
        std::fs::remove_file(&ckpt).ok();
        let config =
            adawave_config_from_args(&ParsedArgs::parse(["stream", "--scale", "32"]).unwrap())
                .unwrap();

        // The reference: an uninterrupted prescan stream.
        let reference = run_stream(&data, 64, true, config.clone()).unwrap();

        // "Crash" after 100 rows: a checkpoint written mid-stream by a
        // partial session over the same domain and config.
        let domain = adawave_stream::finite_bounds(points.view()).unwrap();
        let mut partial = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
        partial.ingest(point_rows(&points, 0, 100)).unwrap();
        save_accumulator(&ckpt, &partial).unwrap();

        // The resumed run skips those 100 rows and matches bit for bit.
        let spec = CheckpointSpec {
            path: ckpt.clone(),
            every: 50,
        };
        let resumed =
            run_stream_checkpointed(&data, 64, true, config.clone(), Some(&spec)).unwrap();
        assert_eq!(resumed.resumed_points, 100);
        assert_eq!(resumed.labels, reference.labels);
        assert_eq!(resumed.points, reference.points);

        // The final flush leaves a complete checkpoint: a rerun skips
        // every row and still produces the same labels.
        let rerun = run_stream_checkpointed(&data, 64, true, config.clone(), Some(&spec)).unwrap();
        assert_eq!(rerun.resumed_points, points.len());
        assert_eq!(rerun.labels, reference.labels);

        // A config mismatch is rejected, naming the checkpoint.
        let other =
            adawave_config_from_args(&ParsedArgs::parse(["stream", "--scale", "16"]).unwrap())
                .unwrap();
        let err = run_stream_checkpointed(&data, 64, true, other, Some(&spec)).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        assert!(err.to_string().contains(ckpt.to_str().unwrap()), "{err}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn stream_checkpoint_flags_report_resume_and_validate() {
        let (points, truth) = toy_points();
        let data = save_temp_dataset("adawave_cli_ckpt_flags", &points, &truth);
        let ckpt = std::env::temp_dir().join("adawave_cli_ckpt_flags.awa");
        std::fs::remove_file(&ckpt).ok();
        let argv = [
            "stream",
            "--input",
            data.to_str().unwrap(),
            "--scale",
            "32",
            "--prescan",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "100",
            "--quiet",
        ];
        let report = dispatch(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(report.contains("checkpoint"), "{report}");
        assert!(ckpt.exists(), "final flush must leave the checkpoint");
        // The rerun resumes: every row is already in the file.
        let report = dispatch(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(report.contains("resumed from"), "{report}");
        assert!(
            report.contains(&format!("{} already-ingested rows skipped", points.len())),
            "{report}"
        );
        // --checkpoint-every without --checkpoint is a usage error.
        let err = dispatch(
            &ParsedArgs::parse([
                "stream",
                "--input",
                data.to_str().unwrap(),
                "--checkpoint-every",
                "5",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--checkpoint"), "{err}");
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn shard_and_merge_reject_bad_arguments_and_name_paths() {
        // Bad shard specs: exit 2 before any file is touched.
        for spec in ["0/3", "4/3", "banana", "1/0", "1"] {
            let err = dispatch(
                &ParsedArgs::parse([
                    "shard-ingest",
                    "--input",
                    "x.csv",
                    "--shard",
                    spec,
                    "--out",
                    "y.awa",
                ])
                .unwrap(),
            )
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{spec}");
        }
        // No inputs: usage error.
        let err = dispatch(&ParsedArgs::parse(["merge-accumulators"]).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--input"), "{err}");
        // A missing accumulator file names the offending path.
        let err = dispatch(
            &ParsedArgs::parse(["merge-accumulators", "--input", "/definitely/not/here.awa"])
                .unwrap(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("/definitely/not/here.awa"),
            "{err}"
        );

        let (points, truth) = toy_points();
        let data = save_temp_dataset("adawave_cli_shard_badout", &points, &truth);
        // An unwritable --out names the path too.
        let err = dispatch(
            &ParsedArgs::parse([
                "shard-ingest",
                "--input",
                data.to_str().unwrap(),
                "--shard",
                "1/1",
                "--scale",
                "32",
                "--out",
                "/definitely/not/here/acc.awa",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("writing /definitely/not/here/acc.awa"),
            "{err}"
        );

        // Shards written under different configurations refuse to merge,
        // and the error names the offending input file.
        let dir = std::env::temp_dir();
        let a = dir.join("adawave_cli_merge_mismatch_a.awa");
        let b = dir.join("adawave_cli_merge_mismatch_b.awa");
        for (path, shard, scale) in [(&a, "1/2", "32"), (&b, "2/2", "16")] {
            dispatch(
                &ParsedArgs::parse([
                    "shard-ingest",
                    "--input",
                    data.to_str().unwrap(),
                    "--shard",
                    shard,
                    "--scale",
                    scale,
                    "--out",
                    path.to_str().unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
        }
        let err = dispatch(
            &ParsedArgs::parse([
                "merge-accumulators",
                "--input",
                a.to_str().unwrap(),
                "--input",
                b.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains(b.to_str().unwrap()), "{err}");
        for p in [&data, &a, &b] {
            std::fs::remove_file(p).ok();
        }
    }
}
