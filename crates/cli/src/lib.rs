//! # adawave-cli
//!
//! The `adawave` command-line tool: generate the paper's datasets, cluster
//! any CSV file with AdaWave or one of the fourteen implemented baselines,
//! train once and serve out-of-sample points with `predict` (from a model
//! file saved by `cluster --save-model`, or fitted on the spot), evaluate
//! predictions against ground truth, and run a quick noise sweep.
//!
//! The crate is a thin shell around the workspace libraries: every command
//! is an ordinary function in [`commands`] operating on in-memory data, and
//! [`args`] is a small dependency-free `--key value` parser, so the whole
//! tool is unit-testable without spawning processes. Algorithms are
//! resolved by name through the unified `AlgorithmRegistry` (see
//! `adawave::standard_registry`), so `cluster --algo <name> --param
//! key=value` reaches any registered algorithm with zero per-algorithm
//! dispatch in this crate, and `list-algorithms` enumerates them all.
//!
//! ```
//! use adawave_cli::args::ParsedArgs;
//! use adawave_cli::commands::dispatch;
//!
//! let help = dispatch(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
//! assert!(help.contains("adawave <command>"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;
