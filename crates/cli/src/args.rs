//! A dependency-free command-line argument parser.
//!
//! The CLI accepts a single subcommand followed by `--key value` pairs and
//! boolean `--flag` switches. Keeping the parser in-crate avoids pulling a
//! full argument-parsing dependency into the workspace for five commands.

use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus its options.
///
/// Options may repeat (`--param k=3 --param seed=7`): [`get`](Self::get)
/// returns the last value, [`get_all`](Self::get_all) every value in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (e.g. `cluster`), empty when none was given.
    pub command: String,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

/// Errors produced while parsing or interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was supplied.
    MissingCommand,
    /// An option was supplied without a value (e.g. a trailing `--out`).
    MissingValue(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option value failed to parse.
    InvalidValue {
        /// Option name.
        option: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// A positional argument appeared in a command that takes none.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `adawave help`)"),
            ArgError::MissingValue(opt) => write!(f, "option --{opt} needs a value"),
            ArgError::MissingOption(opt) => write!(f, "required option --{opt} is missing"),
            ArgError::InvalidValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value}: expected {expected}"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument '{arg}' (options start with --)")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse an argument vector (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into).peekable();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut parsed = ParsedArgs {
            command,
            ..Default::default()
        };
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // A following token that does not itself start with `--` is
                // the value; otherwise the option is a boolean flag.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        parsed
                            .options
                            .entry(name.to_string())
                            .or_default()
                            .push(value);
                    }
                    _ => parsed.flags.push(name.to_string()),
                }
            } else {
                parsed.positionals.push(arg);
            }
        }
        Ok(parsed)
    }

    /// Positional (non-option) arguments, in order. Commands that take
    /// none should call [`reject_positionals`](Self::reject_positionals).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Error out on the first positional argument — for the commands
    /// whose grammar is options-only.
    pub fn reject_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(arg) => Err(ArgError::UnexpectedPositional(arg.clone())),
        }
    }

    /// Raw value of an option, if present (the last one when repeated).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every value given for a repeatable option, in order.
    pub fn get_all(&self, name: &str) -> impl Iterator<Item = &str> {
        self.options
            .get(name)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::MissingOption(name.to_string()))
    }

    /// An optional option parsed into `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| ArgError::InvalidValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>().to_string(),
            }),
        }
    }

    /// A comma-separated list of `f64` values.
    pub fn parse_f64_list(&self, name: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|v| {
                    v.trim().parse::<f64>().map_err(|_| ArgError::InvalidValue {
                        option: name.to_string(),
                        value: raw.to_string(),
                        expected: "a comma-separated list of numbers".to_string(),
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let args = ParsedArgs::parse(["cluster", "--input", "a.csv", "--verbose", "--scale", "64"])
            .unwrap();
        assert_eq!(args.command, "cluster");
        assert_eq!(args.get("input"), Some("a.csv"));
        assert_eq!(args.get("scale"), Some("64"));
        assert!(args.flag("verbose"));
        assert!(!args.flag("quiet"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()),
            Err(ArgError::MissingCommand)
        );
        assert_eq!(
            ParsedArgs::parse(["--input", "x"]),
            Err(ArgError::MissingCommand)
        );
    }

    #[test]
    fn trailing_option_without_value_is_a_flag() {
        let args = ParsedArgs::parse(["cluster", "--reassign-noise"]).unwrap();
        assert!(args.flag("reassign-noise"));
    }

    #[test]
    fn repeated_options_collect_in_order() {
        let args = ParsedArgs::parse([
            "cluster", "--param", "k=3", "--param", "seed=7", "--param", "k=5",
        ])
        .unwrap();
        assert_eq!(
            args.get_all("param").collect::<Vec<_>>(),
            vec!["k=3", "seed=7", "k=5"]
        );
        // `get` sees the last occurrence.
        assert_eq!(args.get("param"), Some("k=5"));
        assert_eq!(args.get_all("absent").count(), 0);
    }

    #[test]
    fn positionals_collect_and_can_be_rejected() {
        let args = ParsedArgs::parse(["script", "a.adw", "--list", "b.adw"]).unwrap();
        assert_eq!(args.positionals(), ["a.adw"]);
        assert!(args.reject_positionals().is_err());
        assert!(matches!(
            args.reject_positionals(),
            Err(ArgError::UnexpectedPositional(_))
        ));
        let none = ParsedArgs::parse(["cluster", "--scale", "64"]).unwrap();
        assert!(none.positionals().is_empty());
        assert!(none.reject_positionals().is_ok());
    }

    #[test]
    fn require_and_parse_or() {
        let args = ParsedArgs::parse(["generate", "--noise", "55.5"]).unwrap();
        assert_eq!(args.require("noise").unwrap(), "55.5");
        assert!(matches!(
            args.require("out"),
            Err(ArgError::MissingOption(_))
        ));
        assert_eq!(args.parse_or::<f64>("noise", 0.0).unwrap(), 55.5);
        assert_eq!(args.parse_or::<u32>("scale", 128).unwrap(), 128);
        assert!(args.parse_or::<u32>("noise", 1).is_err());
    }

    #[test]
    fn f64_lists() {
        let args = ParsedArgs::parse(["sweep", "--noise", "20, 50,80"]).unwrap();
        assert_eq!(
            args.parse_f64_list("noise", &[]).unwrap(),
            vec![20.0, 50.0, 80.0]
        );
        assert_eq!(args.parse_f64_list("other", &[1.0]).unwrap(), vec![1.0]);
        let bad = ParsedArgs::parse(["sweep", "--noise", "20,x"]).unwrap();
        assert!(bad.parse_f64_list("noise", &[]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ArgError::MissingOption("input".into())
            .to_string()
            .contains("--input"));
        assert!(ArgError::InvalidValue {
            option: "scale".into(),
            value: "abc".into(),
            expected: "u32".into()
        }
        .to_string()
        .contains("abc"));
    }
}
