//! Entry point of the `adawave` command-line tool.

use std::process::ExitCode;

use adawave_cli::args::ParsedArgs;
use adawave_cli::commands::{dispatch, USAGE};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Exit codes: 0 = success, 1 = runtime/assertion failure,
    // 2 = usage error (CliError::exit_code).
    let parsed = match ParsedArgs::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
