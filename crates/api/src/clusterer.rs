//! The [`Clusterer`] trait and the error type shared by every algorithm.

use crate::{Clustering, PointsView};

/// Errors produced while resolving or running a clustering algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The requested algorithm name is not registered.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// A parameter key is not accepted by the algorithm.
    UnknownParam {
        /// The algorithm being configured.
        algorithm: String,
        /// The offending key.
        param: String,
        /// The keys the algorithm accepts.
        known: Vec<String>,
    },
    /// A parameter value failed to parse or is out of range.
    InvalidParam {
        /// The offending key.
        param: String,
        /// The raw value.
        value: String,
        /// What was expected instead.
        expected: String,
    },
    /// The input point set is empty or inconsistent.
    InvalidInput {
        /// Human-readable description.
        context: String,
    },
    /// The algorithm started but could not produce a clustering.
    Failed {
        /// The algorithm that failed.
        algorithm: String,
        /// Human-readable description.
        context: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownAlgorithm { name, known } => {
                write!(
                    f,
                    "unknown algorithm '{name}' (known: {})",
                    known.join(", ")
                )
            }
            ClusterError::UnknownParam {
                algorithm,
                param,
                known,
            } => {
                if known.is_empty() {
                    write!(
                        f,
                        "algorithm '{algorithm}' takes no parameters, got '{param}'"
                    )
                } else {
                    write!(
                        f,
                        "algorithm '{algorithm}' does not accept parameter '{param}' (accepted: {})",
                        known.join(", ")
                    )
                }
            }
            ClusterError::InvalidParam {
                param,
                value,
                expected,
            } => write!(f, "parameter {param}={value}: expected {expected}"),
            ClusterError::InvalidInput { context } => write!(f, "invalid input: {context}"),
            ClusterError::Failed { algorithm, context } => {
                write!(f, "{algorithm} failed: {context}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A clustering algorithm behind a uniform interface.
///
/// Implementations are configured up front (usually from [`Params`] through
/// the [`AlgorithmRegistry`]) and are immutable during [`fit`]: the same
/// clusterer can be reused across datasets, and all randomness is derived
/// from configured seeds so a given `(config, dataset)` pair is
/// deterministic.
///
/// [`Params`]: crate::Params
/// [`AlgorithmRegistry`]: crate::AlgorithmRegistry
/// [`fit`]: Clusterer::fit
pub trait Clusterer {
    /// The registry key of this algorithm (e.g. `"kmeans"`).
    fn name(&self) -> &str;

    /// One line describing the algorithm and its effective configuration.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Cluster a point set. Every input point receives a verdict in the
    /// returned [`Clustering`]: a compacted cluster id or noise.
    ///
    /// The input is a zero-copy [`PointsView`] over a flat row-major
    /// buffer; owned data converts with [`PointMatrix::view`]. An empty or
    /// zero-dimensional point set is [`ClusterError::InvalidInput`] for
    /// every algorithm.
    ///
    /// [`PointMatrix::view`]: crate::PointMatrix::view
    fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError>;
}

/// The uniform input validation every [`Clusterer::fit`] applies: empty and
/// zero-dimensional point sets are invalid for all algorithms (dimension
/// now lives on the matrix, so this can never panic on `points[0]`).
pub fn validate_fit_input(points: PointsView<'_>) -> Result<(), ClusterError> {
    if points.is_empty() {
        return Err(ClusterError::InvalidInput {
            context: "empty point set".to_string(),
        });
    }
    if points.dims() == 0 {
        return Err(ClusterError::InvalidInput {
            context: "points have zero dimensions".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ClusterError::UnknownAlgorithm {
            name: "frob".into(),
            known: vec!["adawave".into(), "kmeans".into()],
        };
        let msg = e.to_string();
        assert!(
            msg.contains("frob") && msg.contains("adawave, kmeans"),
            "{msg}"
        );

        let e = ClusterError::UnknownParam {
            algorithm: "kmeans".into(),
            param: "bandwidth".into(),
            known: vec!["k".into(), "seed".into()],
        };
        assert!(e.to_string().contains("bandwidth"), "{e}");

        let e = ClusterError::InvalidParam {
            param: "k".into(),
            value: "banana".into(),
            expected: "a positive integer".into(),
        };
        assert!(e.to_string().contains("k=banana"), "{e}");
    }

    #[test]
    fn describe_defaults_to_name() {
        struct Noop;
        impl Clusterer for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
                Ok(Clustering::all_noise(points.len()))
            }
        }
        assert_eq!(Noop.describe(), "noop");
        let points = crate::PointMatrix::from_rows(vec![vec![0.0]]).unwrap();
        assert_eq!(Noop.fit(points.view()).unwrap().noise_count(), 1);
    }

    #[test]
    fn validate_fit_input_rejects_empty_and_zero_dimensional() {
        let empty = crate::PointMatrix::new(2);
        assert!(matches!(
            validate_fit_input(empty.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let zero_dim = crate::PointMatrix::from_rows(vec![vec![], vec![]]).unwrap();
        assert!(matches!(
            validate_fit_input(zero_dim.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let fine = crate::PointMatrix::from_rows(vec![vec![0.5]]).unwrap();
        assert!(validate_fit_input(fine.view()).is_ok());
    }
}
