//! The [`Clusterer`] trait and the error type shared by every algorithm.

use crate::{Clustering, FitOutcome, PointsView};

/// Candidates from `known` within a small edit distance of `target`,
/// closest first — the "did you mean ...?" suggestions attached to
/// unknown-name errors. At most three are returned, and only candidates
/// whose distance is small relative to the target's length qualify, so a
/// wild typo produces no misleading suggestion.
pub fn closest_matches<'a>(target: &str, known: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    let budget = (target.len() / 3).max(2);
    let mut scored: Vec<(usize, &str)> = known
        .into_iter()
        .filter_map(|candidate| {
            let d = edit_distance(target, candidate);
            (d <= budget).then_some((d, candidate))
        })
        .collect();
    scored.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().take(3).map(|(_, c)| c).collect()
}

/// Levenshtein distance over bytes (all our names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitute.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// The `did you mean ...?` fragment for an unknown name, empty when no
/// known name is close enough.
fn did_you_mean(target: &str, known: &[String]) -> String {
    let close = closest_matches(target, known.iter().map(String::as_str));
    if close.is_empty() {
        String::new()
    } else {
        format!(" — did you mean {}?", close.join(" or "))
    }
}

/// Errors produced while resolving or running a clustering algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The requested algorithm name is not registered.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// A parameter key is not accepted by the algorithm.
    UnknownParam {
        /// The algorithm being configured.
        algorithm: String,
        /// The offending key.
        param: String,
        /// The keys the algorithm accepts.
        known: Vec<String>,
    },
    /// A parameter value failed to parse or is out of range.
    InvalidParam {
        /// The offending key.
        param: String,
        /// The raw value.
        value: String,
        /// What was expected instead.
        expected: String,
    },
    /// The input point set is empty or inconsistent.
    InvalidInput {
        /// Human-readable description.
        context: String,
    },
    /// The algorithm started but could not produce a clustering.
    Failed {
        /// The algorithm that failed.
        algorithm: String,
        /// Human-readable description.
        context: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownAlgorithm { name, known } => {
                write!(
                    f,
                    "unknown algorithm '{name}'{} (known: {})",
                    did_you_mean(name, known),
                    known.join(", ")
                )
            }
            ClusterError::UnknownParam {
                algorithm,
                param,
                known,
            } => {
                if known.is_empty() {
                    write!(
                        f,
                        "algorithm '{algorithm}' takes no parameters, got '{param}'"
                    )
                } else {
                    write!(
                        f,
                        "algorithm '{algorithm}' does not accept parameter '{param}'{} (accepted: {})",
                        did_you_mean(param, known),
                        known.join(", ")
                    )
                }
            }
            ClusterError::InvalidParam {
                param,
                value,
                expected,
            } => write!(f, "parameter {param}={value}: expected {expected}"),
            ClusterError::InvalidInput { context } => write!(f, "invalid input: {context}"),
            ClusterError::Failed { algorithm, context } => {
                write!(f, "{algorithm} failed: {context}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A clustering algorithm behind a uniform interface.
///
/// Implementations are configured up front (usually from [`Params`] through
/// the [`AlgorithmRegistry`]) and are immutable during [`fit`]: the same
/// clusterer can be reused across datasets, and all randomness is derived
/// from configured seeds so a given `(config, dataset)` pair is
/// deterministic.
///
/// The trait follows a two-stage fit/predict contract: [`fit_model`] is
/// the one required method and returns a [`FitOutcome`] — the training
/// labels plus a reusable trained [`Model`](crate::Model) for labeling
/// out-of-sample points — while [`fit`] is a default shim that discards
/// the model, so label-only call sites are unchanged. Implementations
/// that can fit labels without building the model artifact should
/// override [`fit`] with the cheaper path.
///
/// [`Params`]: crate::Params
/// [`AlgorithmRegistry`]: crate::AlgorithmRegistry
/// [`fit`]: Clusterer::fit
/// [`fit_model`]: Clusterer::fit_model
pub trait Clusterer {
    /// The registry key of this algorithm (e.g. `"kmeans"`).
    fn name(&self) -> &str;

    /// One line describing the algorithm and its effective configuration.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Cluster a point set and return both the training labels and the
    /// trained [`Model`](crate::Model). Predicting with the model on the
    /// training batch reproduces `clustering` exactly (the contract pinned
    /// for every registered algorithm by `tests/predict_parity.rs`).
    ///
    /// The input is a zero-copy [`PointsView`] over a flat row-major
    /// buffer; owned data converts with [`PointMatrix::view`]. An empty or
    /// zero-dimensional point set is [`ClusterError::InvalidInput`] for
    /// every algorithm.
    ///
    /// [`PointMatrix::view`]: crate::PointMatrix::view
    fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError>;

    /// Cluster a point set. Every input point receives a verdict in the
    /// returned [`Clustering`]: a compacted cluster id or noise.
    ///
    /// Default shim over [`fit_model`](Self::fit_model) that discards the
    /// trained model, so pre-existing label-only call sites keep working.
    fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        Ok(self.fit_model(points)?.clustering)
    }
}

/// The uniform input validation every [`Clusterer::fit`] applies: empty and
/// zero-dimensional point sets are invalid for all algorithms (dimension
/// now lives on the matrix, so this can never panic on `points[0]`).
pub fn validate_fit_input(points: PointsView<'_>) -> Result<(), ClusterError> {
    if points.is_empty() {
        return Err(ClusterError::InvalidInput {
            context: "empty point set".to_string(),
        });
    }
    if points.dims() == 0 {
        return Err(ClusterError::InvalidInput {
            context: "points have zero dimensions".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ClusterError::UnknownAlgorithm {
            name: "frob".into(),
            known: vec!["adawave".into(), "kmeans".into()],
        };
        let msg = e.to_string();
        assert!(
            msg.contains("frob") && msg.contains("adawave, kmeans"),
            "{msg}"
        );

        let e = ClusterError::UnknownParam {
            algorithm: "kmeans".into(),
            param: "bandwidth".into(),
            known: vec!["k".into(), "seed".into()],
        };
        assert!(e.to_string().contains("bandwidth"), "{e}");

        let e = ClusterError::InvalidParam {
            param: "k".into(),
            value: "banana".into(),
            expected: "a positive integer".into(),
        };
        assert!(e.to_string().contains("k=banana"), "{e}");
    }

    #[test]
    fn describe_defaults_to_name_and_fit_shims_over_fit_model() {
        struct Noop;
        struct NoopModel;
        impl crate::Model for NoopModel {
            fn algorithm(&self) -> &str {
                "noop"
            }
            fn dims(&self) -> usize {
                1
            }
            fn predict_one(&self, _point: &[f64]) -> Option<usize> {
                None
            }
            fn summary(&self) -> String {
                "noop model: everything is noise".to_string()
            }
        }
        impl Clusterer for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
                Ok(FitOutcome {
                    clustering: Clustering::all_noise(points.len()),
                    model: Box::new(NoopModel),
                })
            }
        }
        assert_eq!(Noop.describe(), "noop");
        let points = crate::PointMatrix::from_rows(vec![vec![0.0]]).unwrap();
        // The default `fit` is a shim over `fit_model`.
        assert_eq!(Noop.fit(points.view()).unwrap().noise_count(), 1);
        let outcome = Noop.fit_model(points.view()).unwrap();
        assert_eq!(outcome.clustering.noise_count(), 1);
        assert_eq!(outcome.model.predict_one(&[0.0]), None);
    }

    #[test]
    fn unknown_names_get_did_you_mean_suggestions() {
        let known: Vec<String> = ["adawave", "kmeans", "dbscan", "meanshift"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // A close typo is suggested...
        let err = ClusterError::UnknownAlgorithm {
            name: "kmean".into(),
            known: known.clone(),
        };
        let msg = err.to_string();
        assert!(msg.contains("did you mean kmeans?"), "{msg}");
        // ...a wild name is not.
        let err = ClusterError::UnknownAlgorithm {
            name: "zzzzzzzzzz".into(),
            known: known.clone(),
        };
        assert!(!err.to_string().contains("did you mean"), "{err}");
        // Unknown params reuse the same suggestion path.
        let err = ClusterError::UnknownParam {
            algorithm: "adawave".into(),
            param: "scal".into(),
            known: vec!["scale".into(), "levels".into()],
        };
        let msg = err.to_string();
        assert!(msg.contains("did you mean scale?"), "{msg}");
    }

    #[test]
    fn closest_matches_ranks_by_distance_and_caps_at_three() {
        let known = ["scale", "seed", "levels", "wavelet", "threshold"];
        let close = closest_matches("scal", known);
        assert_eq!(close.first(), Some(&"scale"));
        assert!(close.len() <= 3);
        assert!(closest_matches("bandwidth", known).is_empty());
        // Exact match ranks first even among near-ties.
        assert_eq!(closest_matches("seed", known).first(), Some(&"seed"));
    }

    #[test]
    fn validate_fit_input_rejects_empty_and_zero_dimensional() {
        let empty = crate::PointMatrix::new(2);
        assert!(matches!(
            validate_fit_input(empty.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let zero_dim = crate::PointMatrix::from_rows(vec![vec![], vec![]]).unwrap();
        assert!(matches!(
            validate_fit_input(zero_dim.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let fine = crate::PointMatrix::from_rows(vec![vec![0.5]]).unwrap();
        assert!(validate_fit_input(fine.view()).is_ok());
    }
}
