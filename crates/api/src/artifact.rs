//! The versioned artifact layer: one header format, one payload parser and
//! one error type for every on-disk artifact the workspace writes.
//!
//! An artifact is a dependency-free line-oriented text file:
//!
//! ```text
//! <magic> v1
//! algorithm <name>
//! <kind-specific payload>
//! ```
//!
//! Two [`ArtifactKind`]s exist today: trained **models**
//! (`adawave-model`, written by the umbrella crate's persistence layer)
//! and streaming **accumulators** (`adawave-accumulator`, written by
//! `adawave-stream` for shard ingestion and checkpoint/resume). Both share
//! the header discipline here, the [`PayloadReader`] line parser and the
//! [`f64_to_hex`] bit-exact float encoding, so a save → load round trip
//! reproduces the in-memory artifact bit for bit. The version is checked
//! on load; changing a payload shape means bumping [`ARTIFACT_VERSION`].

use std::path::Path;

/// Current version of every artifact format; part of the header line.
pub const ARTIFACT_VERSION: &str = "v1";

/// The kinds of on-disk artifact the workspace knows, each with its own
/// leading magic so a model file can never be mistaken for an accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A trained model (`adawave-model`): the serving artifact of
    /// `fit_model`, persisted by the umbrella crate.
    Model,
    /// A streaming accumulator (`adawave-accumulator`): a
    /// `StreamingAdaWave` snapshot for shard merge and checkpoint/resume.
    Accumulator,
}

impl ArtifactKind {
    /// The magic word opening every file of this kind.
    pub fn magic(self) -> &'static str {
        match self {
            ArtifactKind::Model => "adawave-model",
            ArtifactKind::Accumulator => "adawave-accumulator",
        }
    }

    /// The noun used in error messages ("model" / "accumulator").
    pub fn noun(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Accumulator => "accumulator",
        }
    }
}

/// Errors produced while reading or writing an artifact file.
#[derive(Debug)]
pub enum ArtifactError {
    /// The filesystem said no.
    Io {
        /// Which kind of artifact was being read or written.
        kind: ArtifactKind,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The file is not a well-formed artifact of this kind and version.
    Format {
        /// Which kind of artifact was expected.
        kind: ArtifactKind,
        /// Human-readable description of the problem.
        context: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { kind, error } => write!(f, "{} file i/o: {error}", kind.noun()),
            ArtifactError::Format { kind, context } => {
                write!(f, "bad {} file: {context}", kind.noun())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { error, .. } => Some(error),
            ArtifactError::Format { .. } => None,
        }
    }
}

/// The decoded pieces of an artifact file: the algorithm named in the
/// header plus the kind-specific payload (header lines stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// The `algorithm <name>` header value.
    pub algorithm: String,
    /// Everything after the two header lines, verbatim.
    pub payload: String,
}

/// Render the full artifact file text: header (magic, version, algorithm)
/// plus the payload.
pub fn encode_artifact(kind: ArtifactKind, algorithm: &str, payload: &str) -> String {
    format!(
        "{} {ARTIFACT_VERSION}\nalgorithm {algorithm}\n{payload}",
        kind.magic()
    )
}

/// Split an artifact file's text into its algorithm name and payload,
/// validating the magic and version. The error contexts name the exact
/// missing or mismatched piece.
pub fn decode_artifact(kind: ArtifactKind, text: &str) -> Result<Artifact, ArtifactError> {
    let format = |context: String| ArtifactError::Format { kind, context };
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| format("empty file".into()))?;
    match header.split_once(' ') {
        Some((magic, version)) if magic == kind.magic() => {
            if version != ARTIFACT_VERSION {
                return Err(format(format!(
                    "format version '{version}' (this build reads {ARTIFACT_VERSION})"
                )));
            }
        }
        _ => {
            return Err(format(format!(
                "missing '{} {ARTIFACT_VERSION}' header",
                kind.magic()
            )))
        }
    }
    let algorithm = lines
        .next()
        .and_then(|line| line.strip_prefix("algorithm "))
        .ok_or_else(|| format("missing 'algorithm <name>' line".into()))?
        .to_string();
    let payload = text
        .splitn(3, '\n')
        .nth(2)
        .ok_or_else(|| format("missing payload".into()))?
        .to_string();
    Ok(Artifact { algorithm, payload })
}

/// Write an artifact file in one shot.
pub fn save_artifact(
    path: &Path,
    kind: ArtifactKind,
    algorithm: &str,
    payload: &str,
) -> Result<(), ArtifactError> {
    std::fs::write(path, encode_artifact(kind, algorithm, payload))
        .map_err(|error| ArtifactError::Io { kind, error })
}

/// Write an artifact file atomically: the text lands in a `.tmp` sibling
/// first and is renamed over `path`, so a reader (or a crash mid-write)
/// never observes a half-written artifact — the checkpoint discipline of
/// the streaming layer.
pub fn save_artifact_atomic(
    path: &Path,
    kind: ArtifactKind,
    algorithm: &str,
    payload: &str,
) -> Result<(), ArtifactError> {
    let io = |error: std::io::Error| ArtifactError::Io { kind, error };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, encode_artifact(kind, algorithm, payload)).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Read and decode an artifact file of the given kind.
pub fn load_artifact(path: &Path, kind: ArtifactKind) -> Result<Artifact, ArtifactError> {
    let text = std::fs::read_to_string(path).map_err(|error| ArtifactError::Io { kind, error })?;
    decode_artifact(kind, &text)
}

/// Render an `f64` as the 16-digit hex of its IEEE-754 bits — the
/// bit-exact float encoding every artifact payload uses.
pub fn f64_to_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Parse an [`f64_to_hex`]-encoded float back, bit for bit.
pub fn f64_from_hex(text: &str) -> Option<f64> {
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}

/// Line-oriented reader for artifact payloads: every line is
/// `<field> <values...>` with fields in a fixed per-format order. The one
/// parser every persistable artifact shares, so the error wording and
/// format rules cannot drift between crates.
pub struct PayloadReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> PayloadReader<'a> {
    /// Read `payload` line by line.
    pub fn new(payload: &'a str) -> Self {
        Self {
            lines: payload.lines(),
        }
    }

    /// The next raw line, or an error on a truncated payload.
    pub fn line(&mut self) -> Result<&'a str, String> {
        self.lines
            .next()
            .ok_or_else(|| "truncated model payload".to_string())
    }

    /// The value part of the next line, which must be `<name> <value...>`.
    pub fn field(&mut self, name: &str) -> Result<&'a str, String> {
        let line = self.line()?;
        let (field, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("bad line '{line}'"))?;
        if field != name {
            return Err(format!("expected field '{name}', found '{field}'"));
        }
        Ok(rest)
    }

    /// Parse the next line's value as one `T`.
    pub fn scalar<T: std::str::FromStr>(&mut self, name: &str) -> Result<T, String> {
        let raw = self.field(name)?;
        raw.parse()
            .map_err(|_| format!("bad value '{raw}' for field '{name}'"))
    }

    /// Parse the next line's value as exactly `expected` whitespace-
    /// separated `T`s.
    pub fn list<T: std::str::FromStr>(
        &mut self,
        name: &str,
        expected: usize,
    ) -> Result<Vec<T>, String> {
        let raw = self.field(name)?;
        let values: Vec<T> = raw
            .split_whitespace()
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("bad value '{v}' in '{name}'"))
            })
            .collect::<Result<_, _>>()?;
        if values.len() != expected {
            return Err(format!(
                "field '{name}' holds {} values, expected {expected}",
                values.len()
            ));
        }
        Ok(values)
    }

    /// Parse the next line as a bare (unnamed) row of exactly `expected`
    /// [`f64_to_hex`]-encoded floats — the row format point matrices
    /// (centroids, training batches, mode representatives) use in
    /// persistence payloads.
    pub fn float_row(&mut self, expected: usize) -> Result<Vec<f64>, String> {
        let line = self.line()?;
        let values: Vec<f64> = line
            .split_whitespace()
            .map(|v| f64_from_hex(v).ok_or_else(|| format!("bad float bits '{v}'")))
            .collect::<Result<_, _>>()?;
        if values.len() != expected {
            return Err(format!(
                "row holds {} values, expected {expected}",
                values.len()
            ));
        }
        Ok(values)
    }

    /// Parse the next line's value as exactly `expected`
    /// [`f64_to_hex`]-encoded floats, bit-exactly.
    pub fn float_list(&mut self, name: &str, expected: usize) -> Result<Vec<f64>, String> {
        let raw = self.field(name)?;
        let values: Vec<f64> = raw
            .split_whitespace()
            .map(|v| f64_from_hex(v).ok_or_else(|| format!("bad float bits '{v}' in '{name}'")))
            .collect::<Result<_, _>>()?;
        if values.len() != expected {
            return Err(format!(
                "field '{name}' holds {} values, expected {expected}",
                values.len()
            ));
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_hex_round_trips_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ] {
            let back = f64_from_hex(&f64_to_hex(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        let nan = f64_from_hex(&f64_to_hex(f64::NAN)).unwrap();
        assert!(nan.is_nan());
        assert_eq!(f64_from_hex("xyz"), None);
    }

    #[test]
    fn payload_reader_parses_bare_float_rows() {
        let payload = format!(
            "{} {}\n{}\n",
            f64_to_hex(1.5),
            f64_to_hex(-0.25),
            f64_to_hex(f64::MAX)
        );
        let mut reader = PayloadReader::new(&payload);
        assert_eq!(reader.float_row(2).unwrap(), vec![1.5, -0.25]);
        assert!(reader.float_row(2).is_err(), "wrong arity");
        let mut reader = PayloadReader::new("xyz pqr\n");
        assert!(reader.float_row(2).is_err(), "bad bits");
        let mut reader = PayloadReader::new("");
        assert!(reader.float_row(1).is_err(), "truncated");
    }

    #[test]
    fn encode_decode_round_trips_both_kinds() {
        for kind in [ArtifactKind::Model, ArtifactKind::Accumulator] {
            let text = encode_artifact(kind, "adawave", "dims 2\npayload body\n");
            assert!(text.starts_with(&format!("{} v1\nalgorithm adawave\n", kind.magic())));
            let artifact = decode_artifact(kind, &text).unwrap();
            assert_eq!(artifact.algorithm, "adawave");
            assert_eq!(artifact.payload, "dims 2\npayload body\n");
        }
    }

    #[test]
    fn decode_rejects_malformed_headers_with_context() {
        let kind = ArtifactKind::Accumulator;
        for (text, needle) in [
            ("", "empty"),
            ("wrong-magic v1\n", "header"),
            ("adawave-model v1\nalgorithm adawave\nx\n", "header"),
            ("adawave-accumulator v999\nalgorithm adawave\n", "version"),
            ("adawave-accumulator v1\nno-algo\n", "algorithm"),
            ("adawave-accumulator v1\nalgorithm adawave", "payload"),
        ] {
            let err = decode_artifact(kind, text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
            assert!(err.to_string().contains("accumulator"), "{err}");
        }
    }

    #[test]
    fn atomic_save_leaves_no_temp_file_and_loads_back() {
        let path = std::env::temp_dir().join(format!(
            "adawave_artifact_atomic_{}.awa",
            std::process::id()
        ));
        let kind = ArtifactKind::Accumulator;
        save_artifact_atomic(&path, kind, "adawave", "dims 1\n").unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file renamed away"
        );
        let artifact = load_artifact(&path, kind).unwrap();
        assert_eq!(artifact.algorithm, "adawave");
        assert_eq!(artifact.payload, "dims 1\n");
        // The wrong kind refuses the file instead of misreading it.
        let err = load_artifact(&path, ArtifactKind::Model).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_artifact(Path::new("/definitely/not/here.awa"), kind),
            Err(ArtifactError::Io { .. })
        ));
    }
}
