//! The trained-model layer of the two-stage fit/predict contract.
//!
//! [`Clusterer::fit_model`] splits clustering into a *training* step that
//! produces a [`FitOutcome`] — the labels of the training batch plus a
//! reusable boxed [`Model`] — and a *serving* step in which the model
//! labels arbitrary out-of-sample points without refitting. This mirrors
//! the paper's pipeline structure: the clustered grid is the trained
//! artifact, and labeling a point is a constant-time lookup through it.
//!
//! ## Prediction contract
//!
//! * [`Model::predict`] labels a batch and returns the canonical
//!   [`Clustering`] (cluster ids compacted in order of first appearance
//!   within that batch, the same convention `fit` uses). Predicting on the
//!   exact training batch reproduces the fit labels.
//! * [`Model::predict_one`] labels a single point with the model's stable
//!   internal cluster id — consistent across calls and with the ids the
//!   training clustering used. `None` means noise.
//! * A point the model cannot answer for — non-finite coordinates, outside
//!   a grid model's frozen domain, or of the wrong dimensionality — is
//!   noise (`None`), the same outlier contract the streaming layer uses.
//!   Batch inputs that are empty, zero-dimensional or of the wrong
//!   dimensionality are [`ClusterError::InvalidInput`].
//!
//! [`Clusterer::fit_model`]: crate::Clusterer::fit_model
//!
//! ```
//! use adawave_api::{ClusterError, Clustering, FitOutcome, Model, PointsView};
//!
//! /// A toy model: cluster 0 for x >= 0, cluster 1 otherwise.
//! struct SignModel;
//!
//! impl Model for SignModel {
//!     fn algorithm(&self) -> &str {
//!         "sign"
//!     }
//!     fn dims(&self) -> usize {
//!         1
//!     }
//!     fn predict_one(&self, point: &[f64]) -> Option<usize> {
//!         point[0].is_finite().then_some((point[0] < 0.0) as usize)
//!     }
//!     fn summary(&self) -> String {
//!         "sign model: 2 clusters".to_string()
//!     }
//! }
//!
//! let model = SignModel;
//! assert_eq!(model.predict_one(&[2.5]), Some(0));
//! assert_eq!(model.predict_one(&[f64::NAN]), None); // unanswerable = noise
//! let batch = adawave_api::PointMatrix::from_rows(vec![vec![-1.0], vec![3.0]]).unwrap();
//! let clustering = model.predict(batch.view()).unwrap();
//! assert_eq!(clustering.cluster_count(), 2);
//! ```

use crate::{validate_fit_input, ClusterError, Clustering, PointsView};

/// A trained clustering model: labels arbitrary points without refitting.
///
/// Produced by [`Clusterer::fit_model`](crate::Clusterer::fit_model); see
/// the [module docs](self) for the prediction contract.
///
/// # Thread safety
///
/// The trait requires `Send + Sync`, and every method takes `&self`: a
/// trained model is an immutable artifact that any number of threads may
/// serve from concurrently (e.g. as an `Arc<dyn Model>` shared across a
/// server's worker pool and swapped atomically on hot reload). Model
/// implementations must not cache mutable state behind interior
/// mutability in `predict`/`predict_one` — prediction is a pure function
/// of the model and the query point, which is what makes concurrent
/// serving responses identical to sequential ones.
pub trait Model: Send + Sync {
    /// The registry key of the algorithm that trained this model.
    fn algorithm(&self) -> &str;

    /// Dimensionality of the points the model was trained on.
    fn dims(&self) -> usize;

    /// Label a single point with the model's stable internal cluster id;
    /// `None` is noise (including non-finite, out-of-domain and
    /// wrong-dimensionality points — anything the model cannot answer).
    fn predict_one(&self, point: &[f64]) -> Option<usize>;

    /// Label a batch of points. Returns the canonical [`Clustering`]
    /// (ids compacted by first appearance, like `fit`); predicting on the
    /// training batch reproduces the fit labels exactly. Empty,
    /// zero-dimensional or wrong-dimensionality batches are
    /// [`ClusterError::InvalidInput`].
    fn predict(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        validate_predict_input(self.dims(), points)?;
        Ok(Clustering::new(
            points.rows().map(|p| self.predict_one(p)).collect(),
        ))
    }

    /// One-paragraph human-readable diagnostics: what was trained, how many
    /// clusters, and how out-of-sample points are handled.
    fn summary(&self) -> String;

    /// Serialize the model into the versioned text payload used by model
    /// persistence, or `None` when the algorithm does not support saving.
    /// The payload excludes the header (magic, version, algorithm name),
    /// which the persistence layer writes.
    fn serialize(&self) -> Option<String> {
        None
    }
}

/// The uniform input validation every [`Model::predict`] applies: the batch
/// must be non-empty, have at least one dimension, and match the model's
/// training dimensionality.
pub fn validate_predict_input(
    model_dims: usize,
    points: PointsView<'_>,
) -> Result<(), ClusterError> {
    validate_fit_input(points)?;
    if points.dims() != model_dims {
        return Err(ClusterError::InvalidInput {
            context: format!(
                "predict input has {} dimensions but the model was trained on {model_dims}",
                points.dims()
            ),
        });
    }
    Ok(())
}

/// What one training run produced: the clustering of the training batch
/// plus the reusable trained model.
///
/// ```
/// use adawave_api::{Clusterer, FitOutcome, PointMatrix};
/// # use adawave_api::{ClusterError, Clustering, Model, PointsView};
/// # struct Demo;
/// # struct DemoModel;
/// # impl Model for DemoModel {
/// #     fn algorithm(&self) -> &str { "demo" }
/// #     fn dims(&self) -> usize { 1 }
/// #     fn predict_one(&self, _point: &[f64]) -> Option<usize> { Some(0) }
/// #     fn summary(&self) -> String { "demo".into() }
/// # }
/// # impl Clusterer for Demo {
/// #     fn name(&self) -> &str { "demo" }
/// #     fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
/// #         Ok(FitOutcome {
/// #             clustering: Clustering::from_labels(vec![0; points.len()]),
/// #             model: Box::new(DemoModel),
/// #         })
/// #     }
/// # }
/// let train = PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
/// let outcome = Demo.fit_model(train.view()).unwrap();
/// // The training labels and the serving model come from one run:
/// assert_eq!(outcome.clustering.len(), 2);
/// let fresh = PointMatrix::from_rows(vec![vec![0.5]]).unwrap();
/// assert_eq!(outcome.model.predict(fresh.view()).unwrap().len(), 1);
/// ```
pub struct FitOutcome {
    /// Labels of the training batch (identical to what `fit` returns).
    pub clustering: Clustering,
    /// The trained model, ready to label out-of-sample points.
    pub model: Box<dyn Model>,
}

impl std::fmt::Debug for FitOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitOutcome")
            .field("clustering", &self.clustering)
            .field("model", &self.model.summary())
            .finish()
    }
}

/// How an algorithm's trained model predicts, declared per registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictSupport {
    /// The model applies the algorithm's own decision rule out of sample
    /// (grid-cell lookup, nearest centroid, mixture posterior, mode
    /// seeking, modal intervals).
    Native,
    /// The algorithm has no natural out-of-sample rule; the model predicts
    /// the label of the nearest training point (an honest, documented
    /// fallback that memorizes the training batch).
    Fallback,
}

impl PredictSupport {
    /// The word used in listings and docs: `"native"` or `"fallback"`.
    pub fn label(&self) -> &'static str {
        match self {
            PredictSupport::Native => "native",
            PredictSupport::Fallback => "fallback",
        }
    }
}

/// Map raw per-point cluster ids to the compacted ids the canonical
/// [`Clustering`] of the same sequence uses: ids are numbered in order of
/// first appearance, and ids never seen in the sequence (e.g. empty
/// clusters) are appended after the seen ones in ascending raw order.
///
/// Model builders use this to align their internal cluster ids (centroid
/// rows, grid components, mixture components) with the training
/// clustering, so [`Model::predict_one`] agrees with the training labels.
pub fn compact_remap(raw: impl Iterator<Item = usize>, id_count: usize) -> Vec<usize> {
    let mut remap = vec![usize::MAX; id_count];
    let mut next = 0usize;
    for id in raw {
        if remap[id] == usize::MAX {
            remap[id] = next;
            next += 1;
        }
        if next == id_count {
            break;
        }
    }
    for slot in remap.iter_mut() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    remap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointMatrix;

    struct Half {
        dims: usize,
    }

    impl Model for Half {
        fn algorithm(&self) -> &str {
            "half"
        }
        fn dims(&self) -> usize {
            self.dims
        }
        fn predict_one(&self, point: &[f64]) -> Option<usize> {
            if !point.iter().all(|v| v.is_finite()) {
                return None;
            }
            Some((point[0] >= 0.5) as usize)
        }
        fn summary(&self) -> String {
            "half model".to_string()
        }
    }

    #[test]
    fn default_predict_maps_predict_one_and_compacts() {
        let model = Half { dims: 1 };
        let batch =
            PointMatrix::from_rows(vec![vec![0.9], vec![0.1], vec![f64::NAN], vec![0.8]]).unwrap();
        let clustering = model.predict(batch.view()).unwrap();
        // First appearance wins id 0 even though predict_one said 1.
        assert_eq!(clustering.assignment(), &[Some(0), Some(1), None, Some(0)]);
        assert_eq!(clustering.cluster_count(), 2);
    }

    #[test]
    fn predict_rejects_empty_zero_dim_and_wrong_dims() {
        let model = Half { dims: 2 };
        let empty = PointMatrix::new(2);
        assert!(matches!(
            model.predict(empty.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let zero_dim = PointMatrix::from_rows(vec![vec![], vec![]]).unwrap();
        assert!(matches!(
            model.predict(zero_dim.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        let wrong = PointMatrix::from_rows(vec![vec![0.5]]).unwrap();
        let err = model.predict(wrong.view()).unwrap_err();
        assert!(err.to_string().contains("trained on 2"), "{err}");
    }

    #[test]
    fn compact_remap_orders_by_first_appearance_then_unseen() {
        // Sequence 2, 0, 2, 3 over 5 ids: 2->0, 0->1, 3->2, unseen 1->3, 4->4.
        let remap = compact_remap([2usize, 0, 2, 3].into_iter(), 5);
        assert_eq!(remap, vec![1, 3, 0, 2, 4]);
        // Degenerate cases.
        assert_eq!(compact_remap(std::iter::empty(), 2), vec![0, 1]);
        assert_eq!(compact_remap([0usize].into_iter(), 1), vec![0]);
    }

    #[test]
    fn predict_support_labels() {
        assert_eq!(PredictSupport::Native.label(), "native");
        assert_eq!(PredictSupport::Fallback.label(), "fallback");
    }

    /// The serve-layer audit: `dyn Model` objects must be shareable across
    /// worker threads (`Arc<dyn Model>` swap on hot reload). This is a
    /// compile-time guarantee; the test pins it so the bound cannot be
    /// dropped from the trait without breaking the build here.
    #[test]
    fn boxed_models_are_send_and_sync() {
        fn assert_send_sync<T: ?Sized + Send + Sync>() {}
        assert_send_sync::<dyn Model>();
        assert_send_sync::<Box<dyn Model>>();
        assert_send_sync::<std::sync::Arc<dyn Model>>();
    }
}
