//! The algorithm registry: names → parameter-validated clusterer builders.

use std::collections::BTreeMap;

use crate::{AlgorithmSpec, ClusterError, Clusterer, FitOutcome, Params, PredictSupport};

/// Description of one parameter an algorithm accepts, used for validation
/// and for `list-algorithms`-style output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter key as given in `key=value`.
    pub key: &'static str,
    /// Human-readable value type (e.g. `"usize"`, `"f64"`, `"name"`).
    pub kind: &'static str,
    /// Default shown in listings (the builder owns the real default).
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

impl ParamSpec {
    /// The uniform `threads` parameter every algorithm with parallel
    /// kernels declares — one shared definition so the CLI help stays
    /// consistent across crates.
    pub const THREADS: ParamSpec = ParamSpec::new(
        "threads",
        "usize",
        "0",
        "worker threads (0 = auto: ADAWAVE_THREADS or all cores); labels are identical for every value",
    );

    /// Construct a parameter description.
    pub const fn new(
        key: &'static str,
        kind: &'static str,
        default: &'static str,
        help: &'static str,
    ) -> Self {
        Self {
            key,
            kind,
            default,
            help,
        }
    }
}

type Builder = Box<dyn Fn(&Params) -> Result<Box<dyn Clusterer>, ClusterError> + Send + Sync>;

/// One registered algorithm: metadata plus a builder closure that parses
/// [`Params`] into the algorithm's typed config and returns a boxed
/// [`Clusterer`].
pub struct AlgorithmEntry {
    name: &'static str,
    summary: &'static str,
    params: Vec<ParamSpec>,
    predict: PredictSupport,
    build: Builder,
}

impl AlgorithmEntry {
    /// The registry key.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the algorithm.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// How this algorithm's trained model predicts out of sample:
    /// [`PredictSupport::Native`] (the algorithm's own decision rule) or
    /// [`PredictSupport::Fallback`] (nearest labeled training point).
    pub fn predict_support(&self) -> PredictSupport {
        self.predict
    }

    /// The parameters the algorithm accepts.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The keys this algorithm accepts.
    pub fn accepted_keys(&self) -> Vec<&'static str> {
        self.params.iter().map(|p| p.key).collect()
    }

    /// Reject any parameter key this algorithm does not declare. This is
    /// the strict validation [`AlgorithmRegistry::resolve`] applies;
    /// callers that mix validated and leniently-trimmed parameter sets
    /// (e.g. the CLI's `--param` pairs vs its shorthand flags) can invoke
    /// it on just the strict subset.
    pub fn validate_keys(&self, params: &Params) -> Result<(), ClusterError> {
        let accepted = self.accepted_keys();
        for key in params.keys() {
            if !accepted.contains(&key) {
                return Err(ClusterError::UnknownParam {
                    algorithm: self.name.to_string(),
                    param: key.to_string(),
                    known: accepted.iter().map(|k| k.to_string()).collect(),
                });
            }
        }
        Ok(())
    }

    /// Build a clusterer from parameters (assumed already validated).
    pub fn build(&self, params: &Params) -> Result<Box<dyn Clusterer>, ClusterError> {
        (self.build)(params)
    }
}

impl std::fmt::Debug for AlgorithmEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmEntry")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .field("params", &self.params)
            .field("predict", &self.predict)
            .finish_non_exhaustive()
    }
}

/// A name-indexed collection of clustering algorithms.
///
/// `adawave-core` and `adawave-baselines` each expose a `register` function
/// that populates a registry with their algorithms; the umbrella `adawave`
/// crate combines them into the standard registry of the paper's ~15
/// algorithms. Sweeps, benches and the CLI resolve every algorithm through
/// this type instead of hand-written match dispatch.
#[derive(Debug, Default)]
pub struct AlgorithmRegistry {
    entries: BTreeMap<&'static str, AlgorithmEntry>,
}

impl AlgorithmRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an algorithm, declaring how its trained model predicts
    /// ([`PredictSupport::Native`] decision rule vs the nearest-training-
    /// point [`PredictSupport::Fallback`]). Re-registering a name replaces
    /// the previous entry (latest wins), so downstream crates can override
    /// defaults.
    pub fn register<F>(
        &mut self,
        name: &'static str,
        summary: &'static str,
        params: &[ParamSpec],
        predict: PredictSupport,
        build: F,
    ) where
        F: Fn(&Params) -> Result<Box<dyn Clusterer>, ClusterError> + Send + Sync + 'static,
    {
        self.entries.insert(
            name,
            AlgorithmEntry {
                name,
                summary,
                params: params.to_vec(),
                predict,
                build: Box::new(build),
            },
        );
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// Look up one entry.
    pub fn entry(&self, name: &str) -> Result<&AlgorithmEntry, ClusterError> {
        self.entries
            .get(name)
            .ok_or_else(|| ClusterError::UnknownAlgorithm {
                name: name.to_string(),
                known: self.names().iter().map(|n| n.to_string()).collect(),
            })
    }

    /// Resolve a spec into a ready-to-run clusterer, rejecting parameter
    /// keys the algorithm does not declare (catches typos).
    pub fn resolve(&self, spec: &AlgorithmSpec) -> Result<Box<dyn Clusterer>, ClusterError> {
        let entry = self.entry(&spec.name)?;
        entry.validate_keys(&spec.params)?;
        entry.build(&spec.params)
    }

    /// Resolve a spec, silently dropping parameter keys the algorithm does
    /// not declare. Used when a caller forwards one shared flag set (e.g.
    /// the CLI's `--scale/--eps/--k`) to whichever algorithm was selected.
    pub fn resolve_lenient(
        &self,
        spec: &AlgorithmSpec,
    ) -> Result<Box<dyn Clusterer>, ClusterError> {
        let entry = self.entry(&spec.name)?;
        let mut params = spec.params.clone();
        params.retain_keys(&entry.accepted_keys());
        entry.build(&params)
    }

    /// Resolve and fit in one call.
    pub fn fit(
        &self,
        spec: &AlgorithmSpec,
        points: crate::PointsView<'_>,
    ) -> Result<crate::Clustering, ClusterError> {
        self.resolve(spec)?.fit(points)
    }

    /// Resolve and train in one call, returning the training labels plus
    /// the reusable trained model (see [`Clusterer::fit_model`]).
    pub fn fit_model(
        &self,
        spec: &AlgorithmSpec,
        points: crate::PointsView<'_>,
    ) -> Result<FitOutcome, ClusterError> {
        self.resolve(spec)?.fit_model(points)
    }

    /// Iterate over the entries in name order.
    pub fn entries(&self) -> impl Iterator<Item = &AlgorithmEntry> {
        self.entries.values()
    }

    /// A human-readable table of every algorithm and its parameters, for
    /// `list-algorithms`-style commands: one aligned table whose columns
    /// are `algorithm`, `param`, `type`, `default` and `description`. Each
    /// algorithm contributes a summary row (name + description) followed
    /// by one row per parameter, so every parameter's type and default are
    /// visible at a glance. Column widths are computed over the whole
    /// table; the last column is never padded.
    pub fn describe(&self) -> String {
        const HEADER: [&str; 5] = ["algorithm", "param", "type", "default", "description"];
        let mut rows: Vec<[String; 5]> = Vec::new();
        for entry in self.entries.values() {
            rows.push([
                entry.name().to_string(),
                String::new(),
                String::new(),
                String::new(),
                entry.summary().to_string(),
            ]);
            for p in entry.params() {
                rows.push([
                    String::new(),
                    p.key.to_string(),
                    p.kind.to_string(),
                    p.default.to_string(),
                    p.help.to_string(),
                ]);
            }
        }
        let mut widths: Vec<usize> = HEADER.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: [&str; 5], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i + 1 == cells.len() {
                    out.push_str(cell);
                } else {
                    out.push_str(&format!("{cell:<width$}  ", width = widths[i]));
                }
            }
            out.push('\n');
        };
        let mut out = String::new();
        render(HEADER, &mut out);
        for row in &rows {
            render(
                [&row[0], &row[1], &row[2], &row[3], &row[4]].map(String::as_str),
                &mut out,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clustering, Model, PointMatrix, PointsView};

    struct Constant {
        clusters: usize,
    }

    struct ConstantModel {
        clusters: usize,
        dims: usize,
        next: std::sync::atomic::AtomicUsize,
    }

    impl Model for ConstantModel {
        fn algorithm(&self) -> &str {
            "constant"
        }
        fn dims(&self) -> usize {
            self.dims
        }
        fn predict_one(&self, _point: &[f64]) -> Option<usize> {
            let i = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Some(i % self.clusters.max(1))
        }
        fn summary(&self) -> String {
            format!("constant model: {} round-robin clusters", self.clusters)
        }
    }

    impl Clusterer for Constant {
        fn name(&self) -> &str {
            "constant"
        }

        fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
            Ok(FitOutcome {
                clustering: Clustering::new(
                    (0..points.len())
                        .map(|i| Some(i % self.clusters.max(1)))
                        .collect(),
                ),
                model: Box::new(ConstantModel {
                    clusters: self.clusters,
                    dims: points.dims(),
                    next: std::sync::atomic::AtomicUsize::new(0),
                }),
            })
        }
    }

    fn test_registry() -> AlgorithmRegistry {
        let mut registry = AlgorithmRegistry::new();
        registry.register(
            "constant",
            "assigns points round-robin to k clusters",
            &[ParamSpec::new("k", "usize", "2", "number of clusters")],
            PredictSupport::Native,
            |params| {
                let clusters = params.get_or("k", 2usize)?;
                Ok(Box::new(Constant { clusters }))
            },
        );
        registry
    }

    #[test]
    fn resolve_builds_and_fits() {
        let registry = test_registry();
        let spec = AlgorithmSpec::new("constant").with("k", 3);
        let points = PointMatrix::from_rows(vec![vec![0.0]; 9]).unwrap();
        let clustering = registry.fit(&spec, points.view()).unwrap();
        assert_eq!(clustering.cluster_count(), 3);
        assert_eq!(registry.names(), vec!["constant"]);
        assert!(registry.contains("constant"));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn fit_model_resolves_and_trains_in_one_call() {
        let registry = test_registry();
        let spec = AlgorithmSpec::new("constant").with("k", 2);
        let points = PointMatrix::from_rows(vec![vec![0.0]; 4]).unwrap();
        let outcome = registry.fit_model(&spec, points.view()).unwrap();
        assert_eq!(outcome.clustering.cluster_count(), 2);
        // Predict on the training set reproduces the fit labels.
        let again = outcome.model.predict(points.view()).unwrap();
        assert_eq!(again, outcome.clustering);
        assert_eq!(
            registry.entry("constant").unwrap().predict_support(),
            PredictSupport::Native
        );
    }

    #[test]
    fn unknown_algorithm_is_a_typed_error() {
        let registry = test_registry();
        let err = registry
            .resolve(&AlgorithmSpec::new("nope"))
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, ClusterError::UnknownAlgorithm { ref name, ref known }
                if name == "nope" && known == &vec!["constant".to_string()])
        );
    }

    #[test]
    fn unknown_param_is_rejected_strictly_but_dropped_leniently() {
        let registry = test_registry();
        let spec = AlgorithmSpec::new("constant").with("bandwidth", 0.5);
        assert!(matches!(
            registry.resolve(&spec).map(|_| ()),
            Err(ClusterError::UnknownParam { ref param, .. }) if param == "bandwidth"
        ));
        // Lenient resolution drops the foreign key and uses defaults.
        let clusterer = registry.resolve_lenient(&spec).unwrap();
        let points = PointMatrix::from_rows(vec![vec![0.0]; 4]).unwrap();
        assert_eq!(clusterer.fit(points.view()).unwrap().cluster_count(), 2);
    }

    #[test]
    fn bad_param_value_is_a_typed_error() {
        let registry = test_registry();
        let spec = AlgorithmSpec::new("constant").with("k", "many");
        assert!(matches!(
            registry.resolve(&spec).map(|_| ()),
            Err(ClusterError::InvalidParam { ref param, .. }) if param == "k"
        ));
    }

    #[test]
    fn describe_lists_algorithms_and_params() {
        let text = test_registry().describe();
        assert!(text.contains("constant"), "{text}");
        assert!(text.contains("k"), "{text}");
        assert!(text.contains("default"), "{text}");
    }
}
