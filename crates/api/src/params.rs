//! The typed-but-dynamic parameter layer: string keys and values parsed on
//! demand into each algorithm's strongly-typed configuration.

use std::collections::BTreeMap;

use crate::ClusterError;

/// An ordered bag of `key=value` parameters for one algorithm invocation.
///
/// Values are stored as strings (they usually arrive from a command line or
/// an experiment spec) and parsed into concrete types by the algorithm's
/// config builder via [`get_parsed`](Params::get_parsed) /
/// [`get_or`](Params::get_or), which produce a typed
/// [`ClusterError::InvalidParam`] on bad input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    values: BTreeMap<String, String>,
}

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set one parameter, replacing any previous value for the key.
    pub fn set(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.values.insert(key.into(), value.to_string());
        self
    }

    /// Parse a `key=value` pair (as given to `--param`) and set it.
    pub fn set_pair(&mut self, pair: &str) -> Result<&mut Self, ClusterError> {
        match pair.split_once('=') {
            Some((key, value)) if !key.trim().is_empty() => Ok(self.set(key.trim(), value.trim())),
            _ => Err(ClusterError::InvalidParam {
                param: pair.to_string(),
                value: String::new(),
                expected: "a key=value pair".to_string(),
            }),
        }
    }

    /// Raw value of a parameter, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parse a parameter into `T`, `None` when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ClusterError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| ClusterError::InvalidParam {
                    param: key.to_string(),
                    value: raw.to_string(),
                    expected: std::any::type_name::<T>().to_string(),
                }),
        }
    }

    /// Parse a parameter into `T`, with a default when absent.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ClusterError> {
        Ok(self.get_parsed(key)?.unwrap_or(default))
    }

    /// Copy every parameter of `other` into this set, overwriting keys
    /// that collide.
    pub fn merge(&mut self, other: &Params) {
        for (key, value) in &other.values {
            self.values.insert(key.clone(), value.clone());
        }
    }

    /// The keys present in this parameter set.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Remove every key not in `accepted` (used by lenient resolution when
    /// a caller forwards a shared flag set to many algorithms).
    pub fn retain_keys(&mut self, accepted: &[&str]) {
        self.values.retain(|k, _| accepted.contains(&k.as_str()));
    }
}

impl std::fmt::Display for Params {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (k, v) in &self.values {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

/// Numeric lane selection for an algorithm's floating-point kernels.
///
/// The default [`F64`](Precision::F64) lane is the reference: its results
/// are bit-for-bit reproducible across releases and thread counts. The
/// opt-in [`F32`](Precision::F32) lane narrows the hot quantization loops
/// to single precision (roughly doubling the useful SIMD width) at the
/// cost of ~7 decimal digits; it is deterministic — same inputs, same
/// cells, every run and every thread count — but *not* comparable bit-wise
/// to the f64 lane. Parsed from the string values `"f64"` / `"f32"`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision: the bit-exact reference lane (default).
    #[default]
    F64,
    /// Single precision: the opt-in throughput lane.
    F32,
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Ok(Self::F64),
            "f32" | "single" => Ok(Self::F32),
            other => Err(format!("unknown precision {other:?} (expected f64 or f32)")),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
        })
    }
}

/// A fully-specified algorithm invocation: a registry key plus parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlgorithmSpec {
    /// The registry key (e.g. `"kmeans"`).
    pub name: String,
    /// The parameters to build the algorithm with.
    pub params: Params,
}

impl AlgorithmSpec {
    /// A spec with no parameters (algorithm defaults).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Params::new(),
        }
    }

    /// Builder-style parameter setter.
    ///
    /// ```
    /// use adawave_api::AlgorithmSpec;
    /// let spec = AlgorithmSpec::new("kmeans").with("k", 3).with("seed", 7);
    /// assert_eq!(spec.params.get("k"), Some("3"));
    /// ```
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.set(key, value);
        self
    }

    /// Parse a compact spec string: a name optionally followed by
    /// `:key=value,key=value` (e.g. `"dbscan:eps=0.05,min-points=8"`).
    pub fn parse(text: &str) -> Result<Self, ClusterError> {
        let (name, rest) = match text.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (text, None),
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(ClusterError::InvalidParam {
                param: text.to_string(),
                value: String::new(),
                expected: "an algorithm name, optionally followed by :key=value,...".to_string(),
            });
        }
        let mut spec = AlgorithmSpec::new(name);
        if let Some(rest) = rest {
            for pair in rest.split(',').filter(|p| !p.trim().is_empty()) {
                spec.params.set_pair(pair.trim())?;
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.params.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{} ({})", self.name, self.params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_getters_parse_and_default() {
        let mut p = Params::new();
        p.set("k", 5).set("eps", 0.25).set("name", "spiral");
        assert_eq!(p.get_or("k", 2usize).unwrap(), 5);
        assert_eq!(p.get_or("eps", 0.0f64).unwrap(), 0.25);
        assert_eq!(p.get_or("missing", 42u32).unwrap(), 42);
        assert_eq!(p.get_parsed::<u64>("missing").unwrap(), None);
        assert_eq!(p.get("name"), Some("spiral"));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn bad_values_produce_typed_errors() {
        let mut p = Params::new();
        p.set("k", "banana");
        let err = p.get_or("k", 2usize).unwrap_err();
        assert!(matches!(err, ClusterError::InvalidParam { ref param, .. } if param == "k"));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn set_pair_parses_and_rejects() {
        let mut p = Params::new();
        p.set_pair("k=3").unwrap();
        p.set_pair(" eps = 0.1 ").unwrap();
        assert_eq!(p.get("k"), Some("3"));
        assert_eq!(p.get("eps"), Some("0.1"));
        assert!(p.set_pair("no-equals").is_err());
        assert!(p.set_pair("=3").is_err());
    }

    #[test]
    fn spec_parse_round_trip() {
        let spec = AlgorithmSpec::parse("dbscan:eps=0.05,min-points=8").unwrap();
        assert_eq!(spec.name, "dbscan");
        assert_eq!(spec.params.get("eps"), Some("0.05"));
        assert_eq!(spec.params.get("min-points"), Some("8"));

        let bare = AlgorithmSpec::parse("adawave").unwrap();
        assert_eq!(bare.name, "adawave");
        assert!(bare.params.is_empty());

        assert!(AlgorithmSpec::parse(":k=3").is_err());
        assert!(AlgorithmSpec::parse("kmeans:k").is_err());
    }

    #[test]
    fn retain_keys_drops_foreign_params() {
        let mut p = Params::new();
        p.set("k", 3).set("scale", 64).set("eps", 0.1);
        p.retain_keys(&["k", "seed"]);
        assert_eq!(p.get("k"), Some("3"));
        assert_eq!(p.get("scale"), None);
        assert_eq!(p.get("eps"), None);
    }

    #[test]
    fn precision_parses_and_round_trips() {
        assert_eq!("f64".parse::<Precision>().unwrap(), Precision::F64);
        assert_eq!("F32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!(" double ".parse::<Precision>().unwrap(), Precision::F64);
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::default(), Precision::F64);
        for p in [Precision::F64, Precision::F32] {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
        }
        let mut params = Params::new();
        params.set("precision", Precision::F32);
        assert_eq!(
            params.get_or("precision", Precision::F64).unwrap(),
            Precision::F32
        );
    }

    #[test]
    fn display_is_compact() {
        let spec = AlgorithmSpec::new("kmeans").with("k", 3);
        assert_eq!(spec.to_string(), "kmeans (k=3)");
        assert_eq!(AlgorithmSpec::new("adawave").to_string(), "adawave");
    }
}
