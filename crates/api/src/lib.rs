//! # adawave-api
//!
//! The unified clustering API of the workspace: one trait, one result type,
//! one registry, so that AdaWave and every baseline can be swept, scripted
//! and extended through a single interface — the way the paper's evaluation
//! (§V) compares ~15 algorithms over a uniform protocol.
//!
//! * [`PointMatrix`] / [`PointsView`] — the flat row-major data layer: an
//!   `n x d` point set in one contiguous buffer (`row(i)` is a subslice,
//!   no per-point allocation), with [`PointMatrix::from_rows`] as the one
//!   ingestion path for nested `Vec<Vec<f64>>` data.
//! * [`Clusterer`] — the polymorphic algorithm interface, following a
//!   two-stage fit/predict contract: `fit_model(PointsView<'_>) ->
//!   Result<FitOutcome, ClusterError>` trains and returns the labels plus
//!   a reusable trained [`Model`], while `fit` is a label-only shim over
//!   it; `name()`/`describe()` round out the surface.
//! * [`Model`] / [`FitOutcome`] — the trained-artifact layer: a model
//!   labels arbitrary out-of-sample points (`predict` for batches,
//!   `predict_one` for single points) without refitting, and unanswerable
//!   points (non-finite, out-of-domain, wrong dimensionality) are noise.
//! * [`Clustering`] — the canonical result type shared by `adawave-core`
//!   and `adawave-baselines`: per-point `Option<usize>` labels with
//!   compacted cluster ids (`None` = noise).
//! * [`Params`] / [`AlgorithmSpec`] — a typed-but-dynamic parameter layer:
//!   string keys and values (`k=3`, `eps=0.05`) parsed on demand into each
//!   algorithm's strongly-typed config builder.
//! * [`artifact`] — the versioned artifact layer shared by every on-disk
//!   format: typed kinds ([`ArtifactKind::Model`] for trained models,
//!   [`ArtifactKind::Accumulator`] for streaming accumulators), one header
//!   writer/parser, the [`PayloadReader`] line parser and the bit-exact
//!   [`f64_to_hex`] float encoding.
//! * [`AlgorithmRegistry`] — maps algorithm names to parameter-validated
//!   constructors of boxed [`Clusterer`]s; `adawave-core` and
//!   `adawave-baselines` register themselves into it, and the umbrella
//!   `adawave` crate assembles the standard registry of all 15 algorithms.
//!
//! ```
//! use adawave_api::{
//!     AlgorithmRegistry, AlgorithmSpec, Clusterer, Clustering, ClusterError, FitOutcome,
//!     Model, PointMatrix, PointsView, PredictSupport,
//! };
//!
//! /// A toy algorithm: one cluster per distinct x-sign.
//! struct SignClusterer;
//!
//! /// Its trained model — here the "training" is the rule itself.
//! struct SignModel {
//!     dims: usize,
//! }
//!
//! impl Model for SignModel {
//!     fn algorithm(&self) -> &str {
//!         "sign"
//!     }
//!     fn dims(&self) -> usize {
//!         self.dims
//!     }
//!     fn predict_one(&self, point: &[f64]) -> Option<usize> {
//!         point[0].is_finite().then_some((point[0] < 0.0) as usize)
//!     }
//!     fn summary(&self) -> String {
//!         "sign model: clusters by the sign of x".to_string()
//!     }
//! }
//!
//! impl Clusterer for SignClusterer {
//!     fn name(&self) -> &str {
//!         "sign"
//!     }
//!
//!     fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
//!         let model = SignModel { dims: points.dims() };
//!         Ok(FitOutcome {
//!             clustering: model.predict(points)?,
//!             model: Box::new(model),
//!         })
//!     }
//! }
//!
//! let mut registry = AlgorithmRegistry::new();
//! registry.register(
//!     "sign",
//!     "clusters by the sign of x",
//!     &[],
//!     PredictSupport::Native,
//!     |_params| Ok(Box::new(SignClusterer)),
//! );
//!
//! // Nested data converts once at the ingestion boundary...
//! let points = PointMatrix::from_rows(vec![vec![-1.0], vec![2.0]]).unwrap();
//! let clusterer = registry.resolve(&AlgorithmSpec::new("sign")).unwrap();
//! // ...`fit` yields labels, `fit_model` additionally the serving model.
//! let result = clusterer.fit(points.view()).unwrap();
//! assert_eq!(result.cluster_count(), 2);
//! let outcome = clusterer.fit_model(points.view()).unwrap();
//! assert_eq!(outcome.model.predict(points.view()).unwrap(), result);
//! assert_eq!(outcome.model.predict_one(&[42.0]), Some(0));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod clusterer;
pub mod clustering;
pub mod model;
pub mod params;
pub mod points;
pub mod registry;

pub use artifact::{
    decode_artifact, encode_artifact, f64_from_hex, f64_to_hex, load_artifact, save_artifact,
    save_artifact_atomic, Artifact, ArtifactError, ArtifactKind, PayloadReader, ARTIFACT_VERSION,
};
pub use clusterer::{closest_matches, validate_fit_input, ClusterError, Clusterer};
pub use clustering::Clustering;
pub use model::{compact_remap, validate_predict_input, FitOutcome, Model, PredictSupport};
pub use params::{AlgorithmSpec, Params, Precision};
pub use points::{PointMatrix, PointsView, Rows};
pub use registry::{AlgorithmEntry, AlgorithmRegistry, ParamSpec};

/// Convenience alias for results in this API.
pub type Result<T> = std::result::Result<T, ClusterError>;
