//! # adawave-api
//!
//! The unified clustering API of the workspace: one trait, one result type,
//! one registry, so that AdaWave and every baseline can be swept, scripted
//! and extended through a single interface — the way the paper's evaluation
//! (§V) compares ~15 algorithms over a uniform protocol.
//!
//! * [`PointMatrix`] / [`PointsView`] — the flat row-major data layer: an
//!   `n x d` point set in one contiguous buffer (`row(i)` is a subslice,
//!   no per-point allocation), with [`PointMatrix::from_rows`] as the one
//!   ingestion path for nested `Vec<Vec<f64>>` data.
//! * [`Clusterer`] — the polymorphic algorithm interface:
//!   `fit(PointsView<'_>) -> Result<Clustering, ClusterError>` plus
//!   `name()`/`describe()`.
//! * [`Clustering`] — the canonical result type shared by `adawave-core`
//!   and `adawave-baselines`: per-point `Option<usize>` labels with
//!   compacted cluster ids (`None` = noise).
//! * [`Params`] / [`AlgorithmSpec`] — a typed-but-dynamic parameter layer:
//!   string keys and values (`k=3`, `eps=0.05`) parsed on demand into each
//!   algorithm's strongly-typed config builder.
//! * [`AlgorithmRegistry`] — maps algorithm names to parameter-validated
//!   constructors of boxed [`Clusterer`]s; `adawave-core` and
//!   `adawave-baselines` register themselves into it, and the umbrella
//!   `adawave` crate assembles the standard registry of all 15 algorithms.
//!
//! ```
//! use adawave_api::{
//!     AlgorithmRegistry, AlgorithmSpec, Clusterer, Clustering, ClusterError, PointMatrix,
//!     PointsView,
//! };
//!
//! /// A toy algorithm: one cluster per distinct x-sign.
//! struct SignClusterer;
//!
//! impl Clusterer for SignClusterer {
//!     fn name(&self) -> &str {
//!         "sign"
//!     }
//!
//!     fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
//!         Ok(Clustering::new(
//!             points.rows().map(|p| Some((p[0] >= 0.0) as usize)).collect(),
//!         ))
//!     }
//! }
//!
//! let mut registry = AlgorithmRegistry::new();
//! registry.register("sign", "clusters by the sign of x", &[], |_params| {
//!     Ok(Box::new(SignClusterer))
//! });
//!
//! // Nested data converts once at the ingestion boundary...
//! let points = PointMatrix::from_rows(vec![vec![-1.0], vec![2.0]]).unwrap();
//! let clusterer = registry.resolve(&AlgorithmSpec::new("sign")).unwrap();
//! // ...and `fit` takes the zero-copy view.
//! let result = clusterer.fit(points.view()).unwrap();
//! assert_eq!(result.cluster_count(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod clusterer;
pub mod clustering;
pub mod params;
pub mod points;
pub mod registry;

pub use clusterer::{validate_fit_input, ClusterError, Clusterer};
pub use clustering::Clustering;
pub use params::{AlgorithmSpec, Params};
pub use points::{PointMatrix, PointsView, Rows};
pub use registry::{AlgorithmEntry, AlgorithmRegistry, ParamSpec};

/// Convenience alias for results in this API.
pub type Result<T> = std::result::Result<T, ClusterError>;
