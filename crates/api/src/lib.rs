//! # adawave-api
//!
//! The unified clustering API of the workspace: one trait, one result type,
//! one registry, so that AdaWave and every baseline can be swept, scripted
//! and extended through a single interface — the way the paper's evaluation
//! (§V) compares ~15 algorithms over a uniform protocol.
//!
//! * [`Clusterer`] — the polymorphic algorithm interface:
//!   `fit(&[Vec<f64>]) -> Result<Clustering, ClusterError>` plus
//!   `name()`/`describe()`.
//! * [`Clustering`] — the canonical result type shared by `adawave-core`
//!   and `adawave-baselines`: per-point `Option<usize>` labels with
//!   compacted cluster ids (`None` = noise).
//! * [`Params`] / [`AlgorithmSpec`] — a typed-but-dynamic parameter layer:
//!   string keys and values (`k=3`, `eps=0.05`) parsed on demand into each
//!   algorithm's strongly-typed config builder.
//! * [`AlgorithmRegistry`] — maps algorithm names to parameter-validated
//!   constructors of boxed [`Clusterer`]s; `adawave-core` and
//!   `adawave-baselines` register themselves into it, and the umbrella
//!   `adawave` crate assembles the standard registry of all 15 algorithms.
//!
//! ```
//! use adawave_api::{AlgorithmRegistry, AlgorithmSpec, Clusterer, Clustering, ClusterError};
//!
//! /// A toy algorithm: one cluster per distinct x-sign.
//! struct SignClusterer;
//!
//! impl Clusterer for SignClusterer {
//!     fn name(&self) -> &str {
//!         "sign"
//!     }
//!
//!     fn fit(&self, points: &[Vec<f64>]) -> Result<Clustering, ClusterError> {
//!         Ok(Clustering::new(
//!             points.iter().map(|p| Some((p[0] >= 0.0) as usize)).collect(),
//!         ))
//!     }
//! }
//!
//! let mut registry = AlgorithmRegistry::new();
//! registry.register("sign", "clusters by the sign of x", &[], |_params| {
//!     Ok(Box::new(SignClusterer))
//! });
//!
//! let clusterer = registry.resolve(&AlgorithmSpec::new("sign")).unwrap();
//! let result = clusterer.fit(&[vec![-1.0], vec![2.0]]).unwrap();
//! assert_eq!(result.cluster_count(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod clusterer;
pub mod clustering;
pub mod params;
pub mod registry;

pub use clusterer::{ClusterError, Clusterer};
pub use clustering::Clustering;
pub use params::{AlgorithmSpec, Params};
pub use registry::{AlgorithmEntry, AlgorithmRegistry, ParamSpec};

/// Convenience alias for results in this API.
pub type Result<T> = std::result::Result<T, ClusterError>;
