//! The flat, row-major point-matrix data layer shared by every crate.
//!
//! Historically the workspace passed points as `&[Vec<f64>]`, paying one
//! heap allocation plus one pointer indirection per point in every distance
//! and quantization kernel. [`PointMatrix`] stores an `n x d` point set as
//! one contiguous row-major `Vec<f64>`, and [`PointsView`] is the zero-copy
//! borrowed form every `fit` takes: rows are contiguous (`row(i)` is a
//! plain subslice), iteration is a pointer walk over one buffer, and
//! downstream layers can `chunks_exact(dims)` the whole dataset at once.
//!
//! Nested `Vec<Vec<f64>>` survives only at ingestion boundaries — convert
//! it once with [`PointMatrix::from_rows`]:
//!
//! ```
//! use adawave_api::PointMatrix;
//!
//! let matrix = PointMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
//! assert_eq!(matrix.len(), 2);
//! assert_eq!(matrix.dims(), 2);
//! assert_eq!(matrix.row(1), &[2.0, 3.0]);
//! let view = matrix.view(); // what `Clusterer::fit` takes
//! assert_eq!(view.rows().count(), 2);
//! ```

use crate::ClusterError;

/// An owned `n x d` point set in one contiguous row-major buffer.
///
/// Every row has exactly [`dims`](Self::dims) coordinates; the invariant
/// `data.len() == len * dims` holds at all times, so the matrix can never
/// be ragged. Zero-dimensional rows are representable (`dims == 0` with a
/// positive row count) so degenerate inputs stay expressible, but every
/// clustering entry point rejects them as invalid input.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointMatrix {
    data: Vec<f64>,
    dims: usize,
    len: usize,
}

impl PointMatrix {
    /// An empty matrix of `dims`-dimensional points.
    pub fn new(dims: usize) -> Self {
        Self {
            data: Vec::new(),
            dims,
            len: 0,
        }
    }

    /// An empty matrix with room for `rows` points of `dims` coordinates.
    pub fn with_capacity(dims: usize, rows: usize) -> Self {
        Self {
            data: Vec::with_capacity(dims.saturating_mul(rows)),
            dims,
            len: 0,
        }
    }

    /// Convert a nested point list into a flat matrix (the one ingestion
    /// path for `Vec<Vec<f64>>` data). The dimensionality is taken from the
    /// first row; an empty list yields an empty 0-dimensional matrix.
    ///
    /// Returns [`ClusterError::InvalidInput`] if the rows are ragged.
    ///
    /// ```
    /// use adawave_api::PointMatrix;
    ///
    /// let matrix = PointMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
    /// assert_eq!((matrix.len(), matrix.dims()), (2, 2));
    /// assert_eq!(matrix.row(1), &[2.0, 3.0]);
    /// // Ragged input is a typed error, not a panic.
    /// assert!(PointMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0]]).is_err());
    /// ```
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, ClusterError> {
        let dims = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(dims * rows.len());
        let len = rows.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dims {
                return Err(ClusterError::InvalidInput {
                    context: format!(
                        "ragged point set: row {i} has {} coordinates, expected {dims}",
                        row.len()
                    ),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { data, dims, len })
    }

    /// Wrap an already-flat row-major buffer.
    ///
    /// Returns [`ClusterError::InvalidInput`] if `data.len()` is not a
    /// multiple of `dims` (or if `dims == 0` while data is non-empty).
    pub fn from_flat(data: Vec<f64>, dims: usize) -> Result<Self, ClusterError> {
        if dims == 0 {
            if !data.is_empty() {
                return Err(ClusterError::InvalidInput {
                    context: format!(
                        "{} coordinates cannot form 0-dimensional points",
                        data.len()
                    ),
                });
            }
            return Ok(Self { data, dims, len: 0 });
        }
        if !data.len().is_multiple_of(dims) {
            return Err(ClusterError::InvalidInput {
                context: format!(
                    "{} coordinates do not divide into {dims}-dimensional rows",
                    data.len()
                ),
            });
        }
        let len = data.len() / dims;
        Ok(Self { data, dims, len })
    }

    /// Number of points (rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of coordinates per point.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.len,
            "row index {i} out of bounds (len {})",
            self.len
        );
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.len,
            "row index {i} out of bounds (len {})",
            self.len
        );
        &mut self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> Rows<'_> {
        self.view().rows()
    }

    /// Borrow the whole matrix as a zero-copy [`PointsView`].
    pub fn view(&self) -> PointsView<'_> {
        PointsView {
            data: &self.data,
            dims: self.dims,
            len: self.len,
        }
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Append one point.
    ///
    /// # Panics
    /// Panics if `row.len() != dims()` (programming error).
    #[inline]
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dims,
            "push_row: {}-dimensional row into a {}-dimensional matrix",
            row.len(),
            self.dims
        );
        self.data.extend_from_slice(row);
        self.len += 1;
    }

    /// Append every row of `other`. An empty *dimensionless* matrix
    /// (`dims == 0`, no rows — e.g. `from_rows(vec![])`) adopts the
    /// other's dimensionality; an empty matrix with a declared width keeps
    /// it, so appending the wrong width is caught here rather than at a
    /// later `push_row`.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ (after adoption).
    pub fn append(&mut self, other: &PointMatrix) {
        if self.len == 0 && self.dims == 0 {
            self.dims = other.dims;
        }
        assert_eq!(self.dims, other.dims, "append: dimension mismatch");
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        assert!(i < self.len && j < self.len, "swap_rows out of bounds");
        if i == j {
            return;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let (head, tail) = self.data.split_at_mut(hi * self.dims);
        head[lo * self.dims..(lo + 1) * self.dims].swap_with_slice(&mut tail[..self.dims]);
    }

    /// Reverse the row order in place.
    pub fn reverse_rows(&mut self) {
        let n = self.len;
        for i in 0..n / 2 {
            self.swap_rows(i, n - 1 - i);
        }
    }

    /// Gather the given rows into a new matrix (used by subsampling).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointMatrix {
        let mut out = PointMatrix::with_capacity(self.dims, indices.len());
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// Convert back to a nested point list (test-fixture boundary only).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }
}

impl std::ops::Index<usize> for PointMatrix {
    type Output = [f64];

    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl FromIterator<Vec<f64>> for PointMatrix {
    /// Collect rows into a matrix.
    ///
    /// # Panics
    /// Panics if the rows are ragged; use [`PointMatrix::from_rows`] for a
    /// fallible conversion.
    fn from_iter<I: IntoIterator<Item = Vec<f64>>>(iter: I) -> Self {
        let mut out: Option<PointMatrix> = None;
        for row in iter {
            out.get_or_insert_with(|| PointMatrix::new(row.len()))
                .push_row(&row);
        }
        out.unwrap_or_default()
    }
}

/// A zero-copy borrowed view of an `n x d` row-major point set — the input
/// type of every [`Clusterer::fit`](crate::Clusterer::fit) in the
/// workspace. `Copy`, so it can be passed around freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointsView<'a> {
    data: &'a [f64],
    dims: usize,
    len: usize,
}

impl<'a> PointsView<'a> {
    /// View a flat row-major buffer as `dims`-dimensional points.
    ///
    /// Returns [`ClusterError::InvalidInput`] under the same conditions as
    /// [`PointMatrix::from_flat`].
    pub fn from_flat(data: &'a [f64], dims: usize) -> Result<Self, ClusterError> {
        if dims == 0 {
            if !data.is_empty() {
                return Err(ClusterError::InvalidInput {
                    context: format!(
                        "{} coordinates cannot form 0-dimensional points",
                        data.len()
                    ),
                });
            }
            return Ok(Self { data, dims, len: 0 });
        }
        if !data.len().is_multiple_of(dims) {
            return Err(ClusterError::InvalidInput {
                context: format!(
                    "{} coordinates do not divide into {dims}-dimensional rows",
                    data.len()
                ),
            });
        }
        Ok(Self {
            data,
            dims,
            len: data.len() / dims,
        })
    }

    /// Number of points (rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of coordinates per point.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        assert!(
            i < self.len,
            "row index {i} out of bounds (len {})",
            self.len
        );
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> Rows<'a> {
        if self.dims == 0 {
            Rows {
                chunks: [].chunks_exact(1),
                empty_rows: self.len,
            }
        } else {
            Rows {
                chunks: self.data.chunks_exact(self.dims),
                empty_rows: 0,
            }
        }
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Copy the viewed rows into an owned [`PointMatrix`].
    pub fn to_matrix(&self) -> PointMatrix {
        PointMatrix {
            data: self.data.to_vec(),
            dims: self.dims,
            len: self.len,
        }
    }

    /// Gather the given rows into a new owned matrix.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointMatrix {
        let mut out = PointMatrix::with_capacity(self.dims, indices.len());
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }
}

impl<'a> From<&'a PointMatrix> for PointsView<'a> {
    fn from(matrix: &'a PointMatrix) -> Self {
        matrix.view()
    }
}

impl std::ops::Index<usize> for PointsView<'_> {
    type Output = [f64];

    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

/// Iterator over the rows of a [`PointMatrix`] / [`PointsView`].
///
/// Backed by [`std::slice::ChunksExact`] (the optimizer-friendly way to
/// walk a flat row-major buffer); `empty_rows` carries the degenerate
/// `dims == 0` case, where every row is the empty slice.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    chunks: std::slice::ChunksExact<'a, f64>,
    empty_rows: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [f64];

    #[inline]
    fn next(&mut self) -> Option<&'a [f64]> {
        if self.empty_rows > 0 {
            self.empty_rows -= 1;
            return Some(&[]);
        }
        self.chunks.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.chunks.len() + self.empty_rows;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> DoubleEndedIterator for Rows<'a> {
    fn next_back(&mut self) -> Option<&'a [f64]> {
        if self.empty_rows > 0 {
            self.empty_rows -= 1;
            return Some(&[]);
        }
        self.chunks.next_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = PointMatrix::from_rows(rows.clone()).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dims(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, ClusterError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn from_rows_empty_and_zero_dimensional() {
        let m = PointMatrix::from_rows(vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.dims(), 0);
        // Zero-dimensional rows are representable (and later rejected by fit).
        let m = PointMatrix::from_rows(vec![vec![], vec![], vec![]]).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dims(), 0);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.rows().count(), 3);
    }

    #[test]
    fn from_flat_checks_divisibility() {
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.len(), 2);
        assert!(PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(PointMatrix::from_flat(vec![1.0], 0).is_err());
        assert!(PointsView::from_flat(&[1.0, 2.0, 3.0], 2).is_err());
        let v = PointsView::from_flat(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_append_swap_reverse_select() {
        let mut m = PointMatrix::new(2);
        m.push_row(&[0.0, 0.0]);
        m.push_row(&[1.0, 1.0]);
        m.push_row(&[2.0, 2.0]);
        assert_eq!(m.len(), 3);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[2.0, 2.0]);
        m.reverse_rows();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[2.0, 2.0]);
        let sel = m.select(&[2, 0]);
        assert_eq!(sel.to_rows(), vec![vec![2.0, 2.0], vec![0.0, 0.0]]);
        let mut other = PointMatrix::new(0);
        other.append(&m);
        assert_eq!(other.dims(), 2);
        assert_eq!(other.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn append_rejects_width_mismatch_even_when_empty() {
        // An empty matrix with a *declared* width keeps it: appending 1-D
        // rows into an empty 2-D matrix is a mistake caught here, not at a
        // later push_row.
        let mut m = PointMatrix::new(2);
        let other = PointMatrix::from_rows(vec![vec![1.0]]).unwrap();
        m.append(&other);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn push_row_rejects_wrong_dims() {
        PointMatrix::new(2).push_row(&[1.0]);
    }

    #[test]
    fn view_and_iteration_match_rows() {
        let m = PointMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let v = m.view();
        assert_eq!(v.len(), 3);
        assert_eq!(v.dims(), 1);
        let collected: Vec<&[f64]> = v.rows().collect();
        assert_eq!(collected, vec![&[1.0][..], &[2.0][..], &[3.0][..]]);
        // Reverse iteration and indexing agree.
        let back: Vec<f64> = v.rows().rev().map(|r| r[0]).collect();
        assert_eq!(back, vec![3.0, 2.0, 1.0]);
        assert_eq!(&m[1], &[2.0][..]);
        assert_eq!(&v[1], &[2.0][..]);
        assert_eq!(v.to_matrix(), m);
        assert_eq!(PointsView::from(&m), v);
        assert_eq!(v.rows().len(), 3);
    }

    #[test]
    fn collects_from_row_iterator() {
        let m: PointMatrix = (0..4).map(|i| vec![i as f64, 0.0]).collect();
        assert_eq!(m.len(), 4);
        assert_eq!(m.dims(), 2);
        let empty: PointMatrix = std::iter::empty::<Vec<f64>>().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn mutation_through_row_mut() {
        let mut m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.row(1), &[9.0, 4.0]);
        m.as_mut_slice()[0] = -1.0;
        assert_eq!(m.row(0), &[-1.0, 2.0]);
    }
}
