//! The canonical clustering result type shared by every algorithm.
//!
//! Historically `adawave-core` and `adawave-baselines` each had their own
//! result struct; this is the single shared type both now produce, so
//! callers can score, post-process and compare algorithms uniformly.

use crate::PointsView;

/// A clustering of `n` points: each point is either assigned to a cluster
/// (`Some(id)` with contiguous 0-based ids) or marked as noise (`None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<Option<usize>>,
    cluster_count: usize,
}

impl Clustering {
    /// Build a clustering from an assignment vector. Cluster ids are
    /// compacted to `0..k` in order of first appearance, preserving the
    /// partition; ids may be arbitrary (non-contiguous, interleaved with
    /// noise) on input.
    pub fn new(assignment: Vec<Option<usize>>) -> Self {
        let mut mapping = std::collections::HashMap::new();
        let mut compact = Vec::with_capacity(assignment.len());
        for a in &assignment {
            compact.push(a.map(|id| match mapping.get(&id) {
                Some(&compacted) => compacted,
                None => {
                    let next = mapping.len();
                    mapping.insert(id, next);
                    next
                }
            }));
        }
        Self {
            assignment: compact,
            cluster_count: mapping.len(),
        }
    }

    /// A clustering where every point is assigned (no noise).
    pub fn from_labels(labels: Vec<usize>) -> Self {
        Self::new(labels.into_iter().map(Some).collect())
    }

    /// A clustering where every point is noise.
    pub fn all_noise(n: usize) -> Self {
        Self {
            assignment: vec![None; n],
            cluster_count: 0,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of clusters (noise excluded).
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Assignment of a single point.
    pub fn label(&self, point: usize) -> Option<usize> {
        self.assignment[point]
    }

    /// Borrow the raw assignment.
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.assignment
    }

    /// Number of points labeled as noise.
    pub fn noise_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_none()).count()
    }

    /// Fraction of points labeled as noise.
    pub fn noise_fraction(&self) -> f64 {
        if self.assignment.is_empty() {
            0.0
        } else {
            self.noise_count() as f64 / self.assignment.len() as f64
        }
    }

    /// Size of each cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cluster_count];
        for a in self.assignment.iter().flatten() {
            sizes[*a] += 1;
        }
        sizes
    }

    /// Convert to a dense label vector for metric computation, mapping noise
    /// to the given label (commonly `usize::MAX` or `k`).
    pub fn to_labels(&self, noise_label: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .map(|a| a.unwrap_or(noise_label))
            .collect()
    }

    /// Members of each cluster as index lists.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cluster_count];
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some(c) = a {
                out[*c].push(i);
            }
        }
        out
    }

    /// Reassign every noise point to the cluster of its nearest non-noise
    /// centroid (the paper's Table I protocol: "we run the k-means iteration
    /// on the final AdaWave result to assign every detected noise object to
    /// a 'true' cluster"). No-op if there are no clusters.
    pub fn assign_noise_to_nearest_centroid(&self, points: PointsView<'_>) -> Clustering {
        if self.cluster_count == 0 || points.is_empty() {
            return self.clone();
        }
        let dims = points.dims();
        // Compute centroids of existing clusters, flat row-major like the
        // points themselves.
        let mut centroids = vec![0.0; dims * self.cluster_count];
        let mut counts = vec![0usize; self.cluster_count];
        for (p, a) in points.rows().zip(self.assignment.iter()) {
            if let Some(c) = a {
                for (acc, v) in centroids[c * dims..(c + 1) * dims].iter_mut().zip(p.iter()) {
                    *acc += v;
                }
                counts[*c] += 1;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                for v in &mut centroids[c * dims..(c + 1) * dims] {
                    *v /= *count as f64;
                }
            }
        }
        let assignment = points
            .rows()
            .zip(self.assignment.iter())
            .map(|(p, a)| {
                if a.is_some() {
                    *a
                } else {
                    let mut best = 0;
                    let mut best_d = f64::MAX;
                    for (c, centroid) in centroids.chunks_exact(dims.max(1)).enumerate() {
                        if counts[c] == 0 {
                            continue;
                        }
                        let d = adawave_linalg::squared_distance(p, centroid);
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    Some(best)
                }
            })
            .collect();
        Clustering::new(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_compacts_ids_and_counts_clusters() {
        let c = Clustering::new(vec![Some(7), None, Some(3), Some(7)]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.label(0), c.label(3));
        assert_ne!(c.label(0), c.label(2));
        assert_eq!(c.label(1), None);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.noise_fraction(), 0.25);
    }

    #[test]
    fn id_compaction_handles_duplicate_non_contiguous_ids_interleaved_with_noise() {
        // Regression test for the compaction in `new`: duplicate ids that
        // are far apart, non-contiguous and interleaved with noise must map
        // to dense ids in order of first appearance, and re-encountering a
        // known id must not mint a fresh one.
        let c = Clustering::new(vec![
            Some(900),
            None,
            Some(17),
            Some(900),
            None,
            Some(usize::MAX),
            Some(17),
            Some(900),
        ]);
        assert_eq!(c.cluster_count(), 3);
        assert_eq!(
            c.assignment(),
            &[
                Some(0),
                None,
                Some(1),
                Some(0),
                None,
                Some(2),
                Some(1),
                Some(0)
            ]
        );
        // Every assigned id is below cluster_count (dense ids).
        for a in c.assignment().iter().flatten() {
            assert!(*a < c.cluster_count());
        }
        assert_eq!(c.cluster_sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn from_labels_and_sizes() {
        let c = Clustering::from_labels(vec![0, 0, 1, 1, 1]);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_sizes(), vec![2, 3]);
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.clusters(), vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn all_noise() {
        let c = Clustering::all_noise(3);
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.noise_count(), 3);
        assert_eq!(c.to_labels(99), vec![99, 99, 99]);
    }

    #[test]
    fn to_labels_maps_noise() {
        let c = Clustering::new(vec![Some(0), None, Some(1)]);
        assert_eq!(c.to_labels(5), vec![0, 5, 1]);
    }

    #[test]
    fn noise_reassignment_moves_points_to_nearest_cluster() {
        let points = crate::PointMatrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![0.4, 0.2], // noise, near cluster 0
            vec![4.8, 5.3], // noise, near cluster 1
        ])
        .unwrap();
        let c = Clustering::new(vec![Some(0), Some(0), Some(1), Some(1), None, None]);
        let filled = c.assign_noise_to_nearest_centroid(points.view());
        assert_eq!(filled.noise_count(), 0);
        assert_eq!(filled.label(4), filled.label(0));
        assert_eq!(filled.label(5), filled.label(2));
        // Already-assigned points keep their cluster.
        assert_eq!(filled.label(0), c.label(0));
    }

    #[test]
    fn noise_reassignment_with_no_clusters_is_noop() {
        let points = crate::PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let c = Clustering::all_noise(2);
        let filled = c.assign_noise_to_nearest_centroid(points.view());
        assert_eq!(filled.noise_count(), 2);
    }

    #[test]
    fn noise_reassignment_with_empty_points_never_panics() {
        // Regression: the old `&[Vec<f64>]` implementation read `points[0]`
        // for the dimensionality; the view carries it, so an empty point
        // set is a clean no-op rather than a panic.
        let empty = crate::PointMatrix::new(0);
        let c = Clustering::new(vec![]);
        assert!(c.assign_noise_to_nearest_centroid(empty.view()).is_empty());
        let c = Clustering::new(vec![Some(0), None]);
        let filled = c.assign_noise_to_nearest_centroid(empty.view());
        assert_eq!(filled.noise_count(), 1);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.noise_fraction(), 0.0);
    }
}
