//! Property-based tests for the flat row-major point-matrix data layer:
//! `from_rows` → `row(i)`/iterator → back round-trips, view/owned
//! equivalence, and the structural invariants every downstream kernel
//! relies on (`data.len() == len * dims`, contiguous rows).

use adawave_api::{PointMatrix, PointsView};
use proptest::prelude::*;

/// Rectangular nested fixtures: `n` rows of a shared width `d` (the width
/// is drawn alongside max-width rows and applied by truncation, since the
/// offline proptest shim has no `prop_flat_map`).
fn nested_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        1usize..6,
        prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 5), 0..40),
    )
        .prop_map(|(d, rows)| rows.into_iter().map(|r| r[..d].to_vec()).collect())
}

proptest! {
    #[test]
    fn from_rows_row_accessor_round_trips(rows in nested_rows()) {
        let matrix = PointMatrix::from_rows(rows.clone()).expect("rectangular");
        prop_assert_eq!(matrix.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(matrix.row(i), &row[..]);
            prop_assert_eq!(&matrix[i], &row[..]);
        }
        // Iterator traversal sees the same rows, in order, and back again.
        let via_iter: Vec<Vec<f64>> = matrix.rows().map(<[f64]>::to_vec).collect();
        prop_assert_eq!(&via_iter, &rows);
        prop_assert_eq!(matrix.to_rows(), rows);
    }

    #[test]
    fn view_and_owned_are_equivalent(rows in nested_rows()) {
        let matrix = PointMatrix::from_rows(rows).expect("rectangular");
        let view = matrix.view();
        prop_assert_eq!(view.len(), matrix.len());
        prop_assert_eq!(view.dims(), matrix.dims());
        prop_assert_eq!(view.as_slice(), matrix.as_slice());
        for i in 0..matrix.len() {
            prop_assert_eq!(view.row(i), matrix.row(i));
        }
        // A view materialized back to owned is identical.
        prop_assert_eq!(&view.to_matrix(), &matrix);
        prop_assert_eq!(PointsView::from(&matrix), view);
        // Reverse iteration agrees with forward iteration reversed.
        let forward: Vec<&[f64]> = view.rows().collect();
        let mut backward: Vec<&[f64]> = view.rows().rev().collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn flat_buffer_invariant_holds(rows in nested_rows()) {
        let matrix = PointMatrix::from_rows(rows).expect("rectangular");
        prop_assert_eq!(matrix.as_slice().len(), matrix.len() * matrix.dims());
        // from_flat on the raw buffer reconstructs the same matrix.
        let rebuilt = PointMatrix::from_flat(matrix.as_slice().to_vec(), matrix.dims())
            .expect("len is a multiple of dims by the invariant");
        prop_assert_eq!(rebuilt, matrix);
    }

    #[test]
    fn select_gathers_the_right_rows(rows in nested_rows(), seed in 0usize..1000) {
        let matrix = PointMatrix::from_rows(rows).expect("rectangular");
        if matrix.is_empty() {
            return Ok(());
        }
        let indices: Vec<usize> = (0..matrix.len())
            .map(|i| (i * 7 + seed) % matrix.len())
            .collect();
        let gathered = matrix.select(&indices);
        prop_assert_eq!(gathered.len(), indices.len());
        for (pos, &src) in indices.iter().enumerate() {
            prop_assert_eq!(gathered.row(pos), matrix.row(src));
        }
        // View-based gather is identical.
        prop_assert_eq!(matrix.view().select(&indices), gathered);
    }

    #[test]
    fn ragged_rows_are_rejected(
        mut rows in nested_rows(),
        extra in prop::collection::vec(-1.0f64..1.0, 0..8),
    ) {
        prop_assume!(!rows.is_empty());
        prop_assume!(extra.len() != rows[0].len());
        rows.push(extra);
        prop_assert!(PointMatrix::from_rows(rows).is_err());
    }

    #[test]
    fn swap_and_reverse_preserve_the_row_multiset(rows in nested_rows()) {
        let matrix = PointMatrix::from_rows(rows).expect("rectangular");
        let mut reversed = matrix.clone();
        reversed.reverse_rows();
        prop_assert_eq!(reversed.len(), matrix.len());
        for i in 0..matrix.len() {
            prop_assert_eq!(reversed.row(i), matrix.row(matrix.len() - 1 - i));
        }
        reversed.reverse_rows();
        prop_assert_eq!(reversed, matrix);
    }
}
