//! # adawave-runtime
//!
//! The structured-parallelism layer of the AdaWave workspace: a
//! dependency-free [`Runtime`] built on [`std::thread::scope`] that the hot
//! kernels (grid quantization per Algorithm 2 of the paper, the separable
//! wavelet passes of §III, k-means assignment, pairwise-distance loops)
//! use to fan work out over points and grid lanes.
//!
//! The paper's pipeline is embarrassingly parallel over points and over
//! grid lines, but parallel floating-point reduction is where determinism
//! usually dies: summing partial results in thread-completion order makes
//! the output depend on scheduling. This crate therefore enforces a
//! **fixed-chunk contract**: work is split at chunk boundaries that depend
//! only on the input length and a caller-chosen chunk size — never on the
//! thread count — and per-chunk results are always combined in chunk
//! order. Running with 1, 4 or 64 threads produces bit-identical results;
//! [`Runtime::sequential`] is literally the same code path with one
//! worker.
//!
//! ```
//! use adawave_runtime::Runtime;
//!
//! let data: Vec<f64> = (0..10_000).map(f64::from).collect();
//! let seq = Runtime::sequential();
//! let par = Runtime::with_threads(4);
//!
//! // Per-chunk partial sums arrive in chunk order for both runtimes,
//! // so the final fold is bit-identical regardless of thread count.
//! let sums: Vec<f64> = par.par_chunks(&data, 1024, |_, chunk| chunk.iter().sum());
//! assert_eq!(sums, seq.par_chunks(&data, 1024, |_, chunk| chunk.iter().sum::<f64>()));
//! let total: f64 = sums.iter().sum();
//! assert_eq!(total, (0..10_000).map(f64::from).sum());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Environment variable overriding the auto-detected worker count
/// (`ADAWAVE_THREADS=1` pins every [`Runtime::from_env`] runtime to
/// sequential execution — what CI uses to cross-check thread-count
/// determinism).
pub const THREADS_ENV: &str = "ADAWAVE_THREADS";

/// A worker-pool handle: how many threads the `par_*` primitives may use.
///
/// `Runtime` is a tiny `Copy` value, not a persistent pool — each `par_*`
/// call spawns scoped threads for its own duration, so a `Runtime` can be
/// stored in any config struct and shared freely. One thread means every
/// primitive runs inline with zero spawning overhead.
///
/// # Determinism
///
/// Every primitive splits its input at **fixed chunk boundaries** derived
/// only from the input length and the caller's chunk size, and combines
/// per-chunk results in chunk order. The thread count only decides how
/// many chunks run concurrently, never how the work is split or merged, so
/// results are bit-identical for every thread count — the workspace-wide
/// contract that lets `--threads 8` and `--threads 1` produce
/// label-for-label equal clusterings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Runtime {
    threads: NonZeroUsize,
}

impl Default for Runtime {
    /// The environment-aware default: [`Runtime::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runtime {
    /// A runtime that runs everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A runtime with an explicit worker count.
    pub fn new(threads: NonZeroUsize) -> Self {
        Self { threads }
    }

    /// A runtime with `threads` workers; `0` means "auto": the
    /// [`THREADS_ENV`] override if set, otherwise every available core.
    pub fn with_threads(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(threads) => Self { threads },
            None => Self::from_env(),
        }
    }

    /// A runtime sized by [`std::thread::available_parallelism`] (1 if the
    /// platform cannot report it).
    pub fn auto() -> Self {
        Self {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// A runtime sized by the [`THREADS_ENV`] environment variable when it
    /// holds a positive integer, falling back to [`Runtime::auto`].
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
        {
            Some(threads) => Self { threads },
            None => Self::auto(),
        }
    }

    /// Number of worker threads this runtime may use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether the runtime runs everything inline (one worker).
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }

    /// Run `work(chunk_index)` for every chunk index in `0..chunks` and
    /// return the results in chunk order. Workers claim chunk indices from
    /// a shared counter — so a skewed workload cannot strand all the
    /// expensive chunks on one worker — and each result is placed by its
    /// chunk index, keeping the output order (and every downstream fold)
    /// independent of which worker computed what. With one worker (or one
    /// chunk) everything runs inline.
    fn run_chunks<R, F>(&self, chunks: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.get().min(chunks);
        if workers <= 1 {
            return (0..chunks).map(work).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(chunks);
        slots.resize_with(chunks, || None);
        std::thread::scope(|scope| {
            let work = &work;
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut claimed: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= chunks {
                                break;
                            }
                            claimed.push((i, work(i)));
                        }
                        claimed
                    })
                })
                .collect();
            for handle in handles {
                let claimed = handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                for (i, result) in claimed {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk index is claimed exactly once"))
            .collect()
    }

    /// Apply `f` to consecutive `chunk_len`-sized chunks of `data` (the
    /// last chunk may be shorter) and collect the results **in chunk
    /// order**. `f` receives the chunk index alongside the chunk, so
    /// `chunk_index * chunk_len` recovers the offset of its first element.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    ///
    /// ```
    /// use adawave_runtime::Runtime;
    ///
    /// let data = [1.0f64, 2.0, 3.0, 4.0, 5.0];
    /// let rt = Runtime::with_threads(2);
    /// let sums: Vec<f64> = rt.par_chunks(&data, 2, |_, chunk| chunk.iter().sum());
    /// assert_eq!(sums, vec![3.0, 7.0, 5.0]);
    /// ```
    pub fn par_chunks<T, R, F>(&self, data: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "par_chunks: chunk_len must be positive");
        let chunks = data.len().div_ceil(chunk_len);
        self.run_chunks(chunks, |i| {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(data.len());
            f(i, &data[lo..hi])
        })
    }

    /// Mutable counterpart of [`par_chunks`](Self::par_chunks): apply `f`
    /// to disjoint `chunk_len`-sized mutable chunks of `data` and collect
    /// the per-chunk results in chunk order.
    ///
    /// Unlike the read-only primitives, chunks are assigned to workers as
    /// static contiguous runs (dynamic claiming of `&mut` sub-slices would
    /// need `unsafe`, which this crate forbids), so heavily skewed
    /// workloads balance less well here — results are still identical for
    /// every thread count.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn par_chunks_mut<T, R, F>(&self, data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
        let chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.get().min(chunks);
        if workers <= 1 {
            return data
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(i, chunk)| f(i, chunk))
                .collect();
        }
        // Give every worker a contiguous run of whole chunks by splitting
        // the slice itself at chunk-aligned boundaries.
        let chunks_per_worker = chunks.div_ceil(workers);
        let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(workers);
            let mut rest: &mut [T] = data;
            let mut next_chunk = 0usize;
            while !rest.is_empty() {
                let take = (chunks_per_worker * chunk_len).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = next_chunk;
                next_chunk += head.len().div_ceil(chunk_len);
                handles.push(scope.spawn(move || {
                    head.chunks_mut(chunk_len)
                        .enumerate()
                        .map(|(i, chunk)| f(base + i, chunk))
                        .collect::<Vec<R>>()
                }));
            }
            for handle in handles {
                results.push(
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                );
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Compute `f(i)` for every `i in 0..len`, returning the results in
    /// index order. Every element is independent, so the output never
    /// depends on the thread count. Indices are processed in fixed blocks
    /// of 1024.
    pub fn par_map_indexed<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        const INDEX_CHUNK: usize = 1024;
        let chunks = len.div_ceil(INDEX_CHUNK);
        self.run_chunks(chunks, |c| {
            let lo = c * INDEX_CHUNK;
            let hi = (lo + INDEX_CHUNK).min(len);
            (lo..hi).map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Deterministic chunked reduction: map every fixed `chunk_len`-sized
    /// index range of `0..len` to an accumulator with `map`, then fold the
    /// accumulators **in chunk order** with `fold`. Because the chunk
    /// boundaries depend only on `len` and `chunk_len` and the fold order
    /// is fixed, the result is bit-identical for every thread count — even
    /// for non-associative floating-point accumulation.
    ///
    /// Returns `None` when `len == 0`.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    ///
    /// ```
    /// use adawave_runtime::Runtime;
    ///
    /// let total = Runtime::with_threads(4)
    ///     .par_reduce(10, 3, |range| range.sum::<usize>(), |a, b| a + b);
    /// assert_eq!(total, Some(45));
    /// ```
    pub fn par_reduce<A, M, F>(&self, len: usize, chunk_len: usize, map: M, fold: F) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        F: FnMut(A, A) -> A,
    {
        assert!(chunk_len > 0, "par_reduce: chunk_len must be positive");
        let chunks = len.div_ceil(chunk_len);
        let parts = self.run_chunks(chunks, |i| {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(len);
            map(lo..hi)
        });
        parts.into_iter().reduce(fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        let rt = Runtime::sequential();
        assert_eq!(rt.threads(), 1);
        assert!(rt.is_sequential());
        assert!(!Runtime::with_threads(3).is_sequential());
        assert_eq!(Runtime::with_threads(5).threads(), 5);
        assert_eq!(Runtime::new(NonZeroUsize::new(2).unwrap()).threads(), 2);
        assert!(Runtime::auto().threads() >= 1);
        assert!(Runtime::default().threads() >= 1);
    }

    #[test]
    fn par_chunks_covers_every_element_in_order() {
        let data: Vec<u64> = (0..10_001).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::with_threads(threads);
            let chunks: Vec<Vec<u64>> = rt.par_chunks(&data, 128, |_, c| c.to_vec());
            let flat: Vec<u64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, data, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_passes_the_chunk_index() {
        let data = [0u8; 1000];
        let rt = Runtime::with_threads(4);
        let indices: Vec<usize> = rt.par_chunks(&data, 64, |i, _| i);
        assert_eq!(indices, (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn par_chunks_mut_mutates_disjoint_chunks() {
        let expected: Vec<usize> = (0..5_000).map(|i| i * 2 + i / 512).collect();
        for threads in [1, 2, 4, 7] {
            let mut data: Vec<usize> = (0..5_000).collect();
            let rt = Runtime::with_threads(threads);
            let firsts: Vec<usize> = rt.par_chunks_mut(&mut data, 512, |chunk_idx, chunk| {
                for v in chunk.iter_mut() {
                    *v = *v * 2 + chunk_idx;
                }
                chunk[0]
            });
            assert_eq!(data, expected, "threads = {threads}");
            assert_eq!(firsts.len(), 10);
            assert_eq!(firsts[3], expected[3 * 512]);
        }
    }

    #[test]
    fn par_map_indexed_matches_sequential_map() {
        let expected: Vec<u64> = (0..3_000u64).map(|i| i * i).collect();
        for threads in [1, 2, 5] {
            let rt = Runtime::with_threads(threads);
            assert_eq!(
                rt.par_map_indexed(3_000, |i| (i as u64) * (i as u64)),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_reduce_is_bit_identical_across_thread_counts() {
        // Pathologically mixed magnitudes: any change in summation order
        // changes the rounding, so bitwise equality across thread counts
        // proves the fixed-chunk contract.
        let data: Vec<f64> = (0..40_000)
            .map(|i| {
                let x = i as f64;
                (x * 0.7).sin() * 10f64.powi((i % 13) - 6)
            })
            .collect();
        let sum_of = |rt: Runtime| {
            rt.par_reduce(
                data.len(),
                1024,
                |range| range.map(|i| data[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = sum_of(Runtime::sequential());
        for threads in 2..=8 {
            let parallel = sum_of(Runtime::with_threads(threads));
            assert_eq!(
                reference.to_bits(),
                parallel.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_reduce_empty_input_is_none() {
        let rt = Runtime::with_threads(4);
        assert_eq!(rt.par_reduce(0, 8, |_| 1u32, |a, b| a + b), None);
        assert!(rt.par_chunks(&[] as &[u8], 8, |_, c| c.len()).is_empty());
        assert!(rt.par_map_indexed(0, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        Runtime::sequential().par_chunks(&[1u8], 0, |_, c| c.len());
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let data = [1u32, 2, 3];
        let rt = Runtime::with_threads(64);
        let out: Vec<u32> = rt.par_chunks(&data, 1, |_, c| c[0] * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Runtime::with_threads(4).par_map_indexed(5_000, |i| {
                assert!(i != 4_999, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
