//! Property tests for the fixed-chunk determinism contract: every `par_*`
//! primitive must produce results independent of the thread count, bit for
//! bit, on arbitrary inputs and chunk sizes.

use adawave_runtime::Runtime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn par_chunks_is_thread_count_invariant(
        data in prop::collection::vec(-1e9f64..1e9, 0..400),
        chunk_len in 1usize..64,
        threads in 1usize..9,
    ) {
        let seq: Vec<f64> = Runtime::sequential()
            .par_chunks(&data, chunk_len, |_, c| c.iter().sum());
        let par: Vec<f64> = Runtime::with_threads(threads)
            .par_chunks(&data, chunk_len, |_, c| c.iter().sum());
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_mut_is_thread_count_invariant(
        data in prop::collection::vec(-1e6f64..1e6, 0..400),
        chunk_len in 1usize..64,
        threads in 1usize..9,
    ) {
        let mut seq = data.clone();
        let seq_sums: Vec<f64> = Runtime::sequential().par_chunks_mut(&mut seq, chunk_len, |i, c| {
            for v in c.iter_mut() {
                *v = v.mul_add(0.5, i as f64);
            }
            c.iter().sum()
        });
        let mut par = data;
        let par_sums: Vec<f64> =
            Runtime::with_threads(threads).par_chunks_mut(&mut par, chunk_len, |i, c| {
                for v in c.iter_mut() {
                    *v = v.mul_add(0.5, i as f64);
                }
                c.iter().sum()
            });
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_sums, par_sums);
    }

    #[test]
    fn par_reduce_is_thread_count_invariant(
        data in prop::collection::vec(-1e12f64..1e12, 0..500),
        chunk_len in 1usize..80,
        threads in 1usize..9,
    ) {
        // Floating-point addition is not associative, so bitwise equality
        // here demonstrates the fixed chunk boundaries and in-order fold.
        let run = |rt: Runtime| {
            rt.par_reduce(
                data.len(),
                chunk_len,
                |range| range.map(|i| data[i]).sum::<f64>(),
                |a, b| a + b,
            )
        };
        let seq = run(Runtime::sequential());
        let par = run(Runtime::with_threads(threads));
        prop_assert_eq!(seq.map(f64::to_bits), par.map(f64::to_bits));
    }

    #[test]
    fn par_map_indexed_is_thread_count_invariant(
        len in 0usize..2_000,
        threads in 1usize..9,
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        prop_assert_eq!(
            Runtime::sequential().par_map_indexed(len, f),
            Runtime::with_threads(threads).par_map_indexed(len, f)
        );
    }
}
