//! Integration tests over real TCP: the daemon under concurrent clients,
//! hot reload under load, keep-alive connections, and hostile bytes.
//!
//! The loader here parses a one-number file into a toy 1-d threshold
//! model — the serve crate never sees real model files (the umbrella
//! crate injects `load_model`); the real-model end-to-end path lives in
//! the workspace-root `serve_e2e` suite.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use adawave_serve::{Client, Model, ModelLoader, ModelStore, ServeConfig, Server};

/// Label 0 below the cut, 1 at or above, noise for non-finite input.
struct Threshold {
    cut: f64,
}

impl Model for Threshold {
    fn algorithm(&self) -> &str {
        "threshold"
    }
    fn dims(&self) -> usize {
        1
    }
    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != 1 || !point[0].is_finite() {
            return None;
        }
        Some(usize::from(point[0] >= self.cut))
    }
    fn summary(&self) -> String {
        format!("threshold at {}", self.cut)
    }
}

fn threshold_loader() -> ModelLoader {
    Arc::new(|path: &Path| {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let cut: f64 = text.trim().parse().map_err(|_| "bad file".to_string())?;
        Ok(Box::new(Threshold { cut }) as Box<dyn Model>)
    })
}

fn temp_model(name: &str, cut: f64) -> PathBuf {
    let path = std::env::temp_dir().join(format!("adawave_serve_{name}_{}", std::process::id()));
    std::fs::write(&path, cut.to_string()).unwrap();
    path
}

/// A daemon on a free port serving one threshold model named `cut`.
fn start(name: &str, workers: usize) -> (Server, PathBuf) {
    let path = temp_model(name, 0.5);
    let store = Arc::new(ModelStore::new(threshold_loader()));
    store.load("cut", &path).unwrap();
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            read_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        store,
    )
    .unwrap();
    (server, path)
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap()
}

#[test]
fn one_keep_alive_connection_carries_every_endpoint() {
    let (server, path) = start("endpoints", 2);
    let mut client = connect(&server);

    let health = client.get("/health").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);

    let models = client.get("/models").unwrap();
    assert!(models.body.contains("\"name\":\"cut\""), "{}", models.body);

    let summary = client.get("/models/cut").unwrap();
    assert!(
        summary.body.contains("\"summary\":\"threshold at 0.5\""),
        "{}",
        summary.body
    );

    let single = client
        .post(
            "/models/cut/predict",
            "application/json",
            r#"{"point": [0.9]}"#,
        )
        .unwrap();
    assert_eq!(single.status, 200);
    assert!(single.body.contains("\"label\":1"), "{}", single.body);

    let batch = client
        .post("/models/cut/predict-batch", "text/csv", "0.1\n0.9\nnan\n")
        .unwrap();
    assert_eq!(batch.status, 200);
    assert_eq!(batch.body, "label\n0\n1\n\n");

    let missing = client.get("/models/cot").unwrap();
    assert_eq!(missing.status, 404);
    assert!(
        missing.body.contains("did you mean cut?"),
        "{}",
        missing.body
    );

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_clients_get_byte_identical_responses_to_sequential() {
    // Keep-alive connections pin a worker for their lifetime, so size
    // the pool for the ground-truth connection plus every hammer thread.
    let (server, path) = start("concurrent", 8);
    let requests: Vec<(String, String)> = (0..24)
        .map(|i| {
            let x = i as f64 / 24.0;
            (format!("{{\"point\": [{x}]}}"), format!("0.0\n{x}\n1.0\n"))
        })
        .collect();

    // Sequential ground truth on one connection.
    let mut client = connect(&server);
    let expected: Vec<(String, String)> = requests
        .iter()
        .map(|(single, batch)| {
            let s = client
                .post("/models/cut/predict", "application/json", single)
                .unwrap();
            let b = client
                .post("/models/cut/predict-batch", "text/csv", batch)
                .unwrap();
            assert_eq!((s.status, b.status), (200, 200));
            (s.body, b.body)
        })
        .collect();

    // N hammering threads, each running the full request list repeatedly.
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
                for _ in 0..3 {
                    for ((single, batch), (expected_single, expected_batch)) in
                        requests.iter().zip(&expected)
                    {
                        let s = client
                            .post("/models/cut/predict", "application/json", single)
                            .unwrap();
                        let b = client
                            .post("/models/cut/predict-batch", "text/csv", batch)
                            .unwrap();
                        assert_eq!(&s.body, expected_single, "single diverged under load");
                        assert_eq!(&b.body, expected_batch, "batch diverged under load");
                    }
                }
            });
        }
    });

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn hot_reload_under_load_never_mixes_model_versions() {
    // 4 hammer connections + 1 admin connection, each pinning a worker.
    let (server, path) = start("reload", 6);
    let addr = server.local_addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Version 1: cut 0.5 → 0.4 labels 0. Version 2+: cut 0.1 → 0.4
    // labels 1. Every response must be internally consistent — the
    // version it claims and the label that version's model gives.
    std::thread::scope(|scope| {
        let mut hammers = Vec::new();
        for _ in 0..4 {
            let stop = Arc::clone(&stop);
            hammers.push(scope.spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
                let mut checked = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = client
                        .post(
                            "/models/cut/predict",
                            "application/json",
                            r#"{"point": [0.4]}"#,
                        )
                        .unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    let old = r.body.contains("\"version\":1") && r.body.contains("\"label\":0");
                    let new = !r.body.contains("\"version\":1") && r.body.contains("\"label\":1");
                    assert!(old || new, "mixed-version response: {}", r.body);
                    checked += 1;
                }
                checked
            }));
        }

        // Retrain (rewrite the file) and hot-reload mid-hammering.
        std::thread::sleep(Duration::from_millis(50));
        std::fs::write(&path, "0.1").unwrap();
        let mut admin = Client::connect(addr, Duration::from_secs(5)).unwrap();
        let reload = admin
            .post("/admin/reload/cut", "application/json", "")
            .unwrap();
        assert_eq!(reload.status, 200, "{}", reload.body);
        assert!(reload.body.contains("\"version\":2"), "{}", reload.body);
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);

        let total: u32 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "hammers made no requests");
        // After the reload settles, everyone sees version 2.
        let r = admin
            .post(
                "/models/cut/predict",
                "application/json",
                r#"{"point": [0.4]}"#,
            )
            .unwrap();
        assert!(r.body.contains("\"version\":2"), "{}", r.body);
        assert!(r.body.contains("\"label\":1"), "{}", r.body);
    });

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn hostile_bytes_get_a_400_and_a_close_never_a_hang() {
    let (server, path) = start("hostile", 2);
    let addr = server.local_addr();

    // Raw garbage instead of HTTP.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"EHLO not-http\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap(); // server closes after the 400
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // A half-request then silence: the read timeout closes it (2s here)
    // instead of pinning a worker forever.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled.write_all(b"GET /health HTT").unwrap();
    let mut tail = Vec::new();
    stalled.read_to_end(&mut tail).unwrap(); // closed, not hung
                                             // And the daemon still answers healthy clients afterwards.
    let mut client = connect(&server);
    assert_eq!(client.get("/health").unwrap().status, 200);

    server.shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn shutdown_stops_accepting_but_answers_queued_work() {
    let (server, path) = start("shutdown", 2);
    let mut client = connect(&server);
    assert_eq!(client.get("/health").unwrap().status, 200);
    server.shutdown();
    server.join();
    assert!(
        Client::connect("127.0.0.1:1".parse().unwrap(), Duration::from_millis(100)).is_err(),
        "sanity: connecting to a dead port errors"
    );
    std::fs::remove_file(&path).ok();
}
