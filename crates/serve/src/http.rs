//! A minimal HTTP/1.1 reader/writer over any buffered stream — request
//! parsing with hard size limits, and plain-text response framing with
//! `Content-Length` (no chunked encoding, no TLS).
//!
//! This is intentionally the smallest slice of the protocol a model
//! server needs: request line + headers + optional `Content-Length` body
//! in, status + headers + body out, keep-alive by HTTP/1.1 default.
//! Anything outside that slice is a [`HttpError`], which the server turns
//! into a typed 4xx — never a hang (reads are under a socket timeout) and
//! never a panic.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed or the socket failed mid-request (including read
    /// timeouts); there is nobody to answer, so the connection just drops.
    Io(std::io::Error),
    /// The bytes are not well-formed HTTP/1.1 — answered with a 400.
    Malformed(String),
    /// The declared body exceeds the server's limit — answered with a 413.
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket: {e}"),
            HttpError::Malformed(context) => write!(f, "malformed request: {context}"),
            HttpError::BodyTooLarge(limit) => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// The request target's path with any `?query` stripped.
    pub path: String,
    /// Header name → value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`; keep-alive is the HTTP/1.1 default).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The request body as UTF-8 text, or a malformed-request error.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not valid UTF-8".to_string()))
    }
}

/// Read one request from a buffered stream.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte —
/// the normal end of a keep-alive connection.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::Malformed("connection closed mid-headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{length}'")))?;
        if length > max_body_bytes {
            return Err(HttpError::BodyTooLarge(max_body_bytes));
        }
        let mut body = vec![0u8; length];
        let mut filled = 0;
        while filled < length {
            match reader.read(&mut body[filled..]).map_err(HttpError::Io)? {
                0 => {
                    return Err(HttpError::Malformed(
                        "connection closed mid-body".to_string(),
                    ))
                }
                n => filled += n,
            }
        }
        request.body = body;
    }
    Ok(Some(request))
}

/// Read one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE_BYTES`].
/// `Ok(None)` = end of stream before any byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte).map_err(HttpError::Io)? {
            0 => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::Malformed(
                        "connection closed mid-line".to_string(),
                    ))
                }
            }
            _ => match byte[0] {
                b'\n' => break,
                b'\r' => {}
                b => {
                    if line.len() >= MAX_LINE_BYTES {
                        return Err(HttpError::Malformed(format!(
                            "line exceeds {MAX_LINE_BYTES} bytes"
                        )));
                    }
                    line.push(b);
                }
            },
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("line is not valid UTF-8".to_string()))
}

/// One response ready to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body text.
    pub body: String,
    /// Whether to keep the connection open after this response.
    pub keep_alive: bool,
}

impl Response {
    /// A 200 JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
            keep_alive: true,
        }
    }

    /// A 200 CSV response.
    pub fn csv(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/csv",
            body,
            keep_alive: true,
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::json::Json::Object(vec![(
            "error".to_string(),
            crate::json::Json::String(message.to_string()),
        )]);
        Response {
            status,
            content_type: "application/json",
            body: body.render(),
            keep_alive: status < 500,
        }
    }
}

/// The reason phrase for each status this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write `response` onto the stream with explicit `Content-Length`.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if response.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut text.as_bytes(), 1024)
    }

    #[test]
    fn parses_a_post_with_body_and_lowercases_headers() {
        let request = parse(
            "POST /models/blobs/predict?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/models/blobs/predict");
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body_text().unwrap(), "hello");
        assert!(!request.wants_close());
    }

    #[test]
    fn clean_eof_is_none_but_truncation_is_an_error() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(
            parse("GET /health HTTP/1.1\r\nHost: x"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_and_oversized_bodies_are_typed_errors() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SMTP/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge(1024))
        ));
    }

    #[test]
    fn responses_frame_with_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json("{\"ok\":true}".to_string())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, &Response::error(500, "boom")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("500 Internal Server Error"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.ends_with("{\"error\":\"boom\"}"), "{text}");
    }
}
