//! A tiny blocking HTTP/1.1 client — just enough to exercise the daemon
//! from tests, the benchmark harness, and scripts, with keep-alive so one
//! connection can carry many requests (how throughput is measured).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as the client saw it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The body text.
    pub body: String,
}

/// A keep-alive connection to a serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` with a read timeout (a dead server fails the
    /// caller instead of hanging it).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?; // don't batch tiny requests behind Nagle
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// `GET path` over the persistent connection.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, "application/json", "")
    }

    /// `POST path` with a body over the persistent connection.
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, content_type, body)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: adawave\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |context: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, context);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("server closed the connection"));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line '{}'", status_line.trim())))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let line = line.trim();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(&format!("bad content-length '{}'", value.trim())))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        Ok(ClientResponse { status, body })
    }
}
