//! The served-model store: named `Arc<dyn Model>` entries behind a
//! read-mostly lock, with **atomic hot reload**.
//!
//! Requests take a cheap read-lock only long enough to clone the entry's
//! `Arc`, then predict with no lock held — so a reload never blocks
//! in-flight predictions, and an in-flight prediction never observes a
//! half-swapped model: every request is answered entirely by the one
//! model version it snapshotted. Reload parses the new file *before*
//! taking the write-lock; a file that fails to load leaves the old model
//! serving untouched.
//!
//! The store does not know how to parse model files — the umbrella
//! crate's `load_model` is injected as a [`ModelLoader`] closure, keeping
//! this crate's dependencies to `adawave-api` alone.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

use adawave_api::Model;

/// How the store turns a file path into a model — injected by the host
/// (the CLI wires in `adawave::load_model`).
pub type ModelLoader = Arc<dyn Fn(&Path) -> Result<Box<dyn Model>, String> + Send + Sync>;

/// One served model: the immutable artifact plus its provenance.
pub struct ModelEntry {
    /// The serving name (what requests address).
    pub name: String,
    /// The file the model was loaded from (reload re-reads it).
    pub path: PathBuf,
    /// The trained model, shared across worker threads.
    pub model: Arc<dyn Model>,
    /// Monotonic per-name version, bumped on every successful reload —
    /// lets clients prove a swap was atomic (no mixed-version responses).
    pub version: u64,
}

/// Named models behind a read-mostly lock. See the module docs for the
/// locking discipline.
///
/// Lock poisoning is deliberately recovered (`PoisonError::into_inner`)
/// rather than propagated as a panic: every critical section is a single
/// map operation that cannot leave the map logically inconsistent, and
/// the request path must stay panic-free.
pub struct ModelStore {
    loader: ModelLoader,
    entries: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
}

impl ModelStore {
    /// An empty store that loads model files through `loader`.
    pub fn new(loader: ModelLoader) -> ModelStore {
        ModelStore {
            loader,
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// Load `path` and serve it under `name` (replacing any previous
    /// entry for the name, version restarting at 1).
    pub fn load(&self, name: &str, path: &Path) -> Result<(), String> {
        let model: Arc<dyn Model> = Arc::from((self.loader)(path)?);
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            path: path.to_path_buf(),
            model,
            version: 1,
        });
        self.entries
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), entry);
        Ok(())
    }

    /// Atomically re-load `name` from its original file and swap it in,
    /// returning the new version. On any error the old model keeps
    /// serving unchanged.
    pub fn reload(&self, name: &str) -> Result<u64, String> {
        let current = self
            .get(name)
            .ok_or_else(|| format!("unknown model '{name}'"))?;
        // Parse the file with no lock held — reload cost never blocks
        // readers, and a corrupt file never evicts the serving model.
        let model: Arc<dyn Model> = Arc::from((self.loader)(&current.path)?);
        let mut entries = self.entries.write().unwrap_or_else(PoisonError::into_inner);
        // Re-read the live version under the write-lock so concurrent
        // reloads still produce strictly increasing versions.
        let version = entries.get(name).map_or(1, |e| e.version + 1);
        entries.insert(
            name.to_string(),
            Arc::new(ModelEntry {
                name: current.name.clone(),
                path: current.path.clone(),
                model,
                version,
            }),
        );
        Ok(version)
    }

    /// Snapshot the entry serving `name` (cheap: clones one `Arc`).
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// All serving names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Snapshot every entry, sorted by name.
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect()
    }

    /// How many models are serving.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no model is serving.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy one-dimensional threshold model: label 0 below `cut`, 1 at
    /// or above, noise for non-finite input.
    struct Threshold {
        cut: f64,
    }

    impl Model for Threshold {
        fn algorithm(&self) -> &str {
            "threshold"
        }
        fn dims(&self) -> usize {
            1
        }
        fn predict_one(&self, point: &[f64]) -> Option<usize> {
            if point.len() != 1 || !point[0].is_finite() {
                return None;
            }
            Some(usize::from(point[0] >= self.cut))
        }
        fn summary(&self) -> String {
            format!("threshold at {}", self.cut)
        }
    }

    /// A loader that "parses" the file's text as the threshold; the word
    /// `bad` fails, exercising the reload-keeps-old-model path.
    fn text_loader() -> ModelLoader {
        Arc::new(|path: &Path| {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let cut: f64 = text.trim().parse().map_err(|_| "bad file".to_string())?;
            Ok(Box::new(Threshold { cut }) as Box<dyn Model>)
        })
    }

    fn temp_file(name: &str, text: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("adawave_store_{name}_{}", std::process::id()));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn load_get_and_reload_swap_atomically() {
        let store = ModelStore::new(text_loader());
        let path = temp_file("swap", "0.5");
        store.load("blobs", &path).unwrap();
        assert_eq!(store.names(), vec!["blobs".to_string()]);

        let before = store.get("blobs").unwrap();
        assert_eq!(before.version, 1);
        assert_eq!(before.model.predict_one(&[0.4]), Some(0));

        // Retrain (rewrite the file), hot reload, and verify: the old
        // snapshot still answers with the old rule — no mixed state —
        // while new snapshots see the new rule and a bumped version.
        std::fs::write(&path, "0.1").unwrap();
        assert_eq!(store.reload("blobs").unwrap(), 2);
        assert_eq!(before.model.predict_one(&[0.4]), Some(0));
        let after = store.get("blobs").unwrap();
        assert_eq!(after.version, 2);
        assert_eq!(after.model.predict_one(&[0.4]), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_reload_keeps_the_old_model_serving() {
        let store = ModelStore::new(text_loader());
        let path = temp_file("bad_reload", "0.5");
        store.load("blobs", &path).unwrap();
        std::fs::write(&path, "bad").unwrap();
        assert!(store.reload("blobs").is_err());
        let entry = store.get("blobs").unwrap();
        assert_eq!(entry.version, 1);
        assert_eq!(entry.model.predict_one(&[0.9]), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_names_and_unreadable_files_error() {
        let store = ModelStore::new(text_loader());
        assert!(store.reload("ghost").unwrap_err().contains("ghost"));
        assert!(store
            .load("ghost", Path::new("/definitely/not/here"))
            .is_err());
        assert!(store.is_empty());
    }
}
