//! The serving front end: a `TcpListener` acceptor feeding a fixed worker
//! pool over an mpsc channel, each worker speaking the minimal HTTP/1.1
//! of [`crate::http`] with keep-alive.
//!
//! Endpoints (all bodies JSON unless noted):
//!
//! | method & path                        | does                                         |
//! |--------------------------------------|----------------------------------------------|
//! | `GET /health`                        | readiness + model count                      |
//! | `GET /models`                        | list served models (name/algorithm/dims/version) |
//! | `GET /models/<name>`                 | one model's metadata + `summary()`           |
//! | `POST /models/<name>/predict`        | single point `{"point": [..]}` → `{"label": N\|null}` |
//! | `POST /models/<name>/predict-batch`  | CSV or JSON rows → labels (noise = empty/`null`) |
//! | `POST /admin/reload/<name>`          | atomic hot reload from the model's file      |
//!
//! Batch responses are **byte-identical** to `adawave predict --output
//! csv|json` on the same model and rows — the CI smoke diffs the two.
//! Malformed input is a typed 4xx, a handler panic is a 500 (the worker
//! survives via `catch_unwind`), and socket reads sit under a timeout so
//! a stalled client cannot hang a worker forever.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use adawave_api::{closest_matches, PointMatrix};
use adawave_runtime::Runtime;

use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::json::Json;
use crate::store::ModelStore;

/// How the daemon listens and how workers are sized.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks a free port — tests use
    /// this).
    pub addr: String,
    /// Worker threads; `0` = auto via the `adawave-runtime` precedence
    /// (explicit value, else `ADAWAVE_THREADS`, else available cores).
    pub workers: usize,
    /// Socket read timeout — a stalled or silent client is dropped after
    /// this long instead of pinning a worker.
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8355".to_string(),
            workers: 0,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
        }
    }
}

/// A running serve daemon; dropping it shuts the listener and workers
/// down (in-flight requests finish first).
pub struct Server {
    addr: SocketAddr,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `store` on the configured address.
    pub fn start(config: ServeConfig, store: Arc<ModelStore>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = Runtime::with_threads(config.workers).threads();
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let store = Arc::clone(&store);
            let config = config.clone();
            pool.push(
                // audit:allow(raw-thread) connection worker pool: serves I/O, produces no clustering results; thread count never affects labels
                std::thread::Builder::new()
                    .name(format!("adawave-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the handoff —
                        // and recover a poisoned lock (the handoff cannot
                        // leave the queue inconsistent) so one crashed
                        // worker never wedges the pool.
                        let stream = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        match stream {
                            Ok(stream) => handle_connection(stream, &store, &config),
                            Err(_) => break, // acceptor gone: drain done
                        }
                    })?,
            );
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            // audit:allow(raw-thread) accept-loop thread: plumbing only, no result-producing work
            std::thread::Builder::new()
                .name("adawave-serve-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                    // tx drops here; workers exit after draining the queue.
                })?
        };

        Ok(Server {
            addr,
            workers,
            shutdown,
            acceptor: Some(acceptor),
            pool,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many worker threads are serving.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Ask the daemon to stop: the listener closes, queued connections
    /// are still answered, and workers exit. Safe to call twice.
    pub fn shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the blocking accept() so the acceptor sees the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Block until the daemon stops (the CLI parks here; tests call
    /// [`Server::shutdown`] first).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.pool.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join_threads();
    }
}

/// Serve one client connection: keep-alive request loop, typed errors,
/// panic isolation.
fn handle_connection(stream: TcpStream, store: &ModelStore, config: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // Small request/response exchanges stall ~40-200ms per round trip
    // under Nagle + delayed ACK; a model server wants the latency.
    let _ = stream.set_nodelay(true);
    let Ok(cloned) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(cloned);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, config.max_body_bytes) {
            Ok(None) => break,
            Err(HttpError::Io(_)) => break, // peer vanished or timed out
            Err(HttpError::Malformed(context)) => {
                let mut response = Response::error(400, &format!("malformed request: {context}"));
                response.keep_alive = false;
                let _ = write_response(&mut writer, &response);
                break;
            }
            Err(HttpError::BodyTooLarge(limit)) => {
                let mut response =
                    Response::error(413, &format!("request body exceeds the {limit}-byte limit"));
                response.keep_alive = false;
                let _ = write_response(&mut writer, &response);
                break;
            }
            Ok(Some(request)) => {
                // A panicking handler answers 500 and the worker lives on.
                let mut response = catch_unwind(AssertUnwindSafe(|| route(store, &request)))
                    .unwrap_or_else(|_| {
                        Response::error(500, "internal error: request handler panicked")
                    });
                if request.wants_close() {
                    response.keep_alive = false;
                }
                if write_response(&mut writer, &response).is_err() || !response.keep_alive {
                    break;
                }
            }
        }
    }
}

/// Every route, for the unknown-endpoint message.
const ENDPOINTS: &str = "GET /health, GET /models, GET /models/<name>, \
                         POST /models/<name>/predict, POST /models/<name>/predict-batch, \
                         POST /admin/reload/<name>";

/// Dispatch one request to its endpoint.
fn route(store: &ModelStore, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Response::json(
            Json::Object(vec![
                ("status".to_string(), Json::String("ok".to_string())),
                ("models".to_string(), Json::Number(store.len() as f64)),
            ])
            .render(),
        ),
        ("GET", ["models"]) => list_models(store),
        ("GET", ["models", name]) => with_model(store, name, model_summary),
        ("POST", ["models", name, "predict"]) => {
            with_model(store, name, |entry| predict_single(entry, request))
        }
        ("POST", ["models", name, "predict-batch"]) => {
            with_model(store, name, |entry| predict_batch(entry, request))
        }
        ("POST", ["admin", "reload", name]) => reload_model(store, name),
        (method, _) if !matches!(method, "GET" | "POST") => Response::error(
            405,
            &format!("method {method} is not supported (use GET or POST)"),
        ),
        _ => Response::error(
            404,
            &format!(
                "unknown endpoint '{} {}' — endpoints: {ENDPOINTS}",
                request.method, request.path
            ),
        ),
    }
}

/// Snapshot `name`'s entry and run `f` on it, or answer 404 with a
/// "did you mean ...?" built from the serving names.
fn with_model(
    store: &ModelStore,
    name: &str,
    f: impl FnOnce(&crate::store::ModelEntry) -> Response,
) -> Response {
    match store.get(name) {
        Some(entry) => f(&entry),
        None => Response::error(404, &unknown_model(name, &store.names())),
    }
}

/// The 404 body for an unknown model name, with suggestions.
fn unknown_model(name: &str, known: &[String]) -> String {
    let close = closest_matches(name, known.iter().map(String::as_str));
    let suggestion = if close.is_empty() {
        String::new()
    } else {
        format!(" — did you mean {}?", close.join(" or "))
    };
    format!(
        "unknown model '{name}'{suggestion} (serving: {})",
        if known.is_empty() {
            "nothing".to_string()
        } else {
            known.join(", ")
        }
    )
}

fn model_fields(entry: &crate::store::ModelEntry) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::String(entry.name.clone())),
        (
            "algorithm".to_string(),
            Json::String(entry.model.algorithm().to_string()),
        ),
        ("dims".to_string(), Json::Number(entry.model.dims() as f64)),
        ("version".to_string(), Json::Number(entry.version as f64)),
    ]
}

fn list_models(store: &ModelStore) -> Response {
    let models = store
        .entries()
        .iter()
        .map(|entry| Json::Object(model_fields(entry)))
        .collect();
    Response::json(Json::Object(vec![("models".to_string(), Json::Array(models))]).render())
}

fn model_summary(entry: &crate::store::ModelEntry) -> Response {
    let mut fields = model_fields(entry);
    fields.push((
        "path".to_string(),
        Json::String(entry.path.display().to_string()),
    ));
    fields.push(("summary".to_string(), Json::String(entry.model.summary())));
    Response::json(Json::Object(fields).render())
}

fn reload_model(store: &ModelStore, name: &str) -> Response {
    if store.get(name).is_none() {
        return Response::error(404, &unknown_model(name, &store.names()));
    }
    match store.reload(name) {
        Ok(version) => Response::json(
            Json::Object(vec![
                ("name".to_string(), Json::String(name.to_string())),
                ("version".to_string(), Json::Number(version as f64)),
            ])
            .render(),
        ),
        Err(context) => Response::error(500, &format!("reload failed: {context}")),
    }
}

/// `POST /models/<name>/predict` — body `{"point": [x, y, ...]}`.
///
/// Answers the model's stable internal id (`null` = noise, per the
/// outlier contract: an in-domain point the model cannot place is an
/// answer, not an error). Wrong arity is a 400 — the request itself is
/// broken, not the point.
fn predict_single(entry: &crate::store::ModelEntry, request: &Request) -> Response {
    let body = match request.body_text() {
        Ok(text) => text,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(context) => return Response::error(400, &format!("bad JSON body: {context}")),
    };
    let Some(point) = doc.get("point").and_then(Json::as_array) else {
        return Response::error(400, "body must be {\"point\": [<numbers>]}");
    };
    let Some(values) = point.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>() else {
        return Response::error(400, "\"point\" must hold only numbers");
    };
    if values.len() != entry.model.dims() {
        return Response::error(
            400,
            &format!(
                "point has {} coordinates, model '{}' expects {}",
                values.len(),
                entry.name,
                entry.model.dims()
            ),
        );
    }
    let label = match entry.model.predict_one(&values) {
        Some(label) => Json::Number(label as f64),
        None => Json::Null,
    };
    Response::json(
        Json::Object(vec![
            ("model".to_string(), Json::String(entry.name.clone())),
            ("version".to_string(), Json::Number(entry.version as f64)),
            ("label".to_string(), label),
        ])
        .render(),
    )
}

/// `POST /models/<name>/predict-batch` — rows in, labels out, in the
/// body's own format: `Content-Type: text/csv` takes CSV rows and
/// answers CSV labels; anything else takes `{"rows": [[..], ..]}` and
/// answers the JSON labels document. Both responses are byte-identical
/// to `adawave predict --output csv|json` on the same rows.
fn predict_batch(entry: &crate::store::ModelEntry, request: &Request) -> Response {
    let body = match request.body_text() {
        Ok(text) => text,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let csv = request
        .header("content-type")
        .is_some_and(|t| t.to_ascii_lowercase().contains("csv"));
    let rows = if csv {
        parse_csv_rows(body)
    } else {
        parse_json_rows(body)
    };
    let rows = match rows {
        Ok(rows) => rows,
        Err(context) => return Response::error(400, &context),
    };
    let dims = rows.first().map_or(entry.model.dims(), Vec::len);
    let mut points = PointMatrix::new(dims);
    for row in &rows {
        points.push_row(row);
    }
    // The InvalidInput contract covers empty / zero-dim / wrong-dims
    // batches — all requests the client got wrong, hence 400.
    let clustering = match entry.model.predict(points.view()) {
        Ok(clustering) => clustering,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    if csv {
        Response::csv(render_labels_csv(clustering.assignment()))
    } else {
        Response::json(render_labels_json(clustering.assignment()))
    }
}

/// Parse a JSON batch body `{"rows": [[numbers], ...]}` into equal-arity
/// rows.
fn parse_json_rows(body: &str) -> Result<Vec<Vec<f64>>, String> {
    let doc = Json::parse(body).map_err(|context| format!("bad JSON body: {context}"))?;
    let raw = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("body must be {\"rows\": [[<numbers>], ...]}")?;
    let mut rows = Vec::with_capacity(raw.len());
    for (i, row) in raw.iter().enumerate() {
        let values: Option<Vec<f64>> = row
            .as_array()
            .map(|vals| vals.iter().map(Json::as_f64).collect())
            .unwrap_or(None);
        let values = values.ok_or_else(|| format!("row {i} must be an array of numbers"))?;
        if let Some(first) = rows.first() {
            let arity = Vec::len(first);
            if values.len() != arity {
                return Err(format!(
                    "row {i} holds {} values but row 0 holds {arity}",
                    values.len()
                ));
            }
        }
        rows.push(values);
    }
    Ok(rows)
}

/// Parse a CSV batch body: one comma-separated row of coordinates per
/// line. Blank lines and `#` comments are skipped, one leading header
/// line is tolerated, and non-finite spellings (`nan`, `inf`) are
/// *accepted* — CSV can express them, and non-finite coordinates take
/// the documented noise path instead of erroring.
fn parse_csv_rows(body: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut seen_data = false;
    for (line_no, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed: Result<Vec<f64>, _> =
            line.split(',').map(|field| field.trim().parse()).collect();
        let values = match parsed {
            Ok(values) => values,
            // Only the first content line may be non-numeric (a header).
            Err(_) if !seen_data => continue,
            Err(_) => return Err(format!("csv line {}: '{line}' is not numeric", line_no + 1)),
        };
        if let Some(first) = rows.first() {
            let arity = Vec::len(first);
            if values.len() != arity {
                return Err(format!(
                    "csv line {}: {} fields, expected {arity}",
                    line_no + 1,
                    values.len()
                ));
            }
        }
        seen_data = true;
        rows.push(values);
    }
    Ok(rows)
}

/// Labels as CSV, byte-identical to the CLI's `--output csv`: a `label`
/// header, one label per line, noise as an empty line.
fn render_labels_csv(assignment: &[Option<usize>]) -> String {
    let mut out = String::with_capacity(assignment.len() * 4 + 6);
    out.push_str("label\n");
    for label in assignment {
        if let Some(l) = label {
            out.push_str(&l.to_string());
        }
        out.push('\n');
    }
    out
}

/// Labels as the CLI's `--output json` document, byte-identical: counts
/// plus a `labels` array with `null` for noise.
fn render_labels_json(assignment: &[Option<usize>]) -> String {
    let clusters = assignment.iter().flatten().max().map_or(0, |&m| m + 1);
    let noise = assignment.iter().filter(|l| l.is_none()).count();
    let mut out = String::with_capacity(assignment.len() * 6 + 64);
    out.push_str(&format!(
        "{{\n  \"points\": {},\n  \"clusters\": {clusters},\n  \"noise_points\": {noise},\n  \"labels\": [",
        assignment.len()
    ));
    for (i, label) in assignment.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match label {
            Some(l) => out.push_str(&l.to_string()),
            None => out.push_str("null"),
        }
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ModelLoader;
    use adawave_api::Model;
    use std::path::Path;

    /// A 2-d quadrant model: label = 0..3 by sign pattern, noise for
    /// non-finite coordinates. Deterministic and trivially predictable.
    struct Quadrant;

    impl Model for Quadrant {
        fn algorithm(&self) -> &str {
            "quadrant"
        }
        fn dims(&self) -> usize {
            2
        }
        fn predict_one(&self, point: &[f64]) -> Option<usize> {
            if point.len() != 2 || point.iter().any(|v| !v.is_finite()) {
                return None;
            }
            Some(usize::from(point[0] >= 0.0) + 2 * usize::from(point[1] >= 0.0))
        }
        fn summary(&self) -> String {
            "quadrant model".to_string()
        }
    }

    fn quadrant_loader() -> ModelLoader {
        Arc::new(|_: &Path| Ok(Box::new(Quadrant) as Box<dyn Model>))
    }

    fn test_store() -> ModelStore {
        let store = ModelStore::new(quadrant_loader());
        store.load("quads", Path::new("/dev/null")).unwrap();
        store
    }

    fn get(store: &ModelStore, path: &str) -> Response {
        route(
            store,
            &Request {
                method: "GET".to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            },
        )
    }

    fn post(store: &ModelStore, path: &str, content_type: &str, body: &str) -> Response {
        route(
            store,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                headers: vec![("content-type".to_string(), content_type.to_string())],
                body: body.as_bytes().to_vec(),
            },
        )
    }

    #[test]
    fn health_models_and_summary_answer() {
        let store = test_store();
        let health = get(&store, "/health");
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"models\":1"), "{}", health.body);

        let list = get(&store, "/models");
        assert!(list.body.contains("\"name\":\"quads\""), "{}", list.body);
        assert!(list.body.contains("\"algorithm\":\"quadrant\""));

        let summary = get(&store, "/models/quads");
        assert!(summary.body.contains("\"summary\":\"quadrant model\""));
        assert!(summary.body.contains("\"version\":1"));
    }

    #[test]
    fn single_predict_labels_and_noise() {
        let store = test_store();
        let ok = post(
            &store,
            "/models/quads/predict",
            "application/json",
            r#"{"point": [1.0, -1.0]}"#,
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"label\":1"), "{}", ok.body);
        assert!(ok.body.contains("\"version\":1"), "{}", ok.body);

        // JSON cannot spell NaN, but CSV batch can — the single-point
        // noise path is exercised through an in-domain unanswerable
        // point in the e2e suite; here wrong arity must 400.
        let wrong = post(
            &store,
            "/models/quads/predict",
            "application/json",
            r#"{"point": [1.0]}"#,
        );
        assert_eq!(wrong.status, 400);
        assert!(wrong.body.contains("expects 2"), "{}", wrong.body);
    }

    #[test]
    fn batch_predict_matches_the_cli_writers_in_both_formats() {
        let store = test_store();
        let csv = post(
            &store,
            "/models/quads/predict-batch",
            "text/csv",
            "x,y\n1.0,1.0\n-1.0,-1.0\nnan,0.0\n",
        );
        assert_eq!(csv.status, 200, "{}", csv.body);
        // Quadrant labels 3, 0 compact to 0, 1; nan row is noise (empty).
        assert_eq!(csv.body, "label\n0\n1\n\n");

        let json = post(
            &store,
            "/models/quads/predict-batch",
            "application/json",
            r#"{"rows": [[1.0, 1.0], [-1.0, -1.0]]}"#,
        );
        assert_eq!(json.status, 200, "{}", json.body);
        assert_eq!(
            json.body,
            "{\n  \"points\": 2,\n  \"clusters\": 2,\n  \"noise_points\": 0,\n  \"labels\": [0, 1]\n}\n"
        );
    }

    #[test]
    fn malformed_bodies_are_typed_400s() {
        let store = test_store();
        for (content_type, body, needle) in [
            ("application/json", "{not json", "bad JSON"),
            ("application/json", r#"{"rows": [[1.0, NaN]]}"#, "bad JSON"),
            ("application/json", r#"{"points": []}"#, "rows"),
            (
                "application/json",
                r#"{"rows": [[1.0, 2.0], [3.0]]}"#,
                "row 1",
            ),
            ("application/json", r#"{"rows": []}"#, "invalid input"),
            ("text/csv", "x,y\n1.0,2.0\n3.0\n", "csv line 3"),
            ("text/csv", "1.0,2.0\nbanana,2.0\n", "csv line 2"),
            ("text/csv", "1.0,2.0,3.0\n", "invalid input"),
        ] {
            let response = post(&store, "/models/quads/predict-batch", content_type, body);
            assert_eq!(response.status, 400, "{body:?} -> {}", response.body);
            assert!(
                response.body.contains(needle),
                "{body:?} -> {}",
                response.body
            );
        }
    }

    #[test]
    fn unknown_models_get_suggestions_and_unknown_paths_list_endpoints() {
        let store = test_store();
        let typo = get(&store, "/models/quadz");
        assert_eq!(typo.status, 404);
        assert!(typo.body.contains("did you mean quads?"), "{}", typo.body);

        let missing = get(&store, "/nope");
        assert_eq!(missing.status, 404);
        assert!(missing.body.contains("GET /health"), "{}", missing.body);

        let bad_method = route(
            &store,
            &Request {
                method: "DELETE".to_string(),
                path: "/models/quads".to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(bad_method.status, 405);
    }

    #[test]
    fn reload_bumps_the_version_and_missing_models_404() {
        let store = test_store();
        let reload = post(&store, "/admin/reload/quads", "application/json", "");
        assert_eq!(reload.status, 200, "{}", reload.body);
        assert!(reload.body.contains("\"version\":2"), "{}", reload.body);
        assert!(get(&store, "/models/quads").body.contains("\"version\":2"));

        let missing = post(&store, "/admin/reload/ghost", "application/json", "");
        assert_eq!(missing.status, 404);
    }
}
