//! A minimal strict JSON reader/writer — just enough for the serve wire
//! protocol, with no dependencies.
//!
//! The parser is deliberately strict: `NaN`, `Infinity`, trailing commas,
//! comments and unquoted keys are all rejected. Strictness is load-bearing
//! for the outlier contract — JSON has no spelling for a non-finite
//! number, so a request that *needs* one is malformed by construction and
//! earns a 400, while the CSV body format (which can spell `nan`) routes
//! non-finite coordinates into the documented noise path instead.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the grammar cannot spell NaN/inf).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered key → value list (duplicate keys keep the
    /// last occurrence on lookup, like most decoders).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_whitespace();
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(v) => write_number(out, *v),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write a finite number; integral values print without a fraction so
/// labels and counts come out as plain integers.
fn write_number(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Hard recursion bound: nothing on this wire nests deeper.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("document nests too deeply".to_string());
        }
        let value = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::String),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of document".to_string()),
        };
        self.depth -= 1;
        value
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The scanned bytes are ASCII digits/signs, so this cannot fail —
        // but the request path must not panic on the impossible either.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !value.is_finite() {
            // Overflowing literals like 1e999 parse to infinity; reject.
            return Err(format!("number '{text}' overflows at byte {start}"));
        }
        Ok(Json::Number(value))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // Surrogates are not paired here; replace them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar. The document is
                    // re-validated here so a malformed body is a typed
                    // error, never a panic.
                    let c = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|rest| rest.chars().next())
                        .ok_or_else(|| format!("invalid utf-8 at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let doc = Json::parse(r#"{"point": [0.25, -1.5e-2], "note": "a\nb"}"#).unwrap();
        let point: Vec<f64> = doc
            .get("point")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(point, vec![0.25, -0.015]);
        assert_eq!(doc.get("note").unwrap().as_str(), Some("a\nb"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "NaN",
            "[Infinity]",
            "1e999",
            "{} trailing",
            "\"unterminated",
            "[1] [2]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn render_round_trips_and_writes_integers_plainly() {
        let value = Json::Object(vec![
            ("label".to_string(), Json::Number(3.0)),
            ("noise".to_string(), Json::Null),
            ("rate".to_string(), Json::Number(0.5)),
            ("name".to_string(), Json::String("a\"b".to_string())),
            (
                "row".to_string(),
                Json::Array(vec![Json::Number(1.0), Json::Bool(false)]),
            ),
        ]);
        let text = value.render();
        assert_eq!(
            text,
            r#"{"label":3,"noise":null,"rate":0.5,"name":"a\"b","row":[1,false]}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        assert!(Json::parse(&deep).unwrap_err().contains("deep"));
    }
}
