//! # adawave-serve
//!
//! A dependency-free model-serving daemon for the AdaWave workspace: a
//! [`std::net::TcpListener`] front end speaking minimal HTTP/1.1, a fixed
//! worker pool sized through `adawave-runtime`'s thread-selection
//! precedence, and **atomic hot model reload** so operators can retrain
//! and swap a model without dropping connections.
//!
//! The crate depends only on `adawave-api` (the [`Model`] trait it
//! serves) and `adawave-runtime` (worker sizing) — it does not know how
//! to parse model files. The host injects a [`ModelLoader`] closure
//! (the umbrella crate's `load_model`) into the [`ModelStore`]; that
//! keeps the dependency graph acyclic while `adawave` re-exports this
//! crate.
//!
//! ```no_run
//! use std::sync::Arc;
//! use adawave_serve::{ModelStore, ServeConfig, Server};
//!
//! // The host decides how files become models (e.g. adawave::load_model).
//! let loader = Arc::new(|path: &std::path::Path| {
//!     Err::<Box<dyn adawave_serve::Model>, String>(format!("no loader for {}", path.display()))
//! });
//! let store = Arc::new(ModelStore::new(loader));
//! store.load("blobs", std::path::Path::new("blobs.awm")).unwrap();
//! let server = Server::start(ServeConfig::default(), store).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! server.join(); // blocks until shutdown
//! ```
//!
//! ## Wire contract
//!
//! Single-point predictions answer the model's stable internal cluster id
//! and spell noise as `null` — an in-domain point the model cannot place
//! is an *answer*, not an error. Batch predictions answer the exact bytes
//! of `adawave predict --output csv|json` on the same rows (noise = empty
//! CSV field / JSON `null`), so served labels can be diffed against
//! offline ones. Malformed requests (bad JSON, ragged rows, wrong
//! dimensionality, oversized bodies) get typed 4xx responses; a handler
//! panic answers 500 and the worker thread survives.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod store;

pub use adawave_api::Model;
pub use client::{Client, ClientResponse};
pub use server::{ServeConfig, Server};
pub use store::{ModelEntry, ModelLoader, ModelStore};
