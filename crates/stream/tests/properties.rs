//! Property tests for the streaming accumulator (the `to_bits()`-equality
//! style of `crates/runtime/tests/properties.rs`): over random point sets
//! and random batch partitions, `SparseGrid::merge` + batched `ingest`
//! must reproduce the one-shot quantized grid and the one-shot labels
//! exactly, bit for bit.

use adawave_api::{PointMatrix, PointsView};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_grid::{BoundingBox, SparseGrid};
use adawave_stream::{load_accumulator, save_accumulator, Checkpointer, StreamingAdaWave};
use proptest::prelude::*;

/// A fresh temp-file path per proptest case, so concurrent cases (and
/// concurrent test binaries) never collide.
fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("adawave_prop_{tag}_{}_{n}.awa", std::process::id()))
}

fn matrix(coords: &[(f64, f64)]) -> PointMatrix {
    let mut points = PointMatrix::new(2);
    for &(x, y) in coords {
        points.push_row(&[x, y]);
    }
    points
}

/// Sorted `(key, density-bits)` image of a grid — bitwise comparison that
/// does not depend on hash-map iteration order.
fn grid_bits(grid: &SparseGrid) -> Vec<(u128, u64)> {
    let mut cells: Vec<(u128, u64)> = grid.iter().map(|(k, v)| (k, v.to_bits())).collect();
    cells.sort_unstable();
    cells
}

/// Turn arbitrary cut positions into a sorted batch partition of `0..n`.
fn partition(n: usize, raw_cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut cuts: Vec<usize> = raw_cuts.iter().map(|&c| c % (n + 1)).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

fn rows<'a>(points: &'a PointMatrix, lo: usize, hi: usize) -> PointsView<'a> {
    let dims = points.dims();
    PointsView::from_flat(&points.as_slice()[lo * dims..hi * dims], dims).unwrap()
}

proptest! {
    #[test]
    fn random_partitions_reproduce_the_one_shot_grid_and_labels(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..250),
        raw_cuts in prop::collection::vec(0usize..250, 0..8),
        threads in 1usize..5,
    ) {
        let points = matrix(&coords);
        let config = AdaWaveConfig::builder().scale(16).threads(threads).build();
        let adawave = AdaWave::new(config.clone());
        let one_shot = adawave.fit(points.view()).unwrap();

        let domain = BoundingBox::from_points(points.view()).unwrap();
        let mut stream = StreamingAdaWave::with_domain(config, domain.clone()).unwrap();
        for (lo, hi) in partition(points.len(), &raw_cuts) {
            let report = stream.ingest(rows(&points, lo, hi)).unwrap();
            prop_assert_eq!(report.points, hi - lo);
            prop_assert_eq!(report.outliers, 0);
        }

        // The accumulated grid is bit-identical to quantizing in one shot.
        let quantizer = adawave.quantizer_for(&domain).unwrap();
        let (reference_grid, _) = quantizer.quantize(points.view());
        prop_assert_eq!(grid_bits(stream.grid().unwrap()), grid_bits(&reference_grid));

        // And the refit labels (plus stats and density curve) match fit.
        let refit = stream.refit().unwrap();
        prop_assert_eq!(refit.assignment(), one_shot.assignment());
        prop_assert_eq!(refit, one_shot);
    }

    #[test]
    fn merging_randomly_split_sessions_matches_a_single_session(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..200),
        split in 1usize..199,
        raw_cuts in prop::collection::vec(0usize..200, 0..4),
    ) {
        let points = matrix(&coords);
        let split = 1 + split % (points.len() - 1).max(1);
        let config = AdaWaveConfig::builder().scale(16).build();
        let domain = BoundingBox::from_points(points.view()).unwrap();

        // One session fed everything in order...
        let mut whole = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        whole.ingest(points.view()).unwrap();

        // ...vs two shards: the left ingests `0..split` in random batches,
        // the right `split..n`, then the accumulators merge.
        let mut left = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        for (lo, hi) in partition(split, &raw_cuts) {
            left.ingest(rows(&points, lo, hi)).unwrap();
        }
        let mut right = StreamingAdaWave::with_domain(config, domain).unwrap();
        right.ingest(rows(&points, split, points.len())).unwrap();
        left.merge(right).unwrap();

        prop_assert_eq!(left.points_ingested(), points.len());
        prop_assert_eq!(grid_bits(left.grid().unwrap()), grid_bits(whole.grid().unwrap()));
        prop_assert_eq!(left.refit().unwrap(), whole.refit().unwrap());
    }

    /// The distributed form of the shard merge: every shard session round-
    /// trips through an accumulator *file* before merging, and the merged
    /// grid must still reproduce the one-shot accumulator bit for bit
    /// (sorted `(key, to_bits)` comparison), labels included.
    #[test]
    fn k_shard_disk_round_trips_merge_to_the_one_shot_grid(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..200),
        raw_cuts in prop::collection::vec(0usize..200, 0..5),
        threads in 1usize..5,
    ) {
        let points = matrix(&coords);
        let config = AdaWaveConfig::builder().scale(16).threads(threads).build();
        let domain = BoundingBox::from_points(points.view()).unwrap();

        let mut whole = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        whole.ingest(points.view()).unwrap();

        // Each shard of a random row partition ingests its slice, writes
        // its accumulator to disk, and the coordinator merges the files in
        // shard order.
        let path = temp_path("kshard");
        let mut merged: Option<StreamingAdaWave> = None;
        for (lo, hi) in partition(points.len(), &raw_cuts) {
            let mut shard = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
            shard.ingest(rows(&points, lo, hi)).unwrap();
            save_accumulator(&path, &shard).unwrap();
            let loaded = load_accumulator(&path).unwrap();
            match merged.as_mut() {
                None => merged = Some(loaded),
                Some(m) => m.merge(loaded).unwrap(),
            }
        }
        std::fs::remove_file(&path).ok();

        let merged = merged.unwrap();
        prop_assert_eq!(merged.points_ingested(), points.len());
        prop_assert_eq!(grid_bits(merged.grid().unwrap()), grid_bits(whole.grid().unwrap()));
        prop_assert_eq!(merged.refit().unwrap(), whole.refit().unwrap());
    }

    /// Kill-and-resume: checkpoint during ingestion, drop the live session
    /// at a random row ("crash"), restore the last checkpoint, skip the
    /// rows it already holds, and finish. The result must be bit-identical
    /// to the uninterrupted stream.
    #[test]
    fn resume_from_checkpoint_reproduces_the_uninterrupted_stream(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..150),
        batch_rows in 1usize..40,
        every in 1usize..60,
        kill_after in 1usize..150,
    ) {
        let points = matrix(&coords);
        let config = AdaWaveConfig::builder().scale(16).build();
        let domain = BoundingBox::from_points(points.view()).unwrap();

        let mut reference = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        reference.ingest(points.view()).unwrap();

        let path = temp_path("resume");
        let mut stream = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        let mut checkpointer = Checkpointer::new(&path, every);
        checkpointer.flush(&stream).unwrap(); // checkpoint 0: empty session
        let kill_after = kill_after.min(points.len());
        for lo in (0..kill_after).step_by(batch_rows) {
            let hi = (lo + batch_rows).min(kill_after);
            let report = stream.ingest(rows(&points, lo, hi)).unwrap();
            checkpointer.observe(&stream, report.points).unwrap();
        }
        drop(stream); // the crash: live state gone, only the file survives

        let mut resumed = load_accumulator(&path).unwrap();
        let skip = resumed.points_ingested();
        prop_assert!(skip <= kill_after);
        if skip < points.len() {
            resumed.ingest(rows(&points, skip, points.len())).unwrap();
        }
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(resumed.points_ingested(), points.len());
        prop_assert_eq!(grid_bits(resumed.grid().unwrap()), grid_bits(reference.grid().unwrap()));
        prop_assert_eq!(resumed.refit().unwrap(), reference.refit().unwrap());
    }
}
