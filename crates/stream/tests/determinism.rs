//! The streaming determinism contract: batched ingestion — in any batch
//! partition, any batch order, on any thread count — reproduces the
//! one-shot [`AdaWave::fit`] exactly when the frozen domain matches the
//! bounding box of the concatenated data.

use adawave_api::{PointMatrix, PointsView};
use adawave_core::{AdaWave, AdaWaveConfig};
use adawave_data::{shapes, Rng};
use adawave_grid::BoundingBox;
use adawave_stream::StreamingAdaWave;
use adawave_wavelet::Wavelet;

/// Two blobs plus uniform noise — the paper's running-example shape, sized
/// for a fast debug-mode suite.
fn workload(seed: u64) -> PointMatrix {
    let mut rng = Rng::new(seed);
    let mut points = PointMatrix::new(2);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.3], &[0.03, 0.03], 400);
    shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.7], &[0.03, 0.03], 400);
    shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 400);
    points
}

/// View of rows `lo..hi` of a matrix (contiguous in the flat layout).
fn rows<'a>(points: &'a PointMatrix, lo: usize, hi: usize) -> PointsView<'a> {
    let dims = points.dims();
    PointsView::from_flat(&points.as_slice()[lo * dims..hi * dims], dims).unwrap()
}

fn stream_in_batches(
    config: &AdaWaveConfig,
    points: &PointMatrix,
    batch_rows: usize,
) -> StreamingAdaWave {
    let domain = BoundingBox::from_points(points.view()).unwrap();
    let mut stream = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
    let mut lo = 0;
    while lo < points.len() {
        let hi = (lo + batch_rows).min(points.len());
        stream.ingest(rows(points, lo, hi)).unwrap();
        lo = hi;
    }
    stream
}

#[test]
fn any_batch_size_is_bit_identical_to_one_shot_fit() {
    let points = workload(3);
    let config = AdaWaveConfig::builder().scale(64).build();
    let one_shot = AdaWave::new(config.clone()).fit(points.view()).unwrap();
    assert!(one_shot.cluster_count() >= 2, "workload is degenerate");
    for batch_rows in [1, 7, 97, 400, points.len()] {
        let stream = stream_in_batches(&config, &points, batch_rows);
        assert_eq!(stream.points_ingested(), points.len());
        assert_eq!(stream.outlier_count(), 0, "domain covers every point");
        // Full structural equality: labels, cluster count, stats and the
        // sorted density curve (counts and CDF(2,2) taps are exact in f64,
        // so this is bitwise).
        let refit = stream.refit().unwrap();
        assert_eq!(refit, one_shot, "batch_rows = {batch_rows}");
    }
}

#[test]
fn first_batch_domain_adoption_matches_fit_when_the_first_batch_spans_it() {
    // Without an upfront domain the first batch freezes it; feeding the
    // whole set as the first batch is then exactly the one-shot setting.
    let points = workload(5);
    let config = AdaWaveConfig::builder().scale(32).build();
    let mut stream = StreamingAdaWave::new(config.clone());
    stream.ingest(points.view()).unwrap();
    assert_eq!(
        stream.refit().unwrap(),
        AdaWave::new(config).fit(points.view()).unwrap()
    );
}

#[test]
fn batch_order_does_not_change_the_accumulated_grid() {
    let points = workload(7);
    let config = AdaWaveConfig::builder().scale(32).build();
    let domain = BoundingBox::from_points(points.view()).unwrap();
    let forward = stream_in_batches(&config, &points, 100);

    let mut backward = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
    let mut cuts: Vec<usize> = (0..points.len()).step_by(100).collect();
    cuts.push(points.len());
    for pair in cuts.windows(2).rev() {
        backward.ingest(rows(&points, pair[0], pair[1])).unwrap();
    }
    // The grid is an order-insensitive sufficient statistic...
    assert_eq!(forward.grid(), backward.grid());
    // ...so the *model* agrees too; only the per-point order differs, and
    // it differs exactly by the batch permutation.
    let fw = forward.refit().unwrap();
    let bw = backward.refit().unwrap();
    assert_eq!(fw.cluster_count(), bw.cluster_count());
    assert_eq!(fw.stats(), bw.stats());
    let mut permuted: Vec<Option<usize>> = Vec::with_capacity(points.len());
    for pair in cuts.windows(2).rev() {
        permuted.extend_from_slice(&fw.assignment()[pair[0]..pair[1]]);
    }
    assert_eq!(bw.assignment(), &permuted[..]);
}

#[test]
fn thread_counts_produce_identical_accumulators_and_labels() {
    let points = workload(9);
    let reference = stream_in_batches(
        &AdaWaveConfig::builder().scale(32).threads(1).build(),
        &points,
        50,
    );
    let reference_result = reference.refit().unwrap();
    for threads in [2, 4, 8] {
        let config = AdaWaveConfig::builder().scale(32).threads(threads).build();
        let stream = stream_in_batches(&config, &points, 50);
        assert_eq!(stream.grid(), reference.grid(), "threads = {threads}");
        assert_eq!(
            stream.refit().unwrap(),
            reference_result,
            "threads = {threads}"
        );
    }
}

#[test]
fn batches_beyond_the_shard_size_drive_the_parallel_ingest_path() {
    // `ingest` only fans out when a batch exceeds its fixed 8192-row shard
    // size AND the runtime is parallel; feed 20k-row batches so the
    // `par_chunks` branch actually runs, and pin it against the sequential
    // path and the one-shot fit.
    let mut points = PointMatrix::new(2);
    let mut state = 7u64;
    for _ in 0..25_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = (state >> 33) as f64 / (1u64 << 31) as f64;
        let y = (state >> 20 & 0x1fff) as f64 / 8192.0;
        points.push_row(&[x, y]);
    }
    let sequential = stream_in_batches(
        &AdaWaveConfig::builder().scale(32).threads(1).build(),
        &points,
        20_000,
    );
    let reference = sequential.refit().unwrap();
    for threads in [2, 4] {
        let config = AdaWaveConfig::builder().scale(32).threads(threads).build();
        let parallel = stream_in_batches(&config, &points, 20_000);
        assert_eq!(parallel.grid(), sequential.grid(), "threads = {threads}");
        assert_eq!(parallel.refit().unwrap(), reference, "threads = {threads}");
        assert_eq!(
            parallel.refit().unwrap(),
            AdaWave::new(config).fit(points.view()).unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn merged_shards_match_a_single_session_and_one_shot_fit() {
    // Two workers each ingest half of the data against the same frozen
    // domain; merging their accumulators reproduces the single session.
    let points = workload(11);
    let config = AdaWaveConfig::builder().scale(64).build();
    let domain = BoundingBox::from_points(points.view()).unwrap();
    let half = points.len() / 2;

    let mut left = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
    left.ingest(rows(&points, 0, half)).unwrap();
    let mut right = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
    right.ingest(rows(&points, half, points.len())).unwrap();

    left.merge(right).unwrap();
    assert_eq!(left.points_ingested(), points.len());
    assert_eq!(
        left.refit().unwrap(),
        AdaWave::new(config).fit(points.view()).unwrap()
    );
}

#[test]
fn refit_agrees_with_fit_across_configurations() {
    // The shared cluster_grid stage must keep streaming and batch in lock
    // step for non-default levels (including the honest level 0) and for
    // other wavelets — including db2, whose irrational taps make the
    // transform's summation order observable: the sorted-key scatter in
    // `sparse_lowpass_dimension` is what keeps the freshly quantized and
    // the stream-accumulated grids (different hash maps, same content)
    // bit-identical through the pipeline.
    let points = workload(13);
    for config in [
        AdaWaveConfig::builder().scale(32).levels(0).build(),
        AdaWaveConfig::builder().scale(64).levels(2).build(),
        AdaWaveConfig::builder()
            .scale(32)
            .wavelet(Wavelet::Haar)
            .build(),
        AdaWaveConfig::builder()
            .scale(32)
            .wavelet(Wavelet::Daubechies2)
            .build(),
    ] {
        let stream = stream_in_batches(&config, &points, 123);
        assert_eq!(
            stream.refit().unwrap(),
            AdaWave::new(config).fit(points.view()).unwrap()
        );
    }
}

#[test]
fn refit_is_idempotent_and_incremental_between_batches() {
    let points = workload(15);
    let config = AdaWaveConfig::builder().scale(32).build();
    let domain = BoundingBox::from_points(points.view()).unwrap();
    let mut stream = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();

    // Refit is callable after every batch (the streaming point of it all)
    // and twice in a row without changing the answer.
    let mut lo = 0;
    while lo < points.len() {
        let hi = (lo + 300).min(points.len());
        stream.ingest(rows(&points, lo, hi)).unwrap();
        let a = stream.refit().unwrap();
        let b = stream.refit().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), hi);
        lo = hi;
    }
    assert_eq!(
        stream.refit().unwrap(),
        AdaWave::new(config).fit(points.view()).unwrap()
    );
}
