//! # adawave-stream
//!
//! Streaming & mergeable ingestion for AdaWave.
//!
//! The paper's complexity argument (§IV: `O(nm)` total, with the `O(n)`
//! pass confined to quantization and everything downstream `O(m)` in
//! occupied cells) makes AdaWave naturally incremental: the sparse grid is
//! an **additive, order-insensitive sufficient statistic** of the data.
//! [`StreamingAdaWave`] exploits that:
//!
//! * [`ingest`](StreamingAdaWave::ingest) quantizes one batch at a time
//!   into a retained [`SparseGrid`] (plus one cell key per point), fanning
//!   the per-batch pass out over the configured
//!   [`Runtime`](adawave_runtime::Runtime) in fixed row shards;
//! * [`merge`](StreamingAdaWave::merge) combines the accumulators of two
//!   independently-fed sessions (e.g. shards of a partitioned data set);
//! * [`refit_model`](StreamingAdaWave::refit_model) re-runs the
//!   transform → threshold → components stage on the accumulated grid in
//!   `O(m)` — **independent of the number of points ingested** — and
//!   [`refit`](StreamingAdaWave::refit) additionally maps every retained
//!   point through the model (an unavoidable `O(points)` table walk);
//! * [`snapshot`](StreamingAdaWave::snapshot) /
//!   [`restore`](StreamingAdaWave::restore) (see [`persist`]) serialize
//!   the whole mergeable state bit-exactly to the versioned
//!   `adawave-accumulator` artifact format, so shards in *separate
//!   processes* write their accumulators to disk and a coordinator merges
//!   the files; [`Checkpointer`] rewrites the file atomically every N
//!   ingested rows for kill-and-resume crash tolerance.
//!
//! ## The domain-freeze contract
//!
//! One-shot [`AdaWave::fit`] derives the quantization domain from the data
//! it is handed. A stream cannot: later batches would shift the grid and
//! invalidate every accumulated count. The domain is therefore **frozen**
//! — either given upfront ([`StreamingAdaWave::with_domain`]) or adopted
//! from the finite rows of the first batch — and points that fall outside
//! it, as well as points with non-finite coordinates anywhere in the
//! stream, are **counted as outliers** rather than silently clamped into
//! boundary cells: they get the noise label and show up in
//! [`outlier_count`](StreamingAdaWave::outlier_count).
//!
//! When the frozen domain equals the bounding box of everything ingested
//! (e.g. a prescan computed it, or the first batch spans it), batched
//! ingestion in **any batch partition** reproduces the one-shot grid
//! exactly — counts are small integers, so the merge is bit-identical —
//! and [`refit`](StreamingAdaWave::refit) returns the same labels as
//! [`AdaWave::fit`] on the concatenated points.
//!
//! ```
//! use adawave_api::PointMatrix;
//! use adawave_core::{AdaWave, AdaWaveConfig};
//! use adawave_grid::BoundingBox;
//! use adawave_stream::StreamingAdaWave;
//!
//! // Two diagonal streaks; points arrive in two batches.
//! let mut all = PointMatrix::new(2);
//! for i in 0..200 {
//!     let t = i as f64 * 0.0004;
//!     all.push_row(&[0.2 + t, 0.2 - t]);
//!     all.push_row(&[0.8 - t, 0.8 + t]);
//! }
//!
//! let config = AdaWaveConfig::builder().scale(32).build();
//! let domain = BoundingBox::from_points(all.view()).unwrap();
//! let mut stream = StreamingAdaWave::with_domain(config.clone(), domain).unwrap();
//! let half = all.len() / 2;
//! for batch in [all.view().select(&(0..half).collect::<Vec<_>>()),
//!               all.view().select(&(half..all.len()).collect::<Vec<_>>())] {
//!     stream.ingest(batch.view()).unwrap();
//! }
//!
//! // Refit after streaming == one-shot fit on the concatenated points.
//! let streamed = stream.refit().unwrap();
//! let one_shot = AdaWave::new(config).fit(all.view()).unwrap();
//! assert_eq!(streamed, one_shot);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use adawave_api::{compact_remap, FitOutcome, PointsView, Precision};
use adawave_core::{
    cluster_grid, AdaWave, AdaWaveConfig, AdaWaveError, AdaWaveModel, AdaWaveResult, GridModel,
};
use adawave_grid::{BoundingBox, F32Lane, Quantizer, SparseGrid};

pub mod persist;

pub use persist::{load_accumulator, save_accumulator, save_accumulator_atomic, Checkpointer};

/// Rows per parallel ingestion shard. Fixed (never derived from the thread
/// count) so shard boundaries — and therefore the merged accumulator — are
/// identical for every [`Runtime`](adawave_runtime::Runtime), matching the
/// workspace-wide fixed-chunk determinism contract.
const INGEST_CHUNK_ROWS: usize = 8_192;

/// Errors produced by the streaming layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A batch is unusable (zero-dimensional, or no domain frozen yet at
    /// refit time).
    InvalidInput {
        /// Human-readable description.
        context: String,
    },
    /// Two accumulators (or a batch and the frozen domain) disagree on the
    /// quantized space and cannot be combined.
    DomainMismatch {
        /// Human-readable description.
        context: String,
    },
    /// The underlying AdaWave pipeline failed.
    Core(AdaWaveError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidInput { context } => write!(f, "invalid input: {context}"),
            StreamError::DomainMismatch { context } => write!(f, "domain mismatch: {context}"),
            StreamError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<AdaWaveError> for StreamError {
    fn from(e: AdaWaveError) -> Self {
        StreamError::Core(e)
    }
}

impl From<adawave_grid::GridError> for StreamError {
    fn from(e: adawave_grid::GridError) -> Self {
        StreamError::Core(AdaWaveError::Grid(e))
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, StreamError>;

/// A rejected [`merge`](StreamingAdaWave::merge): the error plus the
/// right-hand session, handed back **untouched** so its accumulated state
/// (which may summarize an unreplayable stream) is never lost to a failed
/// combine.
#[derive(Debug)]
pub struct MergeRejected {
    /// Why the sessions cannot be combined.
    pub error: StreamError,
    /// The right-hand session, exactly as it was passed in.
    pub other: StreamingAdaWave,
}

impl std::fmt::Display for MergeRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for MergeRejected {}

/// What one [`ingest`](StreamingAdaWave::ingest) call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Points in the batch.
    pub points: usize,
    /// Points of the batch that fell outside the frozen domain (or had
    /// non-finite coordinates) and were recorded as outliers.
    pub outliers: usize,
}

/// The frozen quantized space plus the grid accumulated in it.
#[derive(Debug, Clone)]
struct Frozen {
    quantizer: Quantizer,
    grid: SparseGrid,
}

/// An incremental AdaWave session: ingest point batches into an additive
/// sparse-grid accumulator, merge accumulators from independent shards,
/// and refit the cluster model in `O(m)` whenever fresh labels are needed.
///
/// See the [crate-level docs](crate) for the domain-freeze contract and a
/// complete example.
#[derive(Debug, Clone)]
pub struct StreamingAdaWave {
    adawave: AdaWave,
    /// The frozen domain and its accumulated grid; `None` until a domain
    /// exists (given upfront or adopted from the first finite points).
    frozen: Option<Frozen>,
    /// For every ingested point (in arrival order) the key of its grid
    /// cell, or `None` for outliers — the streaming counterpart of the
    /// paper's lookup table.
    point_cells: Vec<Option<u128>>,
    outliers: usize,
    /// Dimensionality fixed by the domain or the first non-empty batch.
    dims: Option<usize>,
}

impl StreamingAdaWave {
    /// Create a session that adopts its domain from the first ingested
    /// batch: the bounding box of that batch's *finite* rows is frozen
    /// (non-finite rows are outliers wherever they appear, so the adopted
    /// domain does not depend on how the points were batched), and later
    /// points outside it are counted as outliers.
    pub fn new(config: AdaWaveConfig) -> Self {
        Self {
            adawave: AdaWave::new(config),
            frozen: None,
            point_cells: Vec::new(),
            outliers: 0,
            dims: None,
        }
    }

    /// Create a session with the domain frozen upfront. Use this when the
    /// domain is known (sensor ranges, normalized features) or computed by
    /// a prescan — it makes [`refit`](Self::refit) reproduce
    /// [`AdaWave::fit`] on the concatenated data exactly.
    pub fn with_domain(config: AdaWaveConfig, domain: BoundingBox) -> Result<Self> {
        let adawave = AdaWave::new(config);
        let quantizer = adawave.quantizer_for(&domain)?;
        Ok(Self {
            adawave,
            dims: Some(quantizer.dims()),
            frozen: Some(Frozen {
                quantizer,
                grid: SparseGrid::new(),
            }),
            point_cells: Vec::new(),
            outliers: 0,
        })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &AdaWaveConfig {
        self.adawave.config()
    }

    /// The frozen domain, once one exists.
    pub fn domain(&self) -> Option<&BoundingBox> {
        self.frozen.as_ref().map(|f| f.quantizer.bounds())
    }

    /// Number of points ingested so far (outliers included).
    pub fn points_ingested(&self) -> usize {
        self.point_cells.len()
    }

    /// Number of ingested points recorded as outliers (outside the frozen
    /// domain, or non-finite).
    pub fn outlier_count(&self) -> usize {
        self.outliers
    }

    /// Occupied cells of the accumulated grid — the `m` that governs the
    /// [`refit_model`](Self::refit_model) cost.
    pub fn occupied_cells(&self) -> usize {
        self.frozen.as_ref().map_or(0, |f| f.grid.occupied_cells())
    }

    /// Borrow the accumulated sparse grid (per-cell in-domain point
    /// counts), once a domain is frozen.
    pub fn grid(&self) -> Option<&SparseGrid> {
        self.frozen.as_ref().map(|f| &f.grid)
    }

    /// Quantize a batch into the accumulator (Algorithm 2, incrementally).
    ///
    /// The first batch with finite rows freezes the domain if none was
    /// given. The batch is split into fixed row shards quantized in
    /// parallel on the configured runtime and merged in shard order, so
    /// the accumulator is identical for every thread count and every way
    /// of partitioning the same points into batches. Points outside the
    /// frozen domain — and non-finite points wherever they appear — are
    /// recorded as outliers (labelled noise by [`refit`](Self::refit)),
    /// never clamped.
    ///
    /// ```
    /// use adawave_api::PointMatrix;
    /// use adawave_core::AdaWaveConfig;
    /// use adawave_stream::StreamingAdaWave;
    ///
    /// let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
    /// let first = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
    /// stream.ingest(first.view()).unwrap();           // freezes [0,1] x [0,1]
    /// let late = PointMatrix::from_rows(vec![vec![0.5, 0.5], vec![2.0, 2.0]]).unwrap();
    /// let report = stream.ingest(late.view()).unwrap();
    /// assert_eq!(report.outliers, 1);                  // (2, 2) is out of domain
    /// assert_eq!(stream.points_ingested(), 4);
    /// ```
    pub fn ingest(&mut self, batch: PointsView<'_>) -> Result<IngestReport> {
        if batch.is_empty() {
            return Ok(IngestReport {
                points: 0,
                outliers: 0,
            });
        }
        let dims = batch.dims();
        if dims == 0 {
            return Err(StreamError::InvalidInput {
                context: "points have zero dimensions".to_string(),
            });
        }
        match self.dims {
            Some(expected) if expected != dims => {
                return Err(StreamError::DomainMismatch {
                    context: format!("batch has {dims} dimensions but the session has {expected}"),
                });
            }
            _ => self.dims = Some(dims),
        }
        if self.frozen.is_none() {
            match finite_bounds(batch) {
                Some(domain) => {
                    let quantizer = self.adawave.quantizer_for(&domain)?;
                    self.frozen = Some(Frozen {
                        quantizer,
                        grid: SparseGrid::new(),
                    });
                }
                None => {
                    // No finite row to adopt a domain from: every point of
                    // this batch is an outlier, and the next batch with
                    // finite rows will freeze the domain — the same outcome
                    // as if these rows had arrived in any later batch.
                    self.point_cells
                        .extend(std::iter::repeat_n(None, batch.len()));
                    self.outliers += batch.len();
                    return Ok(IngestReport {
                        points: batch.len(),
                        outliers: batch.len(),
                    });
                }
            }
        }
        let frozen = self.frozen.as_mut().expect("frozen above");

        let runtime = self.adawave.config().runtime;
        let quantizer = &frozen.quantizer;
        // The configured numeric lane applies to streaming ingestion too:
        // the f32 lane state is built once per batch, never per point.
        let lane = match self.adawave.config().precision {
            Precision::F64 => None,
            Precision::F32 => Some(quantizer.f32_lane()),
        };
        let lane = lane.as_ref();
        let shards: Vec<(SparseGrid, Vec<Option<u128>>, usize)> =
            if runtime.is_sequential() || batch.len() <= INGEST_CHUNK_ROWS {
                vec![ingest_shard(quantizer, lane, batch.as_slice(), dims)]
            } else {
                runtime.par_chunks(batch.as_slice(), INGEST_CHUNK_ROWS * dims, |_, coords| {
                    ingest_shard(quantizer, lane, coords, dims)
                })
            };

        let mut outliers = 0;
        for (shard_grid, cells, shard_outliers) in shards {
            frozen.grid.merge(&shard_grid);
            self.point_cells.extend_from_slice(&cells);
            outliers += shard_outliers;
        }
        self.outliers += outliers;
        Ok(IngestReport {
            points: batch.len(),
            outliers,
        })
    }

    /// Combine another session's accumulator into this one (shard merge).
    ///
    /// Both sessions must share the model configuration (the worker-pool
    /// `runtime` may differ — it never affects results) and must have
    /// frozen the *same* quantized space (equal domain and interval
    /// counts); an empty `other` is a no-op and an un-frozen `self`
    /// simply adopts `other`'s accumulator. The merged
    /// grid is exactly the grid of the concatenated ingests — the sparse
    /// grid is an additive sufficient statistic — and `other`'s points are
    /// appended after this session's in labeling order.
    ///
    /// On rejection the returned [`MergeRejected`] carries `other` back
    /// untouched, so an incompatible session's accumulated state (possibly
    /// the only record of an unreplayable stream) is never dropped.
    pub fn merge(
        &mut self,
        other: StreamingAdaWave,
    ) -> std::result::Result<(), Box<MergeRejected>> {
        // Validate before touching anything, so a rejected merge can hand
        // `other` back untouched instead of dropping its accumulator.
        let reject = |error: StreamError, other: StreamingAdaWave| {
            Err(Box::new(MergeRejected { error, other }))
        };
        if let (Some(a), Some(b)) = (self.dims, other.dims) {
            if a != b {
                return reject(
                    StreamError::DomainMismatch {
                        context: format!("the sessions hold {a}- and {b}-dimensional points"),
                    },
                    other,
                );
            }
        }
        // The merged accumulator is refit with `self`'s configuration, so
        // the sessions must agree on the model knobs (wavelet, levels,
        // threshold, ...) — otherwise `other`'s parameters would be
        // silently discarded. Only the worker pool may differ: shards
        // legitimately run with different thread counts, and the runtime
        // never affects results (the fixed-chunk contract).
        let mut theirs_config = other.config().clone();
        theirs_config.runtime = self.adawave.config().runtime;
        if *self.adawave.config() != theirs_config {
            return reject(
                StreamError::DomainMismatch {
                    context: "the sessions use different model configurations".to_string(),
                },
                other,
            );
        }
        if let (Some(mine), Some(theirs)) = (&self.frozen, &other.frozen) {
            if mine.quantizer != theirs.quantizer {
                return reject(
                    StreamError::DomainMismatch {
                        context: "the sessions froze different domains or scales".to_string(),
                    },
                    other,
                );
            }
        }
        match (&mut self.frozen, other.frozen) {
            (Some(mine), Some(theirs)) => mine.grid.merge(&theirs.grid),
            (None, Some(theirs)) => self.frozen = Some(theirs),
            (_, None) => {}
        }
        self.point_cells.extend(other.point_cells);
        self.outliers += other.outliers;
        self.dims = self.dims.or(other.dims);
        Ok(())
    }

    /// Refit the grid-level cluster model on the accumulated grid:
    /// transform → threshold → connected components, in `O(m)` for `m`
    /// occupied cells — the cost does **not** grow with the number of
    /// points ingested. Errors if no domain has been frozen yet.
    pub fn refit_model(&self) -> Result<GridModel> {
        let frozen = self
            .frozen
            .as_ref()
            .ok_or_else(|| StreamError::InvalidInput {
                context: "no domain frozen yet (ingest finite points or use with_domain)"
                    .to_string(),
            })?;
        Ok(cluster_grid(
            &frozen.grid,
            frozen.quantizer.codec(),
            self.adawave.config(),
        )?)
    }

    /// [`refit_model`](Self::refit_model) plus the per-point labeling pass:
    /// every retained point is mapped through the model's lookup (outliers
    /// become noise), yielding the same [`AdaWaveResult`] that
    /// [`AdaWave::fit`] would return on the concatenated points over the
    /// same domain. The cell → cluster map is materialized once over the
    /// `m` occupied cells, so the per-point walk is one hash lookup each —
    /// `O(n)`, but the cheap part of refitting.
    pub fn refit(&self) -> Result<AdaWaveResult> {
        let model = self.refit_model()?;
        let assignment = self.assignment_under(&model);
        Ok(model.into_result(assignment))
    }

    /// [`refit`](Self::refit) packaged as the two-stage contract: the
    /// canonical clustering of every ingested point plus a boxed serving
    /// [`AdaWaveModel`] built from the same grid refit — train on the
    /// stream, serve out-of-sample points forever after. The model
    /// inherits the session's outlier contract (out-of-domain and
    /// non-finite points predict noise), so re-predicting an ingested
    /// point always reproduces its refit label — outliers included.
    pub fn refit_outcome(&self) -> Result<FitOutcome> {
        let grid_model = self.refit_model()?;
        let frozen = self.frozen.as_ref().expect("checked by refit_model");
        let assignment = self.assignment_under(&grid_model);
        let remap = compact_remap(
            assignment.iter().filter_map(|a| *a),
            grid_model.cluster_count(),
        );
        let serving = AdaWaveModel::from_parts(
            frozen.quantizer.clone(),
            &grid_model,
            &remap,
            self.adawave.config().precision,
        );
        Ok(FitOutcome {
            clustering: grid_model.into_result(assignment).to_clustering(),
            model: Box::new(serving),
        })
    }

    /// Map every retained point through a refit grid model: the cell →
    /// cluster table is materialized once over the `m` occupied cells, so
    /// the per-point walk is one hash lookup each.
    fn assignment_under(&self, model: &GridModel) -> Vec<Option<usize>> {
        let frozen = self.frozen.as_ref().expect("caller refit the model");
        let codec = frozen.quantizer.codec();
        let cell_cluster: std::collections::HashMap<u128, Option<usize>> = frozen
            .grid
            .keys()
            .map(|key| (key, model.cluster_of_cell(codec, key)))
            .collect();
        self.point_cells
            .iter()
            .map(|cell| cell.and_then(|key| cell_cluster.get(&key).copied().flatten()))
            .collect()
    }
}

/// Bounding box of the finite rows of a batch; `None` when every row has
/// a non-finite coordinate (or the batch is empty).
///
/// This is the rule [`StreamingAdaWave`] uses to adopt a domain from the
/// first batch; a prescan that wants its frozen domain to follow the same
/// outlier semantics (non-finite rows excluded rather than fatal) should
/// union these per-batch boxes with [`BoundingBox::union`].
pub fn finite_bounds(batch: PointsView<'_>) -> Option<BoundingBox> {
    let dims = batch.dims();
    let mut min = vec![f64::INFINITY; dims];
    let mut max = vec![f64::NEG_INFINITY; dims];
    let mut any_finite = false;
    for row in batch.rows() {
        if row.iter().all(|v| v.is_finite()) {
            any_finite = true;
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
    }
    any_finite.then(|| BoundingBox::from_bounds(min, max))
}

/// Quantize one shard of rows: per-shard grid, per-point cell keys
/// (`None` = out of domain) and the outlier count. `lane` selects the
/// numeric lane: `None` is the bit-exact f64 path, `Some` the opt-in f32
/// path (the membership test stays in f64 either way, so the outlier
/// contract is lane-independent).
fn ingest_shard(
    quantizer: &Quantizer,
    lane: Option<&F32Lane>,
    coords: &[f64],
    dims: usize,
) -> (SparseGrid, Vec<Option<u128>>, usize) {
    let rows = coords.len() / dims;
    let mut grid = SparseGrid::with_capacity(rows.min(1 << 12));
    let mut cells = Vec::with_capacity(rows);
    let mut outliers = 0;
    for p in coords.chunks_exact(dims) {
        if quantizer.bounds().contains(p) {
            let key = match lane {
                None => quantizer.cell_key(p),
                Some(lane) => quantizer.cell_key_f32(lane, p),
            };
            grid.increment(key);
            cells.push(Some(key));
        } else {
            outliers += 1;
            cells.push(None);
        }
    }
    (grid, cells, outliers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;

    fn grid_points() -> PointMatrix {
        let mut points = PointMatrix::new(2);
        for i in 0..40 {
            let t = i as f64 / 40.0;
            points.push_row(&[t, t * 0.5]);
        }
        points
    }

    #[test]
    fn empty_batch_is_a_noop_and_refit_without_domain_errors() {
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
        let report = stream.ingest(PointMatrix::new(2).view()).unwrap();
        assert_eq!(
            report,
            IngestReport {
                points: 0,
                outliers: 0
            }
        );
        assert_eq!(stream.domain(), None);
        assert!(matches!(
            stream.refit(),
            Err(StreamError::InvalidInput { .. })
        ));
        assert_eq!(stream.points_ingested(), 0);
        assert_eq!(stream.occupied_cells(), 0);
    }

    #[test]
    fn zero_dimensional_batch_is_rejected() {
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
        let zero_dim = PointMatrix::from_rows(vec![vec![]]).unwrap();
        assert!(matches!(
            stream.ingest(zero_dim.view()),
            Err(StreamError::InvalidInput { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_after_freeze_is_rejected() {
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
        stream.ingest(grid_points().view()).unwrap();
        let three_d = PointMatrix::from_rows(vec![vec![0.1, 0.2, 0.3]]).unwrap();
        assert!(matches!(
            stream.ingest(three_d.view()),
            Err(StreamError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn first_batch_freezes_the_domain_and_later_outliers_are_counted() {
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::builder().scale(8).build());
        let first = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        stream.ingest(first.view()).unwrap();
        let domain = stream.domain().unwrap().clone();
        assert_eq!(domain.min(), &[0.0, 0.0]);
        assert_eq!(domain.max(), &[1.0, 1.0]);

        // In-domain, boundary, out-of-domain and non-finite points.
        let second = PointMatrix::from_rows(vec![
            vec![0.5, 0.5],
            vec![1.0, 0.0],      // on the closed boundary: in-domain
            vec![-0.1, 0.5],     // outside
            vec![f64::NAN, 0.5], // non-finite: outlier, not an error
        ])
        .unwrap();
        let report = stream.ingest(second.view()).unwrap();
        assert_eq!(
            report,
            IngestReport {
                points: 4,
                outliers: 2
            }
        );
        assert_eq!(stream.outlier_count(), 2);
        // The domain did not move.
        assert_eq!(stream.domain().unwrap(), &domain);
        // Outliers are labelled noise by refit, in arrival order.
        let result = stream.refit().unwrap();
        assert_eq!(result.len(), 6);
        assert_eq!(result.label(4), None);
        assert_eq!(result.label(5), None);
    }

    #[test]
    fn merge_into_empty_adopts_and_mismatched_domains_are_rejected() {
        let config = AdaWaveConfig::builder().scale(16).build();
        let mut fed = StreamingAdaWave::new(config.clone());
        fed.ingest(grid_points().view()).unwrap();
        let cells = fed.occupied_cells();

        // Empty `other` is a no-op.
        fed.merge(StreamingAdaWave::new(config.clone())).unwrap();
        assert_eq!(fed.occupied_cells(), cells);

        // An un-frozen self adopts the other's accumulator.
        let mut empty = StreamingAdaWave::new(config.clone());
        empty.merge(fed.clone()).unwrap();
        assert_eq!(empty.occupied_cells(), cells);
        assert_eq!(empty.points_ingested(), fed.points_ingested());

        // Different frozen domains cannot be combined — and the rejected
        // session comes back untouched instead of being dropped.
        let other_domain = BoundingBox::from_bounds(vec![5.0, 5.0], vec![9.0, 9.0]);
        let mut other = StreamingAdaWave::with_domain(config, other_domain.clone()).unwrap();
        let far = PointMatrix::from_rows(vec![vec![6.0, 6.0], vec![8.0, 7.0]]).unwrap();
        other.ingest(far.view()).unwrap();
        let rejected = empty.merge(other).unwrap_err();
        assert!(matches!(rejected.error, StreamError::DomainMismatch { .. }));
        let other = rejected.other;
        assert_eq!(other.points_ingested(), 2);
        assert_eq!(other.domain(), Some(&other_domain));
        assert_eq!(empty.points_ingested(), fed.points_ingested());
    }

    #[test]
    fn merge_rejects_differing_model_configs_but_tolerates_runtimes() {
        let domain = BoundingBox::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let base = AdaWaveConfig::builder().scale(16);
        let mut left =
            StreamingAdaWave::with_domain(base.clone().threads(1).build(), domain.clone()).unwrap();
        // Different thread counts are fine: the runtime never affects
        // results, and shard workers legitimately size their own pools.
        let right =
            StreamingAdaWave::with_domain(base.clone().threads(4).build(), domain.clone()).unwrap();
        left.merge(right).unwrap();
        // A different model knob (levels here) would be silently discarded
        // by refit, so it is rejected — with the session handed back.
        let mut other =
            StreamingAdaWave::with_domain(base.levels(2).build(), domain.clone()).unwrap();
        other.ingest(grid_points().view()).unwrap();
        let rejected = left.merge(other).unwrap_err();
        assert!(matches!(rejected.error, StreamError::DomainMismatch { .. }));
        assert_eq!(rejected.other.points_ingested(), 40);
    }

    #[test]
    fn with_domain_and_zero_points_refits_to_an_empty_result() {
        let domain = BoundingBox::from_bounds(vec![0.0], vec![1.0]);
        let stream = StreamingAdaWave::with_domain(AdaWaveConfig::default(), domain).unwrap();
        let result = stream.refit().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.cluster_count(), 0);
    }

    #[test]
    fn auto_scale_reduction_applies_to_frozen_domains_too() {
        // 20 dimensions at the default scale 128 would need 140 key bits;
        // the streaming session must auto-reduce exactly like fit().
        let domain = BoundingBox::from_bounds(vec![0.0; 20], vec![1.0; 20]);
        let stream = StreamingAdaWave::with_domain(AdaWaveConfig::default(), domain).unwrap();
        let frozen = stream.frozen.as_ref().unwrap();
        assert!(frozen.quantizer.codec().intervals(0) < 128);
    }

    #[test]
    fn non_finite_rows_in_the_first_batch_are_outliers_not_errors() {
        // The domain is adopted from the *finite* rows of the first batch,
        // so the outcome does not depend on which batch a NaN lands in.
        let mut together = StreamingAdaWave::new(AdaWaveConfig::builder().scale(8).build());
        let batch =
            PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![f64::NAN, 0.5], vec![1.0, 1.0]])
                .unwrap();
        let report = together.ingest(batch.view()).unwrap();
        assert_eq!(
            report,
            IngestReport {
                points: 3,
                outliers: 1
            }
        );
        assert_eq!(together.domain().unwrap().max(), &[1.0, 1.0]);

        // Same rows split so the NaN arrives alone and first: an all-
        // non-finite first batch defers the freeze instead of erroring.
        let mut split = StreamingAdaWave::new(AdaWaveConfig::builder().scale(8).build());
        let nan_only = PointMatrix::from_rows(vec![vec![f64::NAN, 0.5]]).unwrap();
        let report = split.ingest(nan_only.view()).unwrap();
        assert_eq!(
            report,
            IngestReport {
                points: 1,
                outliers: 1
            }
        );
        assert_eq!(split.domain(), None);
        let finite = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        split.ingest(finite.view()).unwrap();
        assert_eq!(split.domain(), together.domain());
        assert_eq!(split.outlier_count(), together.outlier_count());
        // Grids agree; only the per-point order differs by the permutation.
        assert_eq!(split.grid(), together.grid());
    }

    #[test]
    fn refit_outcome_model_reproduces_refit_labels_including_outliers() {
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::builder().scale(16).build());
        let mut batch = grid_points();
        batch.push_row(&[9.0, 9.0]); // out of the adopted domain? no — first batch spans it
        stream.ingest(batch.view()).unwrap();
        let late =
            PointMatrix::from_rows(vec![vec![0.5, 0.25], vec![40.0, 40.0], vec![f64::NAN, 0.1]])
                .unwrap();
        stream.ingest(late.view()).unwrap();
        assert_eq!(stream.outlier_count(), 2);

        let outcome = stream.refit_outcome().unwrap();
        let refit = stream.refit().unwrap().to_clustering();
        assert_eq!(outcome.clustering, refit);
        // Re-predicting every ingested point reproduces its refit label —
        // outliers come back as noise through the model's domain check.
        let mut all = batch.clone();
        all.append(&late);
        assert_eq!(outcome.model.predict(all.view()).unwrap(), refit);
        assert_eq!(outcome.model.predict_one(&[40.0, 40.0]), None);
        assert_eq!(outcome.model.algorithm(), "adawave");
    }

    #[test]
    fn pre_freeze_outliers_survive_a_merge() {
        let config = AdaWaveConfig::builder().scale(8).build();
        let mut unfrozen = StreamingAdaWave::new(config.clone());
        let nan_only = PointMatrix::from_rows(vec![vec![f64::NAN, 0.5]]).unwrap();
        unfrozen.ingest(nan_only.view()).unwrap();

        let mut fed = StreamingAdaWave::new(config);
        fed.ingest(grid_points().view()).unwrap();
        unfrozen.merge(fed.clone()).unwrap();
        assert_eq!(unfrozen.points_ingested(), 1 + fed.points_ingested());
        assert_eq!(unfrozen.outlier_count(), 1);
        let result = unfrozen.refit().unwrap();
        assert_eq!(result.label(0), None, "pre-freeze outlier stays noise");
    }
}
