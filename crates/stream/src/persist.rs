//! Accumulator persistence: snapshot a [`StreamingAdaWave`] session to the
//! versioned `adawave-accumulator` artifact format and restore it in
//! another process.
//!
//! The snapshot captures the session's *entire* mergeable state — model
//! configuration (worker-pool runtime excluded; it never affects results),
//! the frozen quantized space, the accumulated sparse grid and the
//! per-point cell keys — with every float as the hex of its IEEE-754 bits,
//! so a save → load round trip is bit-exact: a restored session merges,
//! refits and labels exactly like the original. That is what turns the
//! in-process shard merge of [`StreamingAdaWave::merge`] into a
//! distributed one: independent processes each ingest a slice of the data,
//! write their accumulators with [`save_accumulator`], and a coordinator
//! [`load_accumulator`]s and merges them — with mismatched domains or
//! configurations rejected exactly like an in-process merge.
//!
//! [`Checkpointer`] adds crash tolerance on top: every `every` ingested
//! rows it rewrites the accumulator file atomically (write to a `.tmp`
//! sibling, then rename), so a killed ingestion can resume from the last
//! checkpoint — skip the first [`StreamingAdaWave::points_ingested`] rows
//! and continue — instead of starting over at row 0.

use std::path::{Path, PathBuf};

use adawave_api::{
    f64_from_hex, f64_to_hex, load_artifact, save_artifact, save_artifact_atomic, ArtifactError,
    ArtifactKind, PayloadReader,
};
use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_grid::{Connectivity, Quantizer, SparseGrid};
use adawave_wavelet::{BoundaryMode, Wavelet};

use crate::{Frozen, StreamingAdaWave};

/// The artifact kind accumulator files use (magic `adawave-accumulator`).
const KIND: ArtifactKind = ArtifactKind::Accumulator;

/// The algorithm named in every accumulator header.
const ALGORITHM: &str = "adawave";

fn boundary_name(mode: BoundaryMode) -> &'static str {
    match mode {
        BoundaryMode::Zero => "zero",
        BoundaryMode::Periodic => "periodic",
        BoundaryMode::Symmetric => "symmetric",
    }
}

fn boundary_from_name(name: &str) -> Option<BoundaryMode> {
    match name {
        "zero" => Some(BoundaryMode::Zero),
        "periodic" => Some(BoundaryMode::Periodic),
        "symmetric" => Some(BoundaryMode::Symmetric),
        _ => None,
    }
}

fn connectivity_name(connectivity: Connectivity) -> &'static str {
    match connectivity {
        Connectivity::Face => "face",
        Connectivity::Moore => "moore",
    }
}

fn connectivity_from_name(name: &str) -> Option<Connectivity> {
    match name {
        "face" => Some(Connectivity::Face),
        "moore" => Some(Connectivity::Moore),
        _ => None,
    }
}

/// Serialize the model configuration (runtime excluded) with every float
/// bit-exact, so the restored config passes [`StreamingAdaWave::merge`]'s
/// equality check against the original session.
fn serialize_config(config: &AdaWaveConfig, out: &mut String) {
    out.push_str(&format!("config-scale {}\n", config.scale));
    match &config.per_dimension_scale {
        None => out.push_str("config-per-dimension-scale none\n"),
        Some(v) => {
            out.push_str("config-per-dimension-scale");
            for m in v {
                out.push_str(&format!(" {m}"));
            }
            out.push('\n');
        }
    }
    out.push_str(&format!("config-wavelet {}\n", config.wavelet.name()));
    out.push_str(&format!("config-levels {}\n", config.levels));
    out.push_str(&format!(
        "config-boundary {}\n",
        boundary_name(config.boundary)
    ));
    out.push_str(&format!(
        "config-epsilon {}\n",
        f64_to_hex(config.coefficient_epsilon)
    ));
    // The strategy name plus its parameter (if any) as hex bits — the
    // textual `fixed:<decimal>` form of FromStr would not round-trip
    // bit-exactly.
    out.push_str("config-threshold ");
    out.push_str(config.threshold.name());
    match config.threshold {
        ThresholdStrategy::ElbowAngle { divisor } => {
            out.push(' ');
            out.push_str(&f64_to_hex(divisor));
        }
        ThresholdStrategy::Fixed(v) => {
            out.push(' ');
            out.push_str(&f64_to_hex(v));
        }
        ThresholdStrategy::Quantile(q) => {
            out.push(' ');
            out.push_str(&f64_to_hex(q));
        }
        ThresholdStrategy::ThreeSegment | ThresholdStrategy::Kneedle => {}
    }
    out.push('\n');
    out.push_str(&format!(
        "config-connectivity {}\n",
        connectivity_name(config.connectivity)
    ));
    out.push_str(&format!(
        "config-auto-reduce-scale {}\n",
        config.auto_reduce_scale
    ));
    out.push_str(&format!(
        "config-max-transformed-cells {}\n",
        config.max_transformed_cells
    ));
    out.push_str(&format!("config-precision {}\n", config.precision));
}

fn parse_config(reader: &mut PayloadReader<'_>) -> Result<AdaWaveConfig, String> {
    let mut config = AdaWaveConfig {
        scale: reader.scalar("config-scale")?,
        ..AdaWaveConfig::default()
    };
    let raw = reader.field("config-per-dimension-scale")?;
    config.per_dimension_scale = match raw {
        "none" => None,
        list => Some(
            list.split_whitespace()
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad per-dimension scale '{v}'"))
                })
                .collect::<Result<Vec<u32>, String>>()?,
        ),
    };
    let raw = reader.field("config-wavelet")?;
    config.wavelet = Wavelet::from_name(raw).ok_or_else(|| format!("unknown wavelet '{raw}'"))?;
    config.levels = reader.scalar("config-levels")?;
    let raw = reader.field("config-boundary")?;
    config.boundary =
        boundary_from_name(raw).ok_or_else(|| format!("unknown boundary mode '{raw}'"))?;
    config.coefficient_epsilon = reader.float_list("config-epsilon", 1).map(|v| v[0])?;
    let raw = reader.field("config-threshold")?;
    let (name, param) = match raw.split_once(' ') {
        Some((name, bits)) => {
            let v = f64_from_hex(bits).ok_or_else(|| format!("bad threshold bits '{bits}'"))?;
            (name, Some(v))
        }
        None => (raw, None),
    };
    config.threshold = match (name, param) {
        ("three-segment", None) => ThresholdStrategy::ThreeSegment,
        ("kneedle", None) => ThresholdStrategy::Kneedle,
        ("elbow-angle", Some(divisor)) => ThresholdStrategy::ElbowAngle { divisor },
        ("fixed", Some(v)) => ThresholdStrategy::Fixed(v),
        ("quantile", Some(q)) => ThresholdStrategy::Quantile(q),
        _ => return Err(format!("bad threshold strategy '{raw}'")),
    };
    let raw = reader.field("config-connectivity")?;
    config.connectivity =
        connectivity_from_name(raw).ok_or_else(|| format!("unknown connectivity '{raw}'"))?;
    config.auto_reduce_scale = reader.scalar("config-auto-reduce-scale")?;
    config.max_transformed_cells = reader.scalar("config-max-transformed-cells")?;
    config.precision = reader.scalar("config-precision")?;
    Ok(config)
}

impl StreamingAdaWave {
    /// Serialize the session's complete mergeable state into the
    /// accumulator payload (header excluded): configuration, frozen
    /// quantized space, accumulated grid and per-point cell keys, all
    /// bit-exact. The worker-pool runtime is deliberately *not* part of
    /// the snapshot — it never affects results, and [`restore`]d sessions
    /// pick it up from the environment like any fresh session.
    ///
    /// [`restore`]: Self::restore
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        serialize_config(self.adawave.config(), &mut out);
        match self.dims {
            None => out.push_str("dims none\n"),
            Some(d) => out.push_str(&format!("dims {d}\n")),
        }
        out.push_str(&format!("outliers {}\n", self.outliers));
        out.push_str(&format!("points {}\n", self.point_cells.len()));
        for cell in &self.point_cells {
            match cell {
                Some(key) => out.push_str(&format!("{key:032x}\n")),
                None => out.push_str("-\n"),
            }
        }
        match &self.frozen {
            None => out.push_str("frozen none\n"),
            Some(frozen) => {
                out.push_str("frozen some\n");
                frozen.quantizer.serialize_into(&mut out);
                frozen.grid.serialize_into(&mut out);
            }
        }
        out
    }

    /// Rebuild a session from a [`snapshot`](Self::snapshot) payload.
    ///
    /// Everything is re-validated on the way in: the configuration fields,
    /// the quantizer (bounds ordering, interval counts, key width) and the
    /// grid dump. The restored session is bit-for-bit equivalent to the
    /// snapshot one — same grid, same per-point cells, same refit labels —
    /// and merging it behaves exactly like merging the original
    /// (mismatched domains/configurations are rejected the same way).
    pub fn restore(payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let config = parse_config(&mut reader)?;
        let dims = match reader.field("dims")? {
            "none" => None,
            raw => Some(raw.parse().map_err(|_| format!("bad dims '{raw}'"))?),
        };
        let outliers: usize = reader.scalar("outliers")?;
        let points: usize = reader.scalar("points")?;
        let mut point_cells = Vec::with_capacity(points.min(1 << 24));
        let mut noise = 0usize;
        for _ in 0..points {
            let line = reader.line()?;
            if line == "-" {
                noise += 1;
                point_cells.push(None);
            } else {
                let key = u128::from_str_radix(line, 16)
                    .map_err(|_| format!("bad point cell key '{line}'"))?;
                point_cells.push(Some(key));
            }
        }
        if noise != outliers {
            return Err(format!(
                "outlier count {outliers} does not match the {noise} noise cells listed"
            ));
        }
        let frozen = match reader.field("frozen")? {
            "none" => None,
            "some" => {
                let quantizer = Quantizer::deserialize_from(&mut reader)?;
                if let Some(d) = dims {
                    if quantizer.dims() != d {
                        return Err(format!(
                            "frozen space has {} dimensions but the session says {d}",
                            quantizer.dims()
                        ));
                    }
                }
                let grid = SparseGrid::deserialize_from(&mut reader)?;
                Some(Frozen { quantizer, grid })
            }
            other => return Err(format!("bad frozen marker '{other}'")),
        };
        if frozen.is_none() && dims.is_some() && point_cells.iter().any(|c| c.is_some()) {
            return Err("in-domain point cells listed but no frozen space".to_string());
        }
        Ok(Self {
            adawave: AdaWave::new(config),
            frozen,
            point_cells,
            outliers,
            dims,
        })
    }
}

/// Write a session's accumulator to `path` in one shot.
pub fn save_accumulator(path: &Path, stream: &StreamingAdaWave) -> Result<(), ArtifactError> {
    save_artifact(path, KIND, ALGORITHM, &stream.snapshot())
}

/// Write a session's accumulator to `path` atomically (`.tmp` sibling,
/// then rename) — the checkpoint discipline: a crash mid-write leaves the
/// previous checkpoint intact, never a half-written file.
pub fn save_accumulator_atomic(
    path: &Path,
    stream: &StreamingAdaWave,
) -> Result<(), ArtifactError> {
    save_artifact_atomic(path, KIND, ALGORITHM, &stream.snapshot())
}

/// Load an accumulator file written by [`save_accumulator`] (or the
/// atomic variant) back into a session.
pub fn load_accumulator(path: &Path) -> Result<StreamingAdaWave, ArtifactError> {
    let artifact = load_artifact(path, KIND)?;
    if artifact.algorithm != ALGORITHM {
        return Err(ArtifactError::Format {
            kind: KIND,
            context: format!(
                "accumulators are written by '{ALGORITHM}', found algorithm '{}'",
                artifact.algorithm
            ),
        });
    }
    StreamingAdaWave::restore(&artifact.payload).map_err(|context| ArtifactError::Format {
        kind: KIND,
        context,
    })
}

/// Periodic checkpointing for a long ingestion: counts ingested rows and
/// rewrites the accumulator file atomically every `every` rows, so a
/// killed process resumes from the last checkpoint instead of row 0.
///
/// ```no_run
/// use adawave_core::AdaWaveConfig;
/// use adawave_stream::{Checkpointer, StreamingAdaWave};
/// # use adawave_api::PointMatrix;
///
/// let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
/// let mut checkpointer = Checkpointer::new("state.awa", 10_000);
/// # let batches: Vec<PointMatrix> = vec![];
/// for batch in &batches {
///     let report = stream.ingest(batch.view()).unwrap();
///     checkpointer.observe(&stream, report.points).unwrap();
/// }
/// checkpointer.flush(&stream).unwrap(); // final state, even mid-interval
/// ```
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    every: usize,
    since: usize,
}

impl Checkpointer {
    /// Checkpoint to `path` every `every` ingested rows (`every` is
    /// clamped to at least 1).
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
            since: 0,
        }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record that `rows` more rows were ingested into `stream`; writes a
    /// checkpoint (atomically) once the rows since the last one reach the
    /// interval. Returns whether a checkpoint was written.
    pub fn observe(
        &mut self,
        stream: &StreamingAdaWave,
        rows: usize,
    ) -> Result<bool, ArtifactError> {
        self.since += rows;
        if self.since < self.every {
            return Ok(false);
        }
        self.flush(stream)?;
        Ok(true)
    }

    /// Write a checkpoint now regardless of the interval — the final write
    /// after the last batch, so the file always ends at the full stream.
    pub fn flush(&mut self, stream: &StreamingAdaWave) -> Result<(), ArtifactError> {
        save_accumulator_atomic(&self.path, stream)?;
        self.since = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::{PointMatrix, Precision};
    use adawave_core::AdaWaveConfigBuilder;

    fn two_blob_points() -> PointMatrix {
        let mut points = PointMatrix::new(2);
        for i in 0..150 {
            let t = (i as f64) / 150.0;
            points.push_row(&[
                0.2 + 0.05 * (t * 13.0).fract(),
                0.2 + 0.05 * (t * 7.0).fract(),
            ]);
            points.push_row(&[
                0.8 + 0.05 * (t * 11.0).fract(),
                0.8 + 0.05 * (t * 5.0).fract(),
            ]);
        }
        points
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adawave_accum_{name}_{}.awa", std::process::id()))
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_exact() {
        let points = two_blob_points();
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::builder().scale(32).build());
        stream.ingest(points.view()).unwrap();
        let nan = PointMatrix::from_rows(vec![vec![f64::NAN, 0.5], vec![9.0, 9.0]]).unwrap();
        stream.ingest(nan.view()).unwrap();

        let restored = StreamingAdaWave::restore(&stream.snapshot()).unwrap();
        assert_eq!(restored.points_ingested(), stream.points_ingested());
        assert_eq!(restored.outlier_count(), 2);
        assert_eq!(restored.domain(), stream.domain());
        assert_eq!(restored.grid(), stream.grid());
        assert_eq!(restored.refit().unwrap(), stream.refit().unwrap());
        // Snapshot of the restored session is byte-identical: the format
        // is canonical.
        assert_eq!(restored.snapshot(), stream.snapshot());
    }

    #[test]
    fn non_default_configs_survive_the_round_trip_exactly() {
        // Exercise every config field away from its default, including a
        // threshold whose parameter would not survive a decimal round trip.
        let configs: Vec<AdaWaveConfigBuilder> = vec![
            AdaWaveConfig::builder()
                .per_dimension_scale(vec![16, 64])
                .wavelet(adawave_wavelet::Wavelet::Daubechies3)
                .levels(2)
                .boundary(BoundaryMode::Symmetric)
                .coefficient_epsilon(0.1 + 0.2) // 0.30000000000000004
                .threshold(ThresholdStrategy::ElbowAngle { divisor: 1.0 / 3.0 })
                .connectivity(Connectivity::Moore)
                .auto_reduce_scale(false)
                .max_transformed_cells(4096),
            AdaWaveConfig::builder()
                .scale(16)
                .threshold(ThresholdStrategy::Quantile(0.1))
                .precision(Precision::F32),
            AdaWaveConfig::builder()
                .scale(16)
                .boundary(BoundaryMode::Periodic)
                .threshold(ThresholdStrategy::Fixed(2.5)),
            AdaWaveConfig::builder().threshold(ThresholdStrategy::Kneedle),
        ];
        for builder in configs {
            let config = builder.build();
            let stream = StreamingAdaWave::new(config.clone());
            let restored = StreamingAdaWave::restore(&stream.snapshot()).unwrap();
            let mut expected = config;
            expected.runtime = restored.config().runtime;
            assert_eq!(restored.config(), &expected);
        }
    }

    #[test]
    fn restored_sessions_merge_like_the_originals() {
        let points = two_blob_points();
        let config = AdaWaveConfig::builder().scale(32).build();
        let domain = crate::finite_bounds(points.view()).unwrap();

        // One-shot reference.
        let mut reference = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        reference.ingest(points.view()).unwrap();

        // Two shards, each through a file.
        let half = points.len() / 2;
        let (pa, pb) = (temp_path("merge_a"), temp_path("merge_b"));
        for (path, range) in [(&pa, 0..half), (&pb, half..points.len())] {
            let mut shard = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
            let slice = points.view().select(&range.collect::<Vec<_>>());
            shard.ingest(slice.view()).unwrap();
            save_accumulator(path, &shard).unwrap();
        }
        let mut merged = load_accumulator(&pa).unwrap();
        merged.merge(load_accumulator(&pb).unwrap()).unwrap();
        assert_eq!(merged.grid(), reference.grid());
        assert_eq!(merged.refit().unwrap(), reference.refit().unwrap());

        // A restored session with a different domain is rejected exactly
        // like an in-process merge — and handed back untouched.
        let other_domain = adawave_grid::BoundingBox::from_bounds(vec![5.0, 5.0], vec![9.0, 9.0]);
        let mut other = StreamingAdaWave::with_domain(config, other_domain).unwrap();
        let far = PointMatrix::from_rows(vec![vec![6.0, 6.0]]).unwrap();
        other.ingest(far.view()).unwrap();
        save_accumulator(&pa, &other).unwrap();
        let rejected = merged.merge(load_accumulator(&pa).unwrap()).unwrap_err();
        assert!(matches!(
            rejected.error,
            crate::StreamError::DomainMismatch { .. }
        ));
        assert_eq!(rejected.other.points_ingested(), 1);
        for p in [pa, pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_stream() {
        let points = two_blob_points();
        let config = AdaWaveConfig::builder().scale(32).build();
        let domain = crate::finite_bounds(points.view()).unwrap();
        let path = temp_path("resume");

        // Uninterrupted reference.
        let mut reference = StreamingAdaWave::with_domain(config.clone(), domain.clone()).unwrap();
        reference.ingest(points.view()).unwrap();

        // Ingest in batches of 40 with a checkpoint every 70 rows, and
        // "kill" the process partway through.
        let mut stream = StreamingAdaWave::with_domain(config, domain).unwrap();
        let mut checkpointer = Checkpointer::new(&path, 70);
        let mut wrote = 0usize;
        for start in (0..points.len()).step_by(40) {
            if start >= 160 {
                break; // killed
            }
            let end = (start + 40).min(points.len());
            let batch = points.view().select(&(start..end).collect::<Vec<_>>());
            let report = stream.ingest(batch.view()).unwrap();
            if checkpointer.observe(&stream, report.points).unwrap() {
                wrote += 1;
            }
        }
        assert!(wrote >= 2, "checkpoints written: {wrote}");

        // Resume: restore the last checkpoint and skip what it already saw.
        let mut resumed = load_accumulator(&path).unwrap();
        let skip = resumed.points_ingested();
        assert!(skip > 0 && skip < points.len());
        let rest = points
            .view()
            .select(&(skip..points.len()).collect::<Vec<_>>());
        resumed.ingest(rest.view()).unwrap();
        let mut checkpointer = Checkpointer::new(&path, 70);
        checkpointer.flush(&resumed).unwrap();

        let finished = load_accumulator(&path).unwrap();
        assert_eq!(finished.grid(), reference.grid());
        assert_eq!(finished.refit().unwrap(), reference.refit().unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfrozen_and_prefreeze_outlier_sessions_round_trip() {
        // A fresh session (no domain, no dims).
        let stream = StreamingAdaWave::new(AdaWaveConfig::default());
        let restored = StreamingAdaWave::restore(&stream.snapshot()).unwrap();
        assert_eq!(restored.points_ingested(), 0);
        assert_eq!(restored.domain(), None);

        // All-outlier first batch: dims known, domain still unfrozen.
        let mut stream = StreamingAdaWave::new(AdaWaveConfig::default());
        let nan_only = PointMatrix::from_rows(vec![vec![f64::NAN, 0.5]]).unwrap();
        stream.ingest(nan_only.view()).unwrap();
        let restored = StreamingAdaWave::restore(&stream.snapshot()).unwrap();
        assert_eq!(restored.points_ingested(), 1);
        assert_eq!(restored.outlier_count(), 1);
        assert_eq!(restored.domain(), None);
        // ...and the restored session keeps streaming normally.
        let mut restored = restored;
        let finite = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        restored.ingest(finite.view()).unwrap();
        assert!(restored.domain().is_some());
    }

    #[test]
    fn malformed_payloads_are_rejected_with_context() {
        let good = {
            let mut stream = StreamingAdaWave::new(AdaWaveConfig::builder().scale(8).build());
            let pts = PointMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
            stream.ingest(pts.view()).unwrap();
            stream.snapshot()
        };
        // Targeted corruptions of a known-good payload.
        for (mutate, needle) in [
            (
                Box::new(|s: &str| s.replace("config-wavelet cdf22", "config-wavelet wat"))
                    as Box<dyn Fn(&str) -> String>,
                "unknown wavelet",
            ),
            (
                Box::new(|s: &str| s.replace("config-boundary zero", "config-boundary wat")),
                "unknown boundary",
            ),
            (
                Box::new(|s: &str| {
                    s.replace("config-threshold three-segment", "config-threshold wat")
                }),
                "threshold",
            ),
            (
                Box::new(|s: &str| s.replace("config-connectivity face", "config-connectivity x")),
                "connectivity",
            ),
            (
                Box::new(|s: &str| s.replace("outliers 0", "outliers 7")),
                "outlier count",
            ),
            (
                Box::new(|s: &str| s.replace("frozen some", "frozen wat")),
                "frozen",
            ),
            (
                // Cut the payload right before the grid dump.
                Box::new(|s: &str| s[..s.rfind("cells ").unwrap()].to_string()),
                "truncated",
            ),
        ] {
            let err = StreamingAdaWave::restore(&mutate(&good)).unwrap_err();
            assert!(err.contains(needle), "{needle:?} not in {err:?}");
        }
    }

    #[test]
    fn load_rejects_wrong_kind_and_wrong_algorithm() {
        let path = temp_path("wrongkind");
        // A model file must not load as an accumulator.
        std::fs::write(&path, "adawave-model v1\nalgorithm adawave\ndims 2\n").unwrap();
        let err = load_accumulator(&path).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        // An accumulator header naming a foreign algorithm is refused.
        std::fs::write(&path, "adawave-accumulator v1\nalgorithm kmeans\nx\n").unwrap();
        let err = load_accumulator(&path).unwrap_err();
        assert!(err.to_string().contains("kmeans"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
