//! Axis-aligned bounding boxes of point sets.

use adawave_api::{f64_to_hex, PayloadReader, PointsView};

use crate::{GridError, Result};

/// The axis-aligned bounding box of a dataset, i.e. the domain `B_j` that
/// each dimension is divided into intervals (paper §IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl BoundingBox {
    /// Compute the bounding box of a non-empty point set.
    ///
    /// Returns an error if the set is empty, the points have zero
    /// dimensions, or any coordinate is not finite. (The flat
    /// [`PointsView`] layout makes ragged input unrepresentable, so the
    /// old per-point dimensionality check is gone by construction.)
    pub fn from_points(points: PointsView<'_>) -> Result<Self> {
        if points.is_empty() {
            return Err(GridError::InvalidData {
                context: "bounding box of an empty point set".to_string(),
            });
        }
        let dims = points.dims();
        if dims == 0 {
            return Err(GridError::InvalidData {
                context: "points have zero dimensions".to_string(),
            });
        }
        let mut min = vec![f64::INFINITY; dims];
        let mut max = vec![f64::NEG_INFINITY; dims];
        for (i, p) in points.rows().enumerate() {
            for (j, &v) in p.iter().enumerate() {
                if !v.is_finite() {
                    return Err(GridError::InvalidData {
                        context: format!("point {i}, dimension {j} is not finite"),
                    });
                }
                if v < min[j] {
                    min[j] = v;
                }
                if v > max[j] {
                    max[j] = v;
                }
            }
        }
        Ok(Self { min, max })
    }

    /// Construct a bounding box from explicit bounds.
    ///
    /// # Panics
    /// Panics if lengths differ or any `min > max`.
    pub fn from_bounds(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "bounds length mismatch");
        for (lo, hi) in min.iter().zip(max.iter()) {
            assert!(lo <= hi, "min must be <= max");
        }
        Self { min, max }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Lower bounds per dimension.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper bounds per dimension.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Extent (max - min) of dimension `j`.
    pub fn extent(&self, j: usize) -> f64 {
        self.max[j] - self.min[j]
    }

    /// Whether the point lies inside the (closed) box.
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.dims()
            && point
                .iter()
                .enumerate()
                .all(|(j, &v)| v >= self.min[j] && v <= self.max[j])
    }

    /// Normalize a coordinate of dimension `j` to `[0, 1]`; degenerate
    /// dimensions (zero extent) map to 0.
    pub fn normalize(&self, j: usize, value: f64) -> f64 {
        let extent = self.extent(j);
        if extent <= 0.0 {
            0.0
        } else {
            (value - self.min[j]) / extent
        }
    }

    /// The smallest box containing both `self` and `other` — how a
    /// streaming prescan combines per-batch boxes into the full domain
    /// without holding more than one batch in memory.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        assert_eq!(self.dims(), other.dims(), "union: dimensionality mismatch");
        let min = self
            .min
            .iter()
            .zip(&other.min)
            .map(|(&a, &b)| a.min(b))
            .collect();
        let max = self
            .max
            .iter()
            .zip(&other.max)
            .map(|(&a, &b)| a.max(b))
            .collect();
        Self { min, max }
    }

    /// Append the box to an artifact payload as three lines — `dims N`,
    /// `min <hex...>`, `max <hex...>` — with every bound encoded as the hex
    /// of its IEEE-754 bits, so the round trip through
    /// [`deserialize_from`](Self::deserialize_from) is bit-exact.
    pub fn serialize_into(&self, out: &mut String) {
        out.push_str(&format!("dims {}\n", self.dims()));
        for (name, bounds) in [("min", &self.min), ("max", &self.max)] {
            out.push_str(name);
            for &v in bounds.iter() {
                out.push(' ');
                out.push_str(&f64_to_hex(v));
            }
            out.push('\n');
        }
    }

    /// Read a box written by [`serialize_into`](Self::serialize_into) from
    /// an artifact payload, validating that every dimension still satisfies
    /// `min <= max` (which also rejects NaN bounds) before constructing.
    pub fn deserialize_from(reader: &mut PayloadReader<'_>) -> std::result::Result<Self, String> {
        let dims: usize = reader.scalar("dims")?;
        if dims == 0 {
            return Err("bounding box with zero dimensions".to_string());
        }
        let min = reader.float_list("min", dims)?;
        let max = reader.float_list("max", dims)?;
        for (j, (lo, hi)) in min.iter().zip(&max).enumerate() {
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(format!("dimension {j}: min {lo:?} exceeds max {hi:?}"));
            }
        }
        Ok(Self { min, max })
    }

    /// Grow the box by a relative margin on every side (e.g. `0.01` = 1%).
    /// Degenerate dimensions are widened by an absolute `1e-9`.
    pub fn expanded(&self, relative_margin: f64) -> Self {
        let mut min = self.min.clone();
        let mut max = self.max.clone();
        for j in 0..self.dims() {
            let extent = self.extent(j);
            let pad = if extent > 0.0 {
                extent * relative_margin
            } else {
                1e-9
            };
            min[j] -= pad;
            max[j] += pad;
        }
        Self { min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use adawave_api::PointMatrix;

    fn matrix(rows: Vec<Vec<f64>>) -> PointMatrix {
        PointMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn from_points_basic() {
        let pts = matrix(vec![vec![1.0, -2.0], vec![3.0, 5.0], vec![2.0, 0.0]]);
        let b = BoundingBox::from_points(pts.view()).unwrap();
        assert_eq!(b.min(), &[1.0, -2.0]);
        assert_eq!(b.max(), &[3.0, 5.0]);
        assert_eq!(b.dims(), 2);
        assert_eq!(b.extent(1), 7.0);
    }

    #[test]
    fn empty_points_is_error() {
        let pts = PointMatrix::new(2);
        assert!(BoundingBox::from_points(pts.view()).is_err());
    }

    #[test]
    fn zero_dimensional_points_is_error() {
        let pts = matrix(vec![vec![], vec![]]);
        assert!(BoundingBox::from_points(pts.view()).is_err());
    }

    #[test]
    fn non_finite_is_error() {
        let pts = matrix(vec![vec![1.0, f64::NAN]]);
        assert!(BoundingBox::from_points(pts.view()).is_err());
        let pts = matrix(vec![vec![f64::INFINITY, 1.0]]);
        assert!(BoundingBox::from_points(pts.view()).is_err());
    }

    #[test]
    fn contains_and_normalize() {
        let b = BoundingBox::from_bounds(vec![0.0, 0.0], vec![10.0, 4.0]);
        assert!(b.contains(&[5.0, 2.0]));
        assert!(b.contains(&[0.0, 4.0]));
        assert!(!b.contains(&[11.0, 2.0]));
        assert!(!b.contains(&[5.0]));
        assert_eq!(b.normalize(0, 5.0), 0.5);
        assert_eq!(b.normalize(1, 4.0), 1.0);
    }

    #[test]
    fn normalize_degenerate_dimension() {
        let b = BoundingBox::from_bounds(vec![2.0], vec![2.0]);
        assert_eq!(b.normalize(0, 2.0), 0.0);
    }

    #[test]
    fn union_covers_both_boxes_and_equals_whole_dataset_box() {
        let a = BoundingBox::from_bounds(vec![0.0, 2.0], vec![1.0, 5.0]);
        let b = BoundingBox::from_bounds(vec![-1.0, 3.0], vec![0.5, 9.0]);
        let u = a.union(&b);
        assert_eq!(u.min(), &[-1.0, 2.0]);
        assert_eq!(u.max(), &[1.0, 9.0]);
        // Union of per-batch boxes == box of the concatenated points.
        let first = matrix(vec![vec![0.0, 2.0], vec![1.0, 5.0]]);
        let second = matrix(vec![vec![-1.0, 3.0], vec![0.5, 9.0]]);
        let mut all = first.clone();
        all.append(&second);
        let batched = BoundingBox::from_points(first.view())
            .unwrap()
            .union(&BoundingBox::from_points(second.view()).unwrap());
        assert_eq!(batched, BoundingBox::from_points(all.view()).unwrap());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn union_rejects_dimension_mismatch() {
        let a = BoundingBox::from_bounds(vec![0.0], vec![1.0]);
        let b = BoundingBox::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let _ = a.union(&b);
    }

    #[test]
    fn expanded_grows_box() {
        let b = BoundingBox::from_bounds(vec![0.0, 1.0], vec![10.0, 1.0]);
        let e = b.expanded(0.1);
        assert!((e.min()[0] - -1.0).abs() < 1e-12);
        assert!((e.max()[0] - 11.0).abs() < 1e-12);
        // degenerate dimension gets an absolute epsilon
        assert!(e.extent(1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "min must be <= max")]
    fn from_bounds_validates_order() {
        let _ = BoundingBox::from_bounds(vec![1.0], vec![0.0]);
    }

    #[test]
    fn serde_round_trip_is_bit_exact() {
        let b = BoundingBox::from_bounds(vec![-0.0, 1.0e-300, -3.5], vec![0.0, 2.0, 7.25]);
        let mut payload = String::new();
        b.serialize_into(&mut payload);
        let mut reader = PayloadReader::new(&payload);
        let back = BoundingBox::deserialize_from(&mut reader).unwrap();
        assert_eq!(back.dims(), 3);
        for j in 0..3 {
            assert_eq!(b.min()[j].to_bits(), back.min()[j].to_bits());
            assert_eq!(b.max()[j].to_bits(), back.max()[j].to_bits());
        }
    }

    #[test]
    fn serde_rejects_malformed_payloads() {
        let nan = adawave_api::f64_to_hex(f64::NAN);
        let one = adawave_api::f64_to_hex(1.0);
        let zero = adawave_api::f64_to_hex(0.0);
        for (payload, needle) in [
            ("", "truncated"),
            ("dims banana\n", "banana"),
            ("dims 0\n", "zero dimensions"),
            ("dims 1\nmin xyz\nmax xyz\n", "bad float bits"),
            // min > max must be rejected, not passed to the panicking
            // constructor...
            (
                &format!("dims 1\nmin {one}\nmax {zero}\n") as &str,
                "exceeds",
            ),
            // ...and so must NaN bounds, which fail every comparison.
            (&format!("dims 1\nmin {nan}\nmax {one}\n") as &str, "NaN"),
        ] {
            let mut reader = PayloadReader::new(payload);
            let err = BoundingBox::deserialize_from(&mut reader).unwrap_err();
            assert!(err.contains(needle), "{payload:?} -> {err}");
        }
    }

    #[test]
    fn single_point_box_is_degenerate_but_valid() {
        let pts = matrix(vec![vec![3.0, 4.0]]);
        let b = BoundingBox::from_points(pts.view()).unwrap();
        assert_eq!(b.extent(0), 0.0);
        assert!(b.contains(&[3.0, 4.0]));
    }
}
