//! Space quantization (Algorithm 2 of the paper): assign every data point
//! to a grid cell and record the per-cell point counts.

use adawave_api::{PayloadReader, PointsView};
use adawave_runtime::Runtime;

use crate::{BoundingBox, GridError, KeyCodec, Result, SparseGrid};

/// Rows per parallel shard of [`Quantizer::quantize_with`]. Fixed (never
/// derived from the thread count) so shard boundaries — and therefore the
/// merged result — are identical for every [`Runtime`].
const QUANTIZE_CHUNK_ROWS: usize = 8_192;

/// Precomputed state for the opt-in single-precision quantization lane:
/// per-dimension lower bounds and inverse interval widths, both narrowed
/// to `f32`. Built once per quantizer by [`Quantizer::f32_lane`] and reused
/// across every point (and every serving query) so the hot loop is a
/// subtract, a multiply, and a floor per coordinate.
#[derive(Debug, Clone)]
pub struct F32Lane {
    mins: Vec<f32>,
    inv_widths: Vec<f32>,
}

/// Maps points to grid cells.
///
/// The feature-space domain `B_j` of every dimension is divided into
/// `intervals_j` right-open intervals `[l, h)`; a point belongs to the cell
/// whose interval contains it in every dimension. Coordinates on or beyond
/// the fitted upper bound are clamped into the last interval so the maximum
/// point still belongs to a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    bounds: BoundingBox,
    codec: KeyCodec,
}

impl Quantizer {
    /// Fit a quantizer to a dataset with the same `scale` (number of
    /// intervals) in every dimension. `scale = 128` is the paper's default.
    ///
    /// The dimensionality comes from the view itself, so an empty point
    /// set is a clean [`GridError::InvalidData`] (no `points[0]` panic).
    pub fn fit(points: PointsView<'_>, scale: u32) -> Result<Self> {
        let bounds = BoundingBox::from_points(points)?;
        Self::with_bounds(bounds, &vec![scale; points.dims()])
    }

    /// Fit a quantizer with per-dimension interval counts.
    pub fn fit_with_intervals(points: PointsView<'_>, intervals: &[u32]) -> Result<Self> {
        let bounds = BoundingBox::from_points(points)?;
        Self::with_bounds(bounds, intervals)
    }

    /// Build a quantizer from explicit bounds and interval counts.
    pub fn with_bounds(bounds: BoundingBox, intervals: &[u32]) -> Result<Self> {
        if bounds.dims() != intervals.len() {
            return Err(GridError::InvalidData {
                context: format!(
                    "bounds have {} dimensions but {} interval counts were given",
                    bounds.dims(),
                    intervals.len()
                ),
            });
        }
        let codec = KeyCodec::new(intervals)?;
        Ok(Self { bounds, codec })
    }

    /// The key codec describing the quantized space.
    pub fn codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// The bounding box used for quantization.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.codec.dims()
    }

    /// Cell index of one coordinate in dimension `j`.
    #[inline]
    fn cell_coord(&self, j: usize, v: f64) -> u32 {
        let m = self.codec.intervals(j);
        let extent = self.bounds.extent(j);
        // Right-open intervals [l, h): index = floor((v - min)/width).
        // The maximum coordinate (and anything beyond the fitted
        // bounds) is clamped into the boundary cells.
        let c = if extent > 0.0 {
            let width = extent / m as f64;
            ((v - self.bounds.min()[j]) / width).floor() as i64
        } else {
            0
        };
        c.clamp(0, (m - 1) as i64) as u32
    }

    /// Cell coordinates of a single point. Points outside the fitted bounds
    /// are clamped to the boundary cells.
    ///
    /// # Panics
    /// Panics if the point dimensionality does not match the quantizer.
    pub fn cell_coords(&self, point: &[f64]) -> Vec<u32> {
        assert_eq!(
            point.len(),
            self.dims(),
            "cell_coords: dimensionality mismatch"
        );
        point
            .iter()
            .enumerate()
            .map(|(j, &v)| self.cell_coord(j, v))
            .collect()
    }

    /// Packed cell key of a single point (the `getGridID` of Algorithm 2).
    /// Streams the coordinates straight into the packed key — no
    /// intermediate coordinate vector, so quantizing a dataset performs no
    /// per-point allocation.
    ///
    /// # Panics
    /// Panics if the point dimensionality does not match the quantizer.
    pub fn cell_key(&self, point: &[f64]) -> u128 {
        assert_eq!(
            point.len(),
            self.dims(),
            "cell_key: dimensionality mismatch"
        );
        point.iter().enumerate().fold(0u128, |key, (j, &v)| {
            key | self.codec.pack_coord(j, self.cell_coord(j, v))
        })
    }

    /// Centre of a cell in the original feature space.
    pub fn cell_center(&self, key: u128) -> Vec<f64> {
        let coords = self.codec.unpack(key);
        coords
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let m = self.codec.intervals(j) as f64;
                let extent = self.bounds.extent(j);
                self.bounds.min()[j] + (c as f64 + 0.5) / m * extent
            })
            .collect()
    }

    /// Append the quantizer to an artifact payload: its bounding box
    /// followed by its codec's interval counts. Both components are
    /// bit-exact, so a restored quantizer assigns every point to the same
    /// cell key as the original.
    pub fn serialize_into(&self, out: &mut String) {
        self.bounds.serialize_into(out);
        self.codec.serialize_into(out);
    }

    /// Read a quantizer written by [`serialize_into`](Self::serialize_into),
    /// re-running the full construction validation (bounds ordering, codec
    /// interval counts and key-width limits).
    pub fn deserialize_from(reader: &mut PayloadReader<'_>) -> std::result::Result<Self, String> {
        let bounds = BoundingBox::deserialize_from(reader)?;
        let codec = KeyCodec::deserialize_from(reader, bounds.dims())?;
        Ok(Self { bounds, codec })
    }

    /// Precompute the opt-in single-precision quantization lane.
    ///
    /// The f32 lane trades the f64 lane's bit-for-bit contract for speed:
    /// coordinates are narrowed to `f32` and the per-dimension division is
    /// replaced by a multiplication with the precomputed inverse interval
    /// width (a rewrite that is *not* bit-identical in general, which is
    /// why the default f64 path keeps its division untouched). Within
    /// itself the lane is fully deterministic: the same inputs produce the
    /// same cells on every run and every thread count.
    pub fn f32_lane(&self) -> F32Lane {
        let dims = self.dims();
        let mut mins = Vec::with_capacity(dims);
        let mut inv_widths = Vec::with_capacity(dims);
        for j in 0..dims {
            mins.push(self.bounds.min()[j] as f32);
            let extent = self.bounds.extent(j);
            inv_widths.push(if extent > 0.0 {
                (self.codec.intervals(j) as f64 / extent) as f32
            } else {
                0.0
            });
        }
        F32Lane { mins, inv_widths }
    }

    /// Cell index of one coordinate in dimension `j` through the f32 lane.
    #[inline]
    fn cell_coord_f32(&self, lane: &F32Lane, j: usize, v: f64) -> u32 {
        let m = self.codec.intervals(j);
        let c = ((v as f32 - lane.mins[j]) * lane.inv_widths[j]).floor() as i64;
        c.clamp(0, (m - 1) as i64) as u32
    }

    /// Packed cell key of a single point through the f32 lane — the
    /// single-precision counterpart of [`cell_key`](Self::cell_key).
    ///
    /// # Panics
    /// Panics if the point dimensionality does not match the quantizer.
    pub fn cell_key_f32(&self, lane: &F32Lane, point: &[f64]) -> u128 {
        assert_eq!(
            point.len(),
            self.dims(),
            "cell_key_f32: dimensionality mismatch"
        );
        point.iter().enumerate().fold(0u128, |key, (j, &v)| {
            key | self.codec.pack_coord(j, self.cell_coord_f32(lane, j, v))
        })
    }

    /// Quantize a whole dataset: returns the sparse grid of per-cell counts
    /// and, for every point, the key of the cell it fell into (the lookup
    /// table input for step 6 of Algorithm 1). Runs sequentially; see
    /// [`quantize_with`](Self::quantize_with) for the parallel form.
    pub fn quantize(&self, points: PointsView<'_>) -> (SparseGrid, Vec<u128>) {
        self.quantize_with(points, Runtime::sequential())
    }

    /// [`quantize_with`](Self::quantize_with) through the opt-in f32 lane:
    /// same fixed-shard fan-out and shard-order merge, but every cell
    /// assignment uses [`cell_key_f32`](Self::cell_key_f32). Deterministic
    /// across thread counts (each point's cell is independent of the
    /// sharding), but *not* bit-comparable to the f64 lane.
    pub fn quantize_f32_with(
        &self,
        points: PointsView<'_>,
        runtime: Runtime,
    ) -> (SparseGrid, Vec<u128>) {
        let dims = points.dims();
        let lane = self.f32_lane();
        if runtime.is_sequential() || dims == 0 || points.len() <= QUANTIZE_CHUNK_ROWS {
            let mut grid = SparseGrid::with_capacity(points.len().min(1 << 16));
            let mut assignment = Vec::with_capacity(points.len());
            for p in points.rows() {
                let key = self.cell_key_f32(&lane, p);
                grid.increment(key);
                assignment.push(key);
            }
            return (grid, assignment);
        }
        let shards: Vec<(SparseGrid, Vec<u128>)> = runtime.par_chunks(
            points.as_slice(),
            QUANTIZE_CHUNK_ROWS * dims,
            |_, coords| {
                let mut grid = SparseGrid::with_capacity(QUANTIZE_CHUNK_ROWS.min(1 << 12));
                let mut keys = Vec::with_capacity(coords.len() / dims);
                for p in coords.chunks_exact(dims) {
                    let key = self.cell_key_f32(&lane, p);
                    grid.increment(key);
                    keys.push(key);
                }
                (grid, keys)
            },
        );
        let mut grid = SparseGrid::with_capacity(points.len().min(1 << 16));
        let mut assignment = Vec::with_capacity(points.len());
        for (shard, keys) in shards {
            grid.merge(&shard);
            assignment.extend_from_slice(&keys);
        }
        (grid, assignment)
    }

    /// [`quantize`](Self::quantize) fanned out over `runtime`: the view is
    /// partitioned into fixed row shards, every shard builds its own sparse
    /// cell-count map plus key slice, and the shards are merged in shard
    /// order. Cell counts are small integers (exact in `f64`), so the merge
    /// is bit-identical to the sequential pass for every thread count.
    pub fn quantize_with(
        &self,
        points: PointsView<'_>,
        runtime: Runtime,
    ) -> (SparseGrid, Vec<u128>) {
        let dims = points.dims();
        if runtime.is_sequential() || dims == 0 || points.len() <= QUANTIZE_CHUNK_ROWS {
            let mut grid = SparseGrid::with_capacity(points.len().min(1 << 16));
            let mut assignment = Vec::with_capacity(points.len());
            for p in points.rows() {
                let key = self.cell_key(p);
                grid.increment(key);
                assignment.push(key);
            }
            return (grid, assignment);
        }
        let shards: Vec<(SparseGrid, Vec<u128>)> = runtime.par_chunks(
            points.as_slice(),
            QUANTIZE_CHUNK_ROWS * dims,
            |_, coords| {
                let mut grid = SparseGrid::with_capacity(QUANTIZE_CHUNK_ROWS.min(1 << 12));
                let mut keys = Vec::with_capacity(coords.len() / dims);
                for p in coords.chunks_exact(dims) {
                    let key = self.cell_key(p);
                    grid.increment(key);
                    keys.push(key);
                }
                (grid, keys)
            },
        );
        let mut grid = SparseGrid::with_capacity(points.len().min(1 << 16));
        let mut assignment = Vec::with_capacity(points.len());
        for (shard, keys) in shards {
            grid.merge(&shard);
            assignment.extend_from_slice(&keys);
        }
        (grid, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;

    fn matrix(rows: Vec<Vec<f64>>) -> PointMatrix {
        PointMatrix::from_rows(rows).unwrap()
    }

    fn unit_square_points() -> PointMatrix {
        matrix(vec![
            vec![0.0, 0.0],
            vec![0.99, 0.99],
            vec![0.5, 0.5],
            vec![0.51, 0.49],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn fit_and_quantize_counts_points() {
        let pts = unit_square_points();
        let q = Quantizer::fit(pts.view(), 4).unwrap();
        let (grid, assignment) = q.quantize(pts.view());
        assert_eq!(assignment.len(), pts.len());
        assert_eq!(grid.total_mass(), pts.len() as f64);
        // (0,0) and (1,1)/(0.99,0.99) must land in different cells
        assert_ne!(assignment[0], assignment[1]);
        // max coordinate is clamped into the last cell, same as 0.99
        assert_eq!(assignment[1], assignment[4]);
    }

    #[test]
    fn empty_input_is_an_error_not_a_panic() {
        // The dimension used to come from `points[0]`; the view carries it,
        // so an empty set must surface as InvalidData from every fit path.
        let empty = PointMatrix::new(2);
        assert!(Quantizer::fit(empty.view(), 8).is_err());
        assert!(Quantizer::fit_with_intervals(empty.view(), &[8, 8]).is_err());
    }

    #[test]
    fn cell_coords_respect_scale() {
        let pts = matrix(vec![vec![0.0], vec![10.0]]);
        let q = Quantizer::fit(pts.view(), 10).unwrap();
        assert_eq!(q.cell_coords(&[0.0]), vec![0]);
        assert_eq!(q.cell_coords(&[5.0]), vec![5]);
        assert_eq!(q.cell_coords(&[9.99]), vec![9]);
        assert_eq!(q.cell_coords(&[10.0]), vec![9]);
    }

    #[test]
    fn out_of_bounds_points_are_clamped() {
        let pts = matrix(vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let q = Quantizer::fit(pts.view(), 8).unwrap();
        assert_eq!(q.cell_coords(&[-5.0, 0.5]), vec![0, 4]);
        assert_eq!(q.cell_coords(&[2.0, 0.5])[0], 7);
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let pts = matrix(vec![vec![0.0, 0.0], vec![8.0, 4.0]]);
        let q = Quantizer::fit(pts.view(), 8).unwrap();
        let key = q.cell_key(&[3.1, 2.2]);
        let center = q.cell_center(key);
        assert_eq!(q.cell_key(&center), key);
    }

    #[test]
    fn same_cell_for_nearby_points() {
        let pts = matrix(vec![vec![0.0, 0.0], vec![100.0, 100.0]]);
        let q = Quantizer::fit(pts.view(), 10).unwrap();
        assert_eq!(q.cell_key(&[12.0, 12.0]), q.cell_key(&[13.0, 17.0]));
        assert_ne!(q.cell_key(&[12.0, 12.0]), q.cell_key(&[32.0, 12.0]));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let bounds = BoundingBox::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(Quantizer::with_bounds(bounds, &[4]).is_err());
    }

    #[test]
    fn per_dimension_intervals() {
        let pts = matrix(vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let q = Quantizer::fit_with_intervals(pts.view(), &[4, 16]).unwrap();
        assert_eq!(q.codec().intervals(0), 4);
        assert_eq!(q.codec().intervals(1), 16);
    }

    #[test]
    fn quantize_is_order_insensitive() {
        // The paper's "input-order insensitive" property: grid contents do
        // not depend on the order points are presented.
        let mut pts = unit_square_points();
        let q = Quantizer::fit(pts.view(), 8).unwrap();
        let (grid_a, _) = q.quantize(pts.view());
        pts.reverse_rows();
        let (grid_b, _) = q.quantize(pts.view());
        assert_eq!(grid_a, grid_b);
    }

    #[test]
    fn parallel_quantize_matches_sequential() {
        // Enough rows to cross the shard size so the parallel path is
        // actually exercised.
        let mut pts = PointMatrix::new(2);
        let mut x = 0.123_f64;
        for _ in 0..20_000 {
            x = (x * 97.0 + 0.31).fract();
            pts.push_row(&[x, (x * 13.0).fract()]);
        }
        let q = Quantizer::fit(pts.view(), 64).unwrap();
        let (grid_seq, keys_seq) = q.quantize(pts.view());
        for threads in [2, 3, 8] {
            let (grid_par, keys_par) = q.quantize_with(pts.view(), Runtime::with_threads(threads));
            assert_eq!(grid_seq, grid_par, "threads = {threads}");
            assert_eq!(keys_seq, keys_par, "threads = {threads}");
        }
    }

    #[test]
    fn degenerate_dimension_all_in_one_cell() {
        let pts = matrix(vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        let q = Quantizer::fit(pts.view(), 8).unwrap();
        let coords: Vec<u32> = pts.rows().map(|p| q.cell_coords(p)[1]).collect();
        assert!(coords.iter().all(|&c| c == coords[0]));
    }

    #[test]
    fn serde_round_trip_preserves_cell_assignment() {
        let pts = lcg_points(500);
        let q = Quantizer::fit_with_intervals(pts.view(), &[64, 16]).unwrap();
        let mut payload = String::new();
        q.serialize_into(&mut payload);
        let mut reader = PayloadReader::new(&payload);
        let back = Quantizer::deserialize_from(&mut reader).unwrap();
        assert_eq!(back, q);
        for p in pts.rows() {
            assert_eq!(back.cell_key(p), q.cell_key(p));
        }
    }

    #[test]
    fn serde_rejects_box_codec_dimension_mismatch() {
        // A 2-d box followed by a 1-interval line: the codec read expects
        // exactly bounds.dims() counts.
        let b = BoundingBox::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let mut payload = String::new();
        b.serialize_into(&mut payload);
        payload.push_str("intervals 8\n");
        let mut reader = PayloadReader::new(&payload);
        assert!(Quantizer::deserialize_from(&mut reader).is_err());
    }

    /// A pseudo-random point cloud large enough to cross the shard size.
    fn lcg_points(rows: usize) -> PointMatrix {
        let mut pts = PointMatrix::new(2);
        let mut x = 0.123_f64;
        for _ in 0..rows {
            x = (x * 97.0 + 0.31).fract();
            pts.push_row(&[x, (x * 13.0).fract()]);
        }
        pts
    }

    #[test]
    fn f32_lane_is_deterministic_across_thread_counts() {
        let pts = lcg_points(20_000);
        let q = Quantizer::fit(pts.view(), 64).unwrap();
        let (grid_seq, keys_seq) = q.quantize_f32_with(pts.view(), Runtime::sequential());
        for threads in [1, 2, 4, 8] {
            let (grid_par, keys_par) =
                q.quantize_f32_with(pts.view(), Runtime::with_threads(threads));
            assert_eq!(grid_seq, grid_par, "threads = {threads}");
            assert_eq!(keys_seq, keys_par, "threads = {threads}");
        }
    }

    #[test]
    fn f32_lane_agrees_with_f64_away_from_cell_boundaries() {
        // The lanes may legitimately disagree for points within an ulp of
        // a cell boundary; on a grid whose boundaries are well separated
        // from the sample positions they must agree everywhere.
        let pts = lcg_points(5_000);
        let q = Quantizer::fit(pts.view(), 16).unwrap();
        let lane = q.f32_lane();
        let (_, keys64) = q.quantize(pts.view());
        let mut disagreements = 0usize;
        for (p, &k64) in pts.rows().zip(keys64.iter()) {
            if q.cell_key_f32(&lane, p) != k64 {
                disagreements += 1;
            }
        }
        // Boundary-straddling points are possible in principle but must be
        // vanishingly rare on generic data.
        assert!(disagreements * 1000 < pts.len(), "{disagreements} of 5000");
    }

    #[test]
    fn f32_lane_clamps_and_handles_degenerate_extent() {
        let pts = matrix(vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        let q = Quantizer::fit(pts.view(), 8).unwrap();
        let lane = q.f32_lane();
        for p in pts.rows() {
            // The zero-extent dimension collapses into interval 0 in both
            // lanes, and every key stays decodable.
            assert_eq!(q.cell_key_f32(&lane, p), q.cell_key(p));
        }
        // Coordinates at the upper bound clamp into the last interval.
        let square = unit_square_points();
        let q = Quantizer::fit(square.view(), 4).unwrap();
        let lane = q.f32_lane();
        assert_eq!(q.cell_key_f32(&lane, &[1.0, 1.0]), q.cell_key(&[1.0, 1.0]));
    }
}
