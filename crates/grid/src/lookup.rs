//! Lookup table between the original and the transformed feature space
//! (Algorithm 1, steps 5–6: "make the lookup table and map objects to
//! clusters").
//!
//! The wavelet transform halves each dimension per decomposition level, so a
//! cell with coordinates `c` in the original quantized space corresponds to
//! the cell `c >> level` in the transformed space. The lookup table stores,
//! for every data point, the key of its original cell; mapping a point to a
//! cluster is then: original cell → transformed cell → cluster id.

use crate::{ComponentLabels, KeyCodec, Result};

/// Maps data points to grid cells across decomposition levels.
#[derive(Debug, Clone)]
pub struct LookupTable {
    /// Codec of the original (level-0) quantized space.
    original_codec: KeyCodec,
    /// For every point, the key of the original cell it was assigned to.
    point_cells: Vec<u128>,
}

impl LookupTable {
    /// Build a lookup table from the quantizer codec and the per-point cell
    /// assignment returned by [`Quantizer::quantize`](crate::Quantizer::quantize).
    pub fn new(original_codec: KeyCodec, point_cells: Vec<u128>) -> Self {
        Self {
            original_codec,
            point_cells,
        }
    }

    /// Number of points in the table.
    pub fn len(&self) -> usize {
        self.point_cells.len()
    }

    /// Whether the table holds no points.
    pub fn is_empty(&self) -> bool {
        self.point_cells.is_empty()
    }

    /// The codec of the original quantized space.
    pub fn original_codec(&self) -> &KeyCodec {
        &self.original_codec
    }

    /// The codec of the transformed space after `levels` decompositions.
    pub fn transformed_codec(&self, levels: u32) -> Result<KeyCodec> {
        self.original_codec.downsampled(levels)
    }

    /// Key of a point's original (level-0) cell.
    pub fn original_cell(&self, point: usize) -> u128 {
        self.point_cells[point]
    }

    /// Key of the cell a point falls into after `levels` decompositions,
    /// in the coordinate system of `transformed_codec(levels)`.
    pub fn transformed_cell(&self, point: usize, levels: u32, transformed: &KeyCodec) -> u128 {
        self.downsample_key(self.point_cells[point], levels, transformed)
    }

    /// Map the coordinates of an original-space cell key down `levels`.
    /// Beyond 31 levels every u32 coordinate has collapsed to 0, so the
    /// shift saturates instead of overflowing.
    pub fn downsample_key(&self, key: u128, levels: u32, transformed: &KeyCodec) -> u128 {
        let coords = self.original_codec.unpack(key);
        let down: Vec<u32> = coords
            .iter()
            .map(|&c| c.checked_shr(levels).unwrap_or(0))
            .collect();
        transformed.pack(&down)
    }

    /// Assign every point the cluster id of its transformed-space cell.
    /// Points whose cell was removed by denoising/thresholding get `None`
    /// (they are noise).
    pub fn assign_points(
        &self,
        labels: &ComponentLabels,
        levels: u32,
        transformed: &KeyCodec,
    ) -> Vec<Option<usize>> {
        self.point_cells
            .iter()
            .map(|&cell| labels.cluster_of(self.downsample_key(cell, levels, transformed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connected_components, Connectivity, Quantizer, SparseGrid};

    #[test]
    fn transformed_cell_halves_coordinates() {
        let codec = KeyCodec::uniform(2, 16).unwrap();
        let cells = vec![codec.pack(&[6, 9]), codec.pack(&[15, 0])];
        let table = LookupTable::new(codec, cells);
        let t1 = table.transformed_codec(1).unwrap();
        assert_eq!(t1.unpack(table.transformed_cell(0, 1, &t1)), vec![3, 4]);
        assert_eq!(t1.unpack(table.transformed_cell(1, 1, &t1)), vec![7, 0]);
        let t2 = table.transformed_codec(2).unwrap();
        assert_eq!(t2.unpack(table.transformed_cell(0, 2, &t2)), vec![1, 2]);
    }

    #[test]
    fn level_zero_is_identity() {
        let codec = KeyCodec::uniform(3, 8).unwrap();
        let key = codec.pack(&[1, 2, 3]);
        let table = LookupTable::new(codec.clone(), vec![key]);
        let t0 = table.transformed_codec(0).unwrap();
        assert_eq!(table.transformed_cell(0, 0, &t0), key);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn assign_points_end_to_end() {
        // Two tight groups of points; cluster at level 0 and map back.
        let points = adawave_api::PointMatrix::from_rows(vec![
            vec![0.1, 0.1],
            vec![0.15, 0.12],
            vec![0.9, 0.95],
            vec![0.92, 0.9],
            vec![0.5, 0.5],
        ])
        .unwrap();
        let quantizer = Quantizer::fit(points.view(), 16).unwrap();
        let (grid, assignment) = quantizer.quantize(points.view());
        let table = LookupTable::new(quantizer.codec().clone(), assignment);

        // Remove the lone middle cell to simulate noise filtering.
        let mut filtered = grid.clone();
        let middle_key = quantizer.cell_key(&[0.5, 0.5]);
        filtered.remove(middle_key);

        let labels = connected_components(&filtered, quantizer.codec(), Connectivity::Face);
        let t0 = table.transformed_codec(0).unwrap();
        let point_labels = table.assign_points(&labels, 0, &t0);
        assert_eq!(point_labels.len(), 5);
        assert!(point_labels[0].is_some());
        assert_eq!(point_labels[0], point_labels[1]);
        assert_eq!(point_labels[2], point_labels[3]);
        assert_ne!(point_labels[0], point_labels[2]);
        assert_eq!(point_labels[4], None, "filtered cell becomes noise");
    }

    #[test]
    fn assign_points_after_downsampling() {
        // Build a grid at scale 8, downsample once (scale 4) and label in
        // the downsampled space.
        let points = adawave_api::PointMatrix::from_rows(vec![
            vec![0.05, 0.05],
            vec![0.10, 0.12],
            vec![0.95, 0.9],
        ])
        .unwrap();
        let quantizer = Quantizer::fit(points.view(), 8).unwrap();
        let (_, assignment) = quantizer.quantize(points.view());
        let table = LookupTable::new(quantizer.codec().clone(), assignment.clone());

        let down_codec = table.transformed_codec(1).unwrap();
        let mut down_grid = SparseGrid::new();
        for &cell in &assignment {
            down_grid.increment(table.downsample_key(cell, 1, &down_codec));
        }
        let labels = connected_components(&down_grid, &down_codec, Connectivity::Face);
        let point_labels = table.assign_points(&labels, 1, &down_codec);
        assert_eq!(point_labels[0], point_labels[1]);
        assert_ne!(point_labels[0], point_labels[2]);
        assert!(point_labels.iter().all(|l| l.is_some()));
    }

    #[test]
    fn empty_table() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let table = LookupTable::new(codec, vec![]);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }
}
