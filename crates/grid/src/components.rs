//! Connected components over the occupied cells of a sparse grid
//! (Algorithm 1, step 4: "find the connected components (clusters) in the
//! subbands of the transformed feature space").

use std::collections::HashMap;

use crate::{Connectivity, KeyCodec, SparseGrid};

/// A disjoint-set (union-find) structure with path compression and union by
/// rank, over indices `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `x`, compressing paths along the way.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The result of labeling occupied cells with cluster ids.
#[derive(Debug, Clone, Default)]
pub struct ComponentLabels {
    /// Cell key → cluster id (0-based, contiguous).
    labels: HashMap<u128, usize>,
    /// Number of distinct clusters.
    cluster_count: usize,
    /// Total density of each cluster.
    cluster_mass: Vec<f64>,
    /// Number of cells in each cluster.
    cluster_cells: Vec<usize>,
}

impl ComponentLabels {
    /// Cluster id of a cell key, if the cell was part of the labeled grid.
    pub fn cluster_of(&self, key: u128) -> Option<usize> {
        self.labels.get(&key).copied()
    }

    /// Number of clusters found.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Total density of cluster `id`.
    pub fn cluster_mass(&self, id: usize) -> f64 {
        self.cluster_mass.get(id).copied().unwrap_or(0.0)
    }

    /// Number of grid cells in cluster `id`.
    pub fn cluster_cells(&self, id: usize) -> usize {
        self.cluster_cells.get(id).copied().unwrap_or(0)
    }

    /// Iterate over `(key, cluster id)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, usize)> + '_ {
        // audit:allow(nondeterministic-iteration) unspecified-order accessor; result-path consumers rebuild a map keyed by cell or sort (model serialization)
        self.labels.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of labeled cells.
    pub fn labeled_cells(&self) -> usize {
        self.labels.len()
    }
}

/// Group the occupied cells of `grid` into connected components under the
/// given connectivity, assigning each cell a contiguous 0-based cluster id.
///
/// Cluster ids are ordered by decreasing total density (cluster 0 is the
/// heaviest), which makes the output deterministic regardless of hash-map
/// iteration order.
pub fn connected_components(
    grid: &SparseGrid,
    codec: &KeyCodec,
    connectivity: Connectivity,
) -> ComponentLabels {
    // Index the occupied cells.
    let keys: Vec<u128> = {
        let mut k: Vec<u128> = grid.keys().collect();
        k.sort_unstable();
        k
    };
    let index: HashMap<u128, usize> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();

    let mut uf = UnionFind::new(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        for neighbor in connectivity.neighbors(codec, key) {
            if let Some(&j) = index.get(&neighbor) {
                uf.union(i, j);
            }
        }
    }

    // Gather components and their masses.
    let mut root_to_component: HashMap<usize, usize> = HashMap::new();
    let mut mass: Vec<f64> = Vec::new();
    let mut cells: Vec<usize> = Vec::new();
    let mut provisional: Vec<usize> = Vec::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let root = uf.find(i);
        let next_id = root_to_component.len();
        let comp = *root_to_component.entry(root).or_insert(next_id);
        if comp == mass.len() {
            mass.push(0.0);
            cells.push(0);
        }
        mass[comp] += grid.density(key);
        cells[comp] += 1;
        provisional.push(comp);
    }

    // Re-rank components by decreasing mass for deterministic ids.
    let mut order: Vec<usize> = (0..mass.len()).collect();
    order.sort_by(|&a, &b| {
        mass[b]
            .total_cmp(&mass[a])
            .then_with(|| cells[b].cmp(&cells[a]))
            .then_with(|| a.cmp(&b))
    });
    let mut remap = vec![0usize; mass.len()];
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id] = new_id;
    }

    let mut labels = HashMap::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        labels.insert(key, remap[provisional[i]]);
    }
    let cluster_mass: Vec<f64> = order.iter().map(|&old| mass[old]).collect();
    let cluster_cells: Vec<usize> = order.iter().map(|&old| cells[old]).collect();

    ComponentLabels {
        labels,
        cluster_count: mass.len(),
        cluster_mass,
        cluster_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyCodec;

    fn grid_from_coords(codec: &KeyCodec, coords: &[(&[u32], f64)]) -> SparseGrid {
        coords.iter().map(|(c, d)| (codec.pack(c), *d)).collect()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_find_transitive_closure() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 9));
    }

    #[test]
    fn two_separate_blobs_are_two_clusters() {
        let codec = KeyCodec::uniform(2, 16).unwrap();
        let grid = grid_from_coords(
            &codec,
            &[
                (&[1, 1], 5.0),
                (&[1, 2], 4.0),
                (&[2, 1], 3.0),
                (&[10, 10], 2.0),
                (&[10, 11], 1.0),
            ],
        );
        let labels = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(labels.cluster_count(), 2);
        // Heaviest cluster (mass 12) gets id 0.
        assert_eq!(labels.cluster_of(codec.pack(&[1, 1])), Some(0));
        assert_eq!(labels.cluster_of(codec.pack(&[10, 10])), Some(1));
        assert_eq!(labels.cluster_mass(0), 12.0);
        assert_eq!(labels.cluster_mass(1), 3.0);
        assert_eq!(labels.cluster_cells(0), 3);
        assert_eq!(labels.cluster_cells(1), 2);
        assert_eq!(labels.labeled_cells(), 5);
    }

    #[test]
    fn diagonal_cells_connect_only_under_moore() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let grid = grid_from_coords(&codec, &[(&[2, 2], 1.0), (&[3, 3], 1.0)]);
        let face = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(face.cluster_count(), 2);
        let moore = connected_components(&grid, &codec, Connectivity::Moore);
        assert_eq!(moore.cluster_count(), 1);
    }

    #[test]
    fn empty_grid_has_no_clusters() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let grid = SparseGrid::new();
        let labels = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(labels.cluster_count(), 0);
        assert_eq!(labels.labeled_cells(), 0);
        assert_eq!(labels.cluster_of(0), None);
    }

    #[test]
    fn ring_shape_is_one_cluster() {
        // An 8-cell ring with a hole in the middle must be a single cluster:
        // the "shape-insensitive" property.
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let ring: Vec<(&[u32], f64)> = vec![
            (&[2, 2], 1.0),
            (&[2, 3], 1.0),
            (&[2, 4], 1.0),
            (&[3, 4], 1.0),
            (&[4, 4], 1.0),
            (&[4, 3], 1.0),
            (&[4, 2], 1.0),
            (&[3, 2], 1.0),
        ];
        let grid = grid_from_coords(&codec, &ring);
        let labels = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(labels.cluster_count(), 1);
        // centre cell is not labeled (it is empty)
        assert_eq!(labels.cluster_of(codec.pack(&[3, 3])), None);
    }

    #[test]
    fn three_dimensional_connectivity() {
        let codec = KeyCodec::uniform(3, 8).unwrap();
        let grid = grid_from_coords(
            &codec,
            &[(&[1, 1, 1], 1.0), (&[1, 1, 2], 1.0), (&[5, 5, 5], 1.0)],
        );
        let labels = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(labels.cluster_count(), 2);
    }

    #[test]
    fn deterministic_ids_by_mass() {
        let codec = KeyCodec::uniform(2, 16).unwrap();
        // Lighter cluster appears "first" in key order but must get id 1.
        let grid = grid_from_coords(&codec, &[(&[0, 0], 1.0), (&[9, 9], 100.0)]);
        let labels = connected_components(&grid, &codec, Connectivity::Face);
        assert_eq!(labels.cluster_of(codec.pack(&[9, 9])), Some(0));
        assert_eq!(labels.cluster_of(codec.pack(&[0, 0])), Some(1));
    }
}
