//! # adawave-grid
//!
//! The "grid labeling" data structure of the AdaWave paper (§IV-A).
//!
//! AdaWave quantizes the feature space into `M^d` grid cells but — unlike
//! the original WaveCluster — **only stores cells with non-zero density**.
//! A cell is identified by its integer coordinates in each dimension,
//! packed into a single 128-bit key, and the populated cells live in a hash
//! map from key to density. This keeps memory proportional to the number of
//! *occupied* cells rather than the full (exponential in `d`) grid volume,
//! which is what lets AdaWave run on relatively high-dimensional data.
//!
//! The crate provides:
//!
//! * [`BoundingBox`] — axis-aligned bounds of a dataset.
//! * [`KeyCodec`] — packing/unpacking of per-dimension cell coordinates
//!   into a `u128` key.
//! * [`Quantizer`] — maps points to cells (Algorithm 2 of the paper).
//! * [`SparseGrid`] — the `{key: density}` map with mass/density statistics.
//! * [`Connectivity`] and [`connected_components`] — grouping of adjacent
//!   cells into clusters (step 4 of Algorithm 1) via union-find.
//! * [`LookupTable`] — mapping points ↔ cells across decomposition levels
//!   (step 5/6 of Algorithm 1).
//!
//! Points arrive as the flat row-major [`adawave_api::PointsView`], so
//! quantization walks one contiguous buffer:
//!
//! ```
//! use adawave_api::PointMatrix;
//! use adawave_grid::{Connectivity, Quantizer, connected_components};
//!
//! let points = PointMatrix::from_rows(vec![
//!     vec![0.1, 0.1], vec![0.12, 0.11], vec![0.9, 0.9], vec![0.88, 0.91],
//! ]).unwrap();
//! let quantizer = Quantizer::fit(points.view(), 8).unwrap();
//! let (grid, assignment) = quantizer.quantize(points.view());
//! assert_eq!(grid.occupied_cells(), 2);
//! let labels = connected_components(&grid, quantizer.codec(), Connectivity::Face);
//! assert_eq!(labels.cluster_count(), 2);
//! # let _ = assignment;
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bounds;
pub mod components;
pub mod key;
pub mod lookup;
pub mod neighbors;
pub mod quantizer;
pub mod sparse;

pub use bounds::BoundingBox;
pub use components::{connected_components, ComponentLabels, UnionFind};
pub use key::KeyCodec;
pub use lookup::LookupTable;
pub use neighbors::Connectivity;
pub use quantizer::{F32Lane, Quantizer};
pub use sparse::SparseGrid;

/// Errors produced by grid construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The dataset is empty or has inconsistent dimensionality.
    InvalidData {
        /// Human-readable description.
        context: String,
    },
    /// The requested quantization does not fit in a 128-bit packed key.
    /// Reduce the number of intervals per dimension (the same practical
    /// limit the paper acknowledges for grid-based methods in high `d`).
    KeyOverflow {
        /// Dimensions of the data.
        dims: usize,
        /// Total bits required.
        bits_required: u32,
    },
    /// A scale (number of intervals) of zero was requested.
    ZeroScale,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::InvalidData { context } => write!(f, "invalid data: {context}"),
            GridError::KeyOverflow {
                dims,
                bits_required,
            } => write!(
                f,
                "grid key overflow: {dims} dimensions need {bits_required} bits (max 128); \
                 reduce the per-dimension scale"
            ),
            GridError::ZeroScale => write!(f, "scale (intervals per dimension) must be >= 1"),
        }
    }
}

impl std::error::Error for GridError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GridError>;
