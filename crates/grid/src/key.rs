//! Packed grid keys.
//!
//! A grid cell is identified by its integer coordinate in every dimension.
//! Instead of hashing a `Vec<u32>` per cell (one heap allocation per key),
//! the coordinates are packed into a single `u128`, using
//! `ceil(log2(intervals_j))` bits for dimension `j`. For the paper's default
//! configuration (scale 128 → 7 bits per dimension) this supports up to 18
//! dimensions; lower scales allow proportionally more dimensions, e.g. the
//! 33-dimensional Dermatology dataset fits at scale ≤ 16.

use adawave_api::PayloadReader;

use crate::{GridError, Result};

/// Encodes/decodes per-dimension cell coordinates into a packed `u128` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCodec {
    bits: Vec<u32>,
    intervals: Vec<u32>,
    offsets: Vec<u32>,
}

impl KeyCodec {
    /// Build a codec for the given number of intervals per dimension.
    ///
    /// Returns [`GridError::KeyOverflow`] if the total number of bits
    /// exceeds 128 and [`GridError::ZeroScale`] if any dimension has zero
    /// intervals.
    pub fn new(intervals: &[u32]) -> Result<Self> {
        if intervals.is_empty() {
            return Err(GridError::InvalidData {
                context: "codec needs at least one dimension".to_string(),
            });
        }
        let mut bits = Vec::with_capacity(intervals.len());
        for &m in intervals {
            if m == 0 {
                return Err(GridError::ZeroScale);
            }
            // Number of bits needed to represent coordinates 0..m-1.
            let b = if m == 1 {
                1
            } else {
                32 - (m - 1).leading_zeros()
            };
            bits.push(b);
        }
        let total: u32 = bits.iter().sum();
        if total > 128 {
            return Err(GridError::KeyOverflow {
                dims: intervals.len(),
                bits_required: total,
            });
        }
        // Offsets: dimension j occupies bits [offset_j, offset_j + bits_j).
        let mut offsets = Vec::with_capacity(bits.len());
        let mut acc = 0;
        for &b in &bits {
            offsets.push(acc);
            acc += b;
        }
        Ok(Self {
            bits,
            intervals: intervals.to_vec(),
            offsets,
        })
    }

    /// Build a codec with the same number of intervals in every dimension.
    pub fn uniform(dims: usize, intervals: u32) -> Result<Self> {
        Self::new(&vec![intervals; dims])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.bits.len()
    }

    /// Number of intervals in dimension `j`.
    pub fn intervals(&self, j: usize) -> u32 {
        self.intervals[j]
    }

    /// Intervals per dimension.
    pub fn all_intervals(&self) -> &[u32] {
        &self.intervals
    }

    /// Total number of cells in the (dense) grid, saturating at `u128::MAX`.
    pub fn dense_cell_count(&self) -> u128 {
        self.intervals
            .iter()
            .fold(1u128, |acc, &m| acc.saturating_mul(m as u128))
    }

    /// Pack per-dimension coordinates into a key.
    ///
    /// # Panics
    /// Panics (debug assertion) if a coordinate is out of range or the
    /// number of coordinates does not match the codec dimensionality.
    pub fn pack(&self, coords: &[u32]) -> u128 {
        debug_assert_eq!(coords.len(), self.dims(), "pack: dimensionality mismatch");
        let mut key = 0u128;
        for (j, &c) in coords.iter().enumerate() {
            debug_assert!(
                c < self.intervals[j],
                "pack: coordinate {c} out of range for dimension {j}"
            );
            key |= (c as u128) << self.offsets[j];
        }
        key
    }

    /// Contribution of coordinate `c` in dimension `j` to a packed key.
    /// OR-ing `pack_coord(j, c_j)` over all dimensions equals
    /// [`pack`](Self::pack) of the full coordinate vector — this is the
    /// allocation-free streaming form used by the point-quantization hot
    /// loop.
    #[inline]
    pub fn pack_coord(&self, j: usize, c: u32) -> u128 {
        debug_assert!(
            c < self.intervals[j],
            "pack_coord: coordinate {c} out of range for dimension {j}"
        );
        (c as u128) << self.offsets[j]
    }

    /// Unpack a key into per-dimension coordinates.
    pub fn unpack(&self, key: u128) -> Vec<u32> {
        let mut coords = Vec::with_capacity(self.dims());
        for j in 0..self.dims() {
            let mask: u128 = if self.bits[j] == 128 {
                u128::MAX
            } else {
                (1u128 << self.bits[j]) - 1
            };
            coords.push(((key >> self.offsets[j]) & mask) as u32);
        }
        coords
    }

    /// Extract the coordinate of a single dimension from a key.
    pub fn coordinate(&self, key: u128, j: usize) -> u32 {
        let mask: u128 = if self.bits[j] == 128 {
            u128::MAX
        } else {
            (1u128 << self.bits[j]) - 1
        };
        ((key >> self.offsets[j]) & mask) as u32
    }

    /// Replace the coordinate of dimension `j` in a key.
    pub fn with_coordinate(&self, key: u128, j: usize, coord: u32) -> u128 {
        debug_assert!(coord < self.intervals[j] || self.intervals[j] == 0);
        let mask: u128 = if self.bits[j] == 128 {
            u128::MAX
        } else {
            (1u128 << self.bits[j]) - 1
        };
        (key & !(mask << self.offsets[j])) | ((coord as u128) << self.offsets[j])
    }

    /// Append the codec to an artifact payload as one `intervals <m...>`
    /// line. The bit layout (and therefore every packed key) is a pure
    /// function of the interval counts, so this is the codec's entire
    /// state.
    pub fn serialize_into(&self, out: &mut String) {
        out.push_str("intervals");
        for &m in &self.intervals {
            out.push(' ');
            out.push_str(&m.to_string());
        }
        out.push('\n');
    }

    /// Read a codec written by [`serialize_into`](Self::serialize_into):
    /// exactly `dims` interval counts, re-validated through
    /// [`KeyCodec::new`] (non-zero intervals, ≤ 128 total bits).
    pub fn deserialize_from(
        reader: &mut PayloadReader<'_>,
        dims: usize,
    ) -> std::result::Result<Self, String> {
        let intervals: Vec<u32> = reader.list("intervals", dims)?;
        KeyCodec::new(&intervals).map_err(|e| e.to_string())
    }

    /// A codec describing the grid after `levels` dyadic downsamplings
    /// (each level halves every dimension, rounding up). This is the
    /// transformed feature space the connected-component step runs in.
    pub fn downsampled(&self, levels: u32) -> Result<KeyCodec> {
        let intervals: Vec<u32> = self
            .intervals
            .iter()
            .map(|&m| {
                // A u32 interval count reaches 1 after at most 32 halvings,
                // so larger `levels` need no further iterations.
                let mut v = m;
                for _ in 0..levels.min(32) {
                    v = v.div_ceil(2).max(1);
                }
                v
            })
            .collect();
        KeyCodec::new(&intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let codec = KeyCodec::new(&[128, 128, 16]).unwrap();
        let coords = vec![127u32, 0, 15];
        let key = codec.pack(&coords);
        assert_eq!(codec.unpack(key), coords);
    }

    #[test]
    fn distinct_coords_give_distinct_keys() {
        let codec = KeyCodec::uniform(2, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                assert!(seen.insert(codec.pack(&[x, y])));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn bits_computation() {
        // 1 interval -> 1 bit, 2 -> 1 bit, 3 -> 2 bits, 128 -> 7 bits, 129 -> 8 bits.
        assert!(KeyCodec::new(&[1]).is_ok());
        let c = KeyCodec::new(&[2, 3, 128, 129]).unwrap();
        assert_eq!(c.pack(&[1, 2, 127, 128]) >> 1 & 0b11, 2);
    }

    #[test]
    fn overflow_detection() {
        // 19 dims at 128 intervals = 133 bits > 128.
        assert!(matches!(
            KeyCodec::uniform(19, 128),
            Err(GridError::KeyOverflow { .. })
        ));
        // 18 dims at 128 intervals = 126 bits: fine.
        assert!(KeyCodec::uniform(18, 128).is_ok());
        // 33 dims at 16 intervals = 132 bits: overflow...
        assert!(KeyCodec::uniform(33, 16).is_err());
        // ...but 33 dims at 8 intervals = 99 bits fits.
        assert!(KeyCodec::uniform(33, 8).is_ok());
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(matches!(KeyCodec::new(&[4, 0]), Err(GridError::ZeroScale)));
        assert!(KeyCodec::new(&[]).is_err());
    }

    #[test]
    fn coordinate_and_with_coordinate() {
        let codec = KeyCodec::new(&[64, 64, 64]).unwrap();
        let key = codec.pack(&[10, 20, 30]);
        assert_eq!(codec.coordinate(key, 0), 10);
        assert_eq!(codec.coordinate(key, 1), 20);
        assert_eq!(codec.coordinate(key, 2), 30);
        let key2 = codec.with_coordinate(key, 1, 5);
        assert_eq!(codec.unpack(key2), vec![10, 5, 30]);
        // original key unchanged in other dims
        assert_eq!(codec.coordinate(key2, 0), 10);
        assert_eq!(codec.coordinate(key2, 2), 30);
    }

    #[test]
    fn downsampled_halves_intervals() {
        let codec = KeyCodec::new(&[128, 100, 3]).unwrap();
        let down = codec.downsampled(1).unwrap();
        assert_eq!(down.all_intervals(), &[64, 50, 2]);
        let down2 = codec.downsampled(2).unwrap();
        assert_eq!(down2.all_intervals(), &[32, 25, 1]);
        let down7 = codec.downsampled(7).unwrap();
        assert_eq!(down7.all_intervals(), &[1, 1, 1]);
    }

    #[test]
    fn dense_cell_count() {
        let codec = KeyCodec::new(&[128, 128]).unwrap();
        assert_eq!(codec.dense_cell_count(), 128 * 128);
        let big = KeyCodec::uniform(18, 128).unwrap();
        assert_eq!(big.dense_cell_count(), (128u128).pow(18));
    }

    #[test]
    fn serde_round_trip_preserves_packing() {
        let codec = KeyCodec::new(&[128, 100, 3]).unwrap();
        let mut payload = String::new();
        codec.serialize_into(&mut payload);
        assert_eq!(payload, "intervals 128 100 3\n");
        let mut reader = PayloadReader::new(&payload);
        let back = KeyCodec::deserialize_from(&mut reader, 3).unwrap();
        assert_eq!(back, codec);
        let coords = [127u32, 99, 2];
        assert_eq!(back.pack(&coords), codec.pack(&coords));
    }

    #[test]
    fn serde_rejects_invalid_interval_lines() {
        for (payload, dims) in [
            ("intervals 4 0\n", 2),     // zero intervals
            ("intervals 4\n", 2),       // wrong arity
            ("intervals 128 128\n", 1), // wrong arity the other way
            ("wrong 4 4\n", 2),         // wrong field name
        ] {
            let mut reader = PayloadReader::new(payload);
            assert!(
                KeyCodec::deserialize_from(&mut reader, dims).is_err(),
                "{payload:?}"
            );
        }
        // 19 x 128 intervals needs 133 bits: the overflow check still runs.
        let payload = format!("intervals{}\n", " 128".repeat(19));
        let mut reader = PayloadReader::new(&payload);
        let err = KeyCodec::deserialize_from(&mut reader, 19).unwrap_err();
        assert!(err.contains("overflow"), "{err}");
    }

    #[test]
    fn uniform_constructor() {
        let c = KeyCodec::uniform(5, 32).unwrap();
        assert_eq!(c.dims(), 5);
        assert!(c.all_intervals().iter().all(|&m| m == 32));
    }
}
