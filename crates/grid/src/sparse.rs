//! The sparse `{grid id: density}` map that realizes the paper's
//! "only store the grids with non-zero density" strategy.

use std::collections::HashMap;

use adawave_api::{f64_from_hex, f64_to_hex, PayloadReader};

/// A sparse grid: packed cell key → density (or smoothed coefficient).
///
/// Densities start as point counts during quantization and become real
/// valued after the wavelet transform.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseGrid {
    cells: HashMap<u128, f64>,
}

impl SparseGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self {
            cells: HashMap::new(),
        }
    }

    /// An empty grid with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            cells: HashMap::with_capacity(capacity),
        }
    }

    /// Number of occupied (stored) cells — the `m` in the paper's `O(nm)`.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is stored.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Add `density` to a cell (inserting it if absent).
    pub fn add(&mut self, key: u128, density: f64) {
        *self.cells.entry(key).or_insert(0.0) += density;
    }

    /// Increment a cell's count by one (Algorithm 2, line 7/10).
    pub fn increment(&mut self, key: u128) {
        self.add(key, 1.0);
    }

    /// Overwrite a cell's density.
    pub fn set(&mut self, key: u128, density: f64) {
        self.cells.insert(key, density);
    }

    /// Append the grid to an artifact payload: a `cells N` line followed
    /// by one `<key:032x> <density-hex>` line per occupied cell in
    /// ascending key order. Sorting makes the dump canonical — two grids
    /// with equal contents serialize to identical bytes regardless of hash
    /// map iteration order — and the hex densities make the round trip
    /// bit-exact.
    pub fn serialize_into(&self, out: &mut String) {
        // audit:allow(nondeterministic-iteration) keys are collected and sorted on the next line
        let mut sorted_keys: Vec<u128> = self.cells.keys().copied().collect();
        sorted_keys.sort_unstable();
        out.push_str(&format!("cells {}\n", sorted_keys.len()));
        for key in sorted_keys {
            out.push_str(&format!("{key:032x} {}\n", f64_to_hex(self.cells[&key])));
        }
    }

    /// The canonical payload text of [`serialize_into`](Self::serialize_into)
    /// on its own.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.serialize_into(&mut out);
        out
    }

    /// Read a grid written by [`serialize_into`](Self::serialize_into).
    /// Densities are restored verbatim ([`set`](Self::set), not
    /// [`add`](Self::add)), so the result equals the original bit for bit.
    pub fn deserialize_from(reader: &mut PayloadReader<'_>) -> Result<Self, String> {
        let count: usize = reader.scalar("cells")?;
        let mut grid = SparseGrid::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let line = reader.line()?;
            let (key_hex, density_hex) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad cell line '{line}'"))?;
            let key = u128::from_str_radix(key_hex, 16)
                .map_err(|_| format!("bad cell key '{key_hex}'"))?;
            let density = f64_from_hex(density_hex)
                .ok_or_else(|| format!("bad cell density bits '{density_hex}'"))?;
            grid.set(key, density);
        }
        Ok(grid)
    }

    /// Parse a payload produced by [`serialize`](Self::serialize).
    pub fn deserialize(payload: &str) -> Result<Self, String> {
        Self::deserialize_from(&mut PayloadReader::new(payload))
    }

    /// Density of a cell, 0.0 if not stored.
    pub fn density(&self, key: u128) -> f64 {
        self.cells.get(&key).copied().unwrap_or(0.0)
    }

    /// Whether a cell is stored.
    pub fn contains(&self, key: u128) -> bool {
        self.cells.contains_key(&key)
    }

    /// Remove a cell, returning its density if it was stored.
    pub fn remove(&mut self, key: u128) -> Option<f64> {
        self.cells.remove(&key)
    }

    /// Iterate over `(key, density)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, f64)> + '_ {
        // audit:allow(nondeterministic-iteration) documented unspecified-order accessor; result-path consumers sort or accumulate per key
        self.cells.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate over stored keys.
    pub fn keys(&self) -> impl Iterator<Item = u128> + '_ {
        // audit:allow(nondeterministic-iteration) documented unspecified-order accessor; result-path consumers sort or accumulate per key
        self.cells.keys().copied()
    }

    /// Total mass (sum of densities).
    pub fn total_mass(&self) -> f64 {
        // Densities are summed in ascending key order: float addition is
        // not associative, so a hash-order sum could differ in the last
        // bits from run to run.
        // audit:allow(nondeterministic-iteration) collected and sorted by key before the order-sensitive float sum
        let mut keyed: Vec<(u128, f64)> = self.cells.iter().map(|(&k, &v)| (k, v)).collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        keyed.into_iter().map(|(_, v)| v).sum()
    }

    /// Maximum density over stored cells (0.0 for an empty grid).
    pub fn max_density(&self) -> f64 {
        // audit:allow(nondeterministic-iteration) max over finite densities is order-insensitive
        self.cells.values().cloned().fold(0.0, f64::max)
    }

    /// Densities sorted in descending order — the curve that the adaptive
    /// threshold (Fig. 6 / Algorithm 4) is fitted to.
    pub fn sorted_densities(&self) -> Vec<f64> {
        // audit:allow(nondeterministic-iteration) collected then fully sorted on the next line
        let mut d: Vec<f64> = self.cells.values().cloned().collect();
        d.sort_by(|a, b| b.total_cmp(a));
        d
    }

    /// Remove every cell with density strictly below `threshold`; returns
    /// the number of removed cells.
    pub fn filter_below(&mut self, threshold: f64) -> usize {
        let before = self.cells.len();
        self.cells.retain(|_, v| *v >= threshold);
        before - self.cells.len()
    }

    /// Remove every cell whose |density| is below `epsilon` (the
    /// "remove wavelet coefficients close to zero" step).
    pub fn drop_near_zero(&mut self, epsilon: f64) -> usize {
        let before = self.cells.len();
        self.cells.retain(|_, v| v.abs() >= epsilon);
        before - self.cells.len()
    }

    /// Add every cell of `other` into this grid, summing the densities of
    /// shared cells.
    ///
    /// The sparse grid is an additive, order-insensitive sufficient
    /// statistic of the data (per-cell point counts), so merging the grids
    /// of two disjoint point sets yields exactly the grid of their union —
    /// this is what the parallel quantization shards and the streaming
    /// ingestion layer (`adawave-stream`) rely on.
    pub fn merge(&mut self, other: &SparseGrid) {
        self.cells.reserve(other.cells.len());
        // audit:allow(nondeterministic-iteration) per-key additive accumulation; every key is touched exactly once, any order
        for (&key, &density) in &other.cells {
            *self.cells.entry(key).or_insert(0.0) += density;
        }
    }

    /// Keep only cells present in `keys` (used when mapping clusters back).
    pub fn retain_keys(&mut self, keys: &std::collections::HashSet<u128>) {
        self.cells.retain(|k, _| keys.contains(k));
    }

    /// Keep only the `budget` cells with the highest |density|, removing the
    /// rest; returns the number of removed cells.
    ///
    /// This is the memory guard used by the sparse per-dimension wavelet
    /// transform: in high dimensions the scatter of the smoothing kernel can
    /// otherwise multiply the number of occupied cells by the kernel support
    /// once per dimension. Pruning keeps the densest cells, which is exactly
    /// the part of the feature space the clustering step cares about.
    pub fn prune_to_top(&mut self, budget: usize) -> usize {
        if self.cells.len() <= budget {
            return 0;
        }
        if budget == 0 {
            let removed = self.cells.len();
            self.cells.clear();
            return removed;
        }
        // audit:allow(nondeterministic-iteration) only the select_nth cut-off value is used; it is the same for any collection order
        let mut magnitudes: Vec<f64> = self.cells.values().map(|v| v.abs()).collect();
        // The cut-off is the budget-th largest magnitude.
        let cut_index = magnitudes.len() - budget;
        let (_, cutoff, _) = magnitudes.select_nth_unstable_by(cut_index, |a, b| a.total_cmp(b));
        let cutoff = *cutoff;
        let before = self.cells.len();
        // Keep everything strictly above the cut-off, then fill the remaining
        // slots with ties so exactly `budget` cells survive regardless of how
        // many cells share the cut-off magnitude. Ties are resolved by key
        // (smallest first) rather than map iteration order, so the surviving
        // set is a pure function of the grid content.
        let mut slots_for_ties = budget;
        // audit:allow(nondeterministic-iteration) counting predicate matches is order-insensitive
        for v in self.cells.values() {
            if v.abs() > cutoff {
                slots_for_ties -= 1;
            }
        }
        let mut tie_keys: Vec<u128> = self
            // audit:allow(nondeterministic-iteration) tie keys are collected then sorted below
            .cells
            .iter()
            .filter(|(_, v)| v.abs() == cutoff)
            .map(|(&k, _)| k)
            .collect();
        tie_keys.sort_unstable();
        tie_keys.truncate(slots_for_ties);
        let kept_ties: std::collections::HashSet<u128> = tie_keys.into_iter().collect();
        self.cells.retain(|k, v| {
            let mag = v.abs();
            mag > cutoff || (mag == cutoff && kept_ties.contains(k))
        });
        before - self.cells.len()
    }
}

impl FromIterator<(u128, f64)> for SparseGrid {
    /// Build from `(key, density)` pairs, summing duplicates.
    fn from_iter<T: IntoIterator<Item = (u128, f64)>>(iter: T) -> Self {
        let mut grid = Self::new();
        for (key, density) in iter {
            grid.add(key, density);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_density() {
        let mut g = SparseGrid::new();
        assert!(g.is_empty());
        g.increment(42);
        g.increment(42);
        g.add(7, 2.5);
        assert_eq!(g.density(42), 2.0);
        assert_eq!(g.density(7), 2.5);
        assert_eq!(g.density(999), 0.0);
        assert_eq!(g.occupied_cells(), 2);
        assert!(g.contains(42));
        assert!(!g.contains(999));
    }

    #[test]
    fn total_mass_and_max() {
        let g: SparseGrid = [(1u128, 3.0), (2, 5.0), (3, 1.0)].into_iter().collect();
        assert_eq!(g.total_mass(), 9.0);
        assert_eq!(g.max_density(), 5.0);
    }

    #[test]
    fn empty_grid_statistics() {
        let g = SparseGrid::new();
        assert_eq!(g.total_mass(), 0.0);
        assert_eq!(g.max_density(), 0.0);
        assert!(g.sorted_densities().is_empty());
    }

    #[test]
    fn sorted_densities_descending() {
        let g: SparseGrid = [(1u128, 3.0), (2, 5.0), (3, 1.0), (4, 4.0)]
            .into_iter()
            .collect();
        assert_eq!(g.sorted_densities(), vec![5.0, 4.0, 3.0, 1.0]);
    }

    #[test]
    fn filter_below_removes_and_counts() {
        let mut g: SparseGrid = [(1u128, 3.0), (2, 5.0), (3, 1.0), (4, 4.0)]
            .into_iter()
            .collect();
        let removed = g.filter_below(3.5);
        assert_eq!(removed, 2);
        assert_eq!(g.occupied_cells(), 2);
        assert!(g.contains(2));
        assert!(g.contains(4));
        // threshold equal to a density keeps that cell (>= comparison)
        let mut g2: SparseGrid = [(1u128, 3.0)].into_iter().collect();
        assert_eq!(g2.filter_below(3.0), 0);
    }

    #[test]
    fn drop_near_zero_uses_absolute_value() {
        let mut g: SparseGrid = [(1u128, 0.001), (2, -0.002), (3, 1.0), (4, -2.0)]
            .into_iter()
            .collect();
        let removed = g.drop_near_zero(0.01);
        assert_eq!(removed, 2);
        assert!(g.contains(3));
        assert!(g.contains(4));
    }

    #[test]
    fn duplicate_keys_sum() {
        let g = SparseGrid::from_iter([(9u128, 1.0), (9, 2.0), (9, 3.0)]);
        assert_eq!(g.occupied_cells(), 1);
        assert_eq!(g.density(9), 6.0);
    }

    #[test]
    fn merge_sums_shared_cells_and_adopts_new_ones() {
        let mut a: SparseGrid = [(1u128, 2.0), (2, 3.0)].into_iter().collect();
        let b: SparseGrid = [(2u128, 4.0), (5, 1.5)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.occupied_cells(), 3);
        assert_eq!(a.density(1), 2.0);
        assert_eq!(a.density(2), 7.0);
        assert_eq!(a.density(5), 1.5);
        // Merging an empty grid is a no-op, and into an empty grid a copy.
        a.merge(&SparseGrid::new());
        assert_eq!(a.occupied_cells(), 3);
        let mut empty = SparseGrid::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn merge_of_disjoint_partitions_reproduces_the_whole() {
        // Counts are integers, so any partition of the increments merges
        // back to exactly the one-shot grid.
        let keys: Vec<u128> = (0..50).map(|i| (i * 7) % 23).collect();
        let mut whole = SparseGrid::new();
        for &k in &keys {
            whole.increment(k);
        }
        let mut left = SparseGrid::new();
        let mut right = SparseGrid::new();
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                left.increment(k);
            } else {
                right.increment(k);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn remove_and_retain() {
        let mut g: SparseGrid = [(1u128, 1.0), (2, 2.0), (3, 3.0)].into_iter().collect();
        assert_eq!(g.remove(2), Some(2.0));
        assert_eq!(g.remove(2), None);
        let keep: std::collections::HashSet<u128> = [3u128].into_iter().collect();
        g.retain_keys(&keep);
        assert_eq!(g.occupied_cells(), 1);
        assert!(g.contains(3));
    }

    #[test]
    fn set_overwrites() {
        let mut g = SparseGrid::new();
        g.add(5, 2.0);
        g.set(5, 10.0);
        assert_eq!(g.density(5), 10.0);
    }

    #[test]
    fn serde_round_trip_is_bit_exact_and_canonical() {
        let mut g = SparseGrid::new();
        g.set(u128::MAX, -0.0);
        g.set(0, 1.0e-300);
        g.set(42, 3.5);
        g.set(7, f64::MAX);
        let payload = g.serialize();
        // Canonical: keys ascend, so equal grids dump identical bytes.
        assert!(payload.starts_with("cells 4\n"));
        let keys: Vec<&str> = payload
            .lines()
            .skip(1)
            .map(|l| l.split_once(' ').unwrap().0)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let back = SparseGrid::deserialize(&payload).unwrap();
        assert_eq!(back.occupied_cells(), 4);
        for (key, density) in g.iter() {
            assert_eq!(back.density(key).to_bits(), density.to_bits(), "{key}");
        }
        // A second serialization of the restored grid is byte-identical.
        assert_eq!(back.serialize(), payload);
    }

    #[test]
    fn serde_rejects_malformed_payloads() {
        for (payload, needle) in [
            ("", "truncated"),
            ("cells banana\n", "banana"),
            ("cells 2\n0000 3ff0000000000000\n", "truncated"),
            ("cells 1\nnospace\n", "bad cell line"),
            ("cells 1\nzz 3ff0000000000000\n", "bad cell key"),
            ("cells 1\n00000000000000000000000000000001 zz\n", "density"),
        ] {
            let err = SparseGrid::deserialize(payload).unwrap_err();
            assert!(err.contains(needle), "{payload:?} -> {err}");
        }
    }

    #[test]
    fn prune_to_top_keeps_the_densest_cells() {
        let mut g: SparseGrid = (0u128..100).map(|k| (k, k as f64)).collect();
        let removed = g.prune_to_top(10);
        assert_eq!(removed, 90);
        assert_eq!(g.occupied_cells(), 10);
        for k in 90u128..100 {
            assert!(g.contains(k), "cell {k} should survive");
        }
    }

    #[test]
    fn prune_to_top_is_a_noop_within_budget() {
        let mut g: SparseGrid = [(1u128, 1.0), (2, 2.0)].into_iter().collect();
        assert_eq!(g.prune_to_top(5), 0);
        assert_eq!(g.occupied_cells(), 2);
    }

    #[test]
    fn prune_to_top_handles_ties_exactly() {
        // 20 cells of identical density: exactly `budget` must survive,
        // and which ones is determined by key order (smallest first), not
        // by hash-map iteration order.
        let mut g: SparseGrid = (0u128..20).map(|k| (k, 1.0)).collect();
        assert_eq!(g.prune_to_top(7), 13);
        assert_eq!(g.occupied_cells(), 7);
        for k in 0u128..7 {
            assert!(g.contains(k), "tie {k} should survive deterministically");
        }
    }

    #[test]
    fn prune_to_top_uses_magnitude_for_negative_coefficients() {
        let mut g: SparseGrid = [(1u128, -5.0), (2, 0.1), (3, 4.0), (4, -0.2)]
            .into_iter()
            .collect();
        g.prune_to_top(2);
        assert!(g.contains(1));
        assert!(g.contains(3));
    }

    #[test]
    fn prune_to_top_zero_budget_clears() {
        let mut g: SparseGrid = [(1u128, 1.0), (2, 2.0)].into_iter().collect();
        assert_eq!(g.prune_to_top(0), 2);
        assert!(g.is_empty());
    }
}
