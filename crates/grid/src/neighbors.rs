//! Neighborhood definitions for grid cells.
//!
//! Two occupied cells belong to the same cluster when they are adjacent; the
//! paper's "connected components in the transformed feature space" step
//! (Algorithm 1, line 4) needs a definition of adjacency. We support the two
//! standard choices.

use crate::KeyCodec;

/// Which cells count as neighbors of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Connectivity {
    /// Von Neumann neighborhood: cells differing by ±1 in exactly one
    /// dimension (2d neighbors). This is the default used by WaveCluster.
    #[default]
    Face,
    /// Moore neighborhood: cells differing by at most 1 in every dimension
    /// (3^d − 1 neighbors). More permissive; useful in sparse high-d grids.
    Moore,
}

impl Connectivity {
    /// All variants, for ablation sweeps.
    pub const ALL: [Connectivity; 2] = [Connectivity::Face, Connectivity::Moore];

    /// Number of neighbors of an interior cell in `dims` dimensions.
    pub fn neighbor_count(&self, dims: usize) -> usize {
        match self {
            Connectivity::Face => 2 * dims,
            Connectivity::Moore => 3usize.pow(dims as u32) - 1,
        }
    }

    /// Collect the keys of all in-range neighbors of `key`.
    pub fn neighbors(&self, codec: &KeyCodec, key: u128) -> Vec<u128> {
        let coords = codec.unpack(key);
        match self {
            Connectivity::Face => {
                let mut out = Vec::with_capacity(2 * coords.len());
                for (j, &c) in coords.iter().enumerate() {
                    if c > 0 {
                        out.push(codec.with_coordinate(key, j, c - 1));
                    }
                    if c + 1 < codec.intervals(j) {
                        out.push(codec.with_coordinate(key, j, c + 1));
                    }
                }
                out
            }
            Connectivity::Moore => {
                let dims = coords.len();
                let mut out = Vec::new();
                // Iterate over all offset combinations in {-1, 0, 1}^d except all-zero.
                let total = 3usize.pow(dims as u32);
                'outer: for idx in 0..total {
                    let mut offset_code = idx;
                    let mut neighbor = coords.clone();
                    let mut all_zero = true;
                    for (j, nj) in neighbor.iter_mut().enumerate() {
                        let offset = (offset_code % 3) as i64 - 1;
                        offset_code /= 3;
                        if offset != 0 {
                            all_zero = false;
                        }
                        let v = *nj as i64 + offset;
                        if v < 0 || v >= codec.intervals(j) as i64 {
                            continue 'outer;
                        }
                        *nj = v as u32;
                    }
                    if all_zero {
                        continue;
                    }
                    out.push(codec.pack(&neighbor));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_neighbor_count_interior() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let key = codec.pack(&[4, 4]);
        let n = Connectivity::Face.neighbors(&codec, key);
        assert_eq!(n.len(), 4);
        assert_eq!(Connectivity::Face.neighbor_count(2), 4);
    }

    #[test]
    fn face_neighbors_at_corner_are_clipped() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let key = codec.pack(&[0, 0]);
        let n = Connectivity::Face.neighbors(&codec, key);
        assert_eq!(n.len(), 2);
        let coords: Vec<Vec<u32>> = n.iter().map(|&k| codec.unpack(k)).collect();
        assert!(coords.contains(&vec![1, 0]));
        assert!(coords.contains(&vec![0, 1]));
    }

    #[test]
    fn moore_neighbor_count_interior() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let key = codec.pack(&[4, 4]);
        let n = Connectivity::Moore.neighbors(&codec, key);
        assert_eq!(n.len(), 8);
        assert_eq!(Connectivity::Moore.neighbor_count(3), 26);
    }

    #[test]
    fn moore_neighbors_at_corner() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let key = codec.pack(&[0, 0]);
        let n = Connectivity::Moore.neighbors(&codec, key);
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn moore_includes_face_neighbors() {
        let codec = KeyCodec::uniform(3, 8).unwrap();
        let key = codec.pack(&[3, 4, 5]);
        let face: std::collections::HashSet<u128> = Connectivity::Face
            .neighbors(&codec, key)
            .into_iter()
            .collect();
        let moore: std::collections::HashSet<u128> = Connectivity::Moore
            .neighbors(&codec, key)
            .into_iter()
            .collect();
        assert!(face.is_subset(&moore));
        assert_eq!(face.len(), 6);
        assert_eq!(moore.len(), 26);
    }

    #[test]
    fn neighbors_never_include_self() {
        let codec = KeyCodec::uniform(2, 4).unwrap();
        for x in 0..4u32 {
            for y in 0..4u32 {
                let key = codec.pack(&[x, y]);
                for conn in Connectivity::ALL {
                    assert!(!conn.neighbors(&codec, key).contains(&key));
                }
            }
        }
    }

    #[test]
    fn neighborhood_is_symmetric() {
        let codec = KeyCodec::uniform(2, 8).unwrap();
        let a = codec.pack(&[2, 3]);
        let b = codec.pack(&[2, 4]);
        for conn in Connectivity::ALL {
            assert!(conn.neighbors(&codec, a).contains(&b));
            assert!(conn.neighbors(&codec, b).contains(&a));
        }
    }

    #[test]
    fn single_interval_dimension_has_no_neighbors_in_that_axis() {
        let codec = KeyCodec::new(&[1, 4]).unwrap();
        let key = codec.pack(&[0, 2]);
        let n = Connectivity::Face.neighbors(&codec, key);
        assert_eq!(n.len(), 2); // only along the second axis
    }
}
