//! Property-based tests for the grid-labeling data structure.

use adawave_api::PointMatrix;
use adawave_grid::{
    connected_components, Connectivity, KeyCodec, Quantizer, SparseGrid, UnionFind,
};
use adawave_runtime::Runtime;
use proptest::prelude::*;

fn points_strategy(dims: usize) -> impl Strategy<Value = PointMatrix> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dims), 2..80)
        .prop_map(|rows| PointMatrix::from_rows(rows).expect("constant-width rows"))
}

proptest! {
    #[test]
    fn key_pack_unpack_roundtrip(
        coords in prop::collection::vec(0u32..128, 1..10),
    ) {
        let intervals: Vec<u32> = coords.iter().map(|_| 128).collect();
        let codec = KeyCodec::new(&intervals).unwrap();
        let key = codec.pack(&coords);
        prop_assert_eq!(codec.unpack(key), coords);
    }

    #[test]
    fn key_packing_is_injective(
        a in prop::collection::vec(0u32..64, 4),
        b in prop::collection::vec(0u32..64, 4),
    ) {
        let codec = KeyCodec::uniform(4, 64).unwrap();
        let ka = codec.pack(&a);
        let kb = codec.pack(&b);
        prop_assert_eq!(ka == kb, a == b);
    }

    #[test]
    fn quantizer_total_mass_equals_point_count(points in points_strategy(3)) {
        let quantizer = Quantizer::fit(points.view(), 16).unwrap();
        let (grid, assignment) = quantizer.quantize(points.view());
        prop_assert_eq!(assignment.len(), points.len());
        prop_assert!((grid.total_mass() - points.len() as f64).abs() < 1e-9);
        prop_assert!(grid.occupied_cells() <= points.len());
    }

    #[test]
    fn quantizer_cells_are_in_range(points in points_strategy(2)) {
        let quantizer = Quantizer::fit(points.view(), 32).unwrap();
        for p in points.rows() {
            let coords = quantizer.cell_coords(p);
            for (j, &c) in coords.iter().enumerate() {
                prop_assert!(c < quantizer.codec().intervals(j));
            }
        }
    }

    #[test]
    fn quantizer_is_order_insensitive(points in points_strategy(2), seed in 0u64..1000) {
        let quantizer = Quantizer::fit(points.view(), 16).unwrap();
        let (grid_a, _) = quantizer.quantize(points.view());
        // Deterministic shuffle derived from the seed.
        let mut shuffled = points.clone();
        let n = shuffled.len();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state as usize) % (i + 1);
            shuffled.swap_rows(i, j);
        }
        let (grid_b, _) = quantizer.quantize(shuffled.view());
        prop_assert_eq!(grid_a, grid_b);
    }

    #[test]
    fn quantize_is_thread_count_invariant(
        points in points_strategy(2),
        threads in 1usize..9,
        tile in 1usize..3,
    ) {
        // Tile the random rows so some cases cross the parallel shard size
        // while others stay on the inline path — both must agree with the
        // sequential runtime exactly.
        let mut tiled = PointMatrix::new(2);
        for rep in 0..(tile * 200) {
            let jitter = rep as f64 * 1e-3;
            for row in points.rows() {
                tiled.push_row(&[row[0] + jitter, row[1] - jitter]);
            }
        }
        let quantizer = Quantizer::fit(tiled.view(), 16).unwrap();
        let (grid_seq, keys_seq) = quantizer.quantize_with(tiled.view(), Runtime::sequential());
        let (grid_par, keys_par) =
            quantizer.quantize_with(tiled.view(), Runtime::with_threads(threads));
        prop_assert_eq!(grid_seq, grid_par);
        prop_assert_eq!(keys_seq, keys_par);
    }

    #[test]
    fn union_find_component_count_decreases_monotonically(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..100),
    ) {
        let mut uf = UnionFind::new(30);
        let mut prev = uf.component_count();
        for (a, b) in edges {
            uf.union(a, b);
            let now = uf.component_count();
            prop_assert!(now <= prev);
            prop_assert!(now >= 1);
            prev = now;
        }
    }

    #[test]
    fn union_find_connected_is_equivalence(
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
        probe in (0usize..20, 0usize..20, 0usize..20),
    ) {
        let mut uf = UnionFind::new(20);
        for (a, b) in edges {
            uf.union(a, b);
        }
        let (x, y, z) = probe;
        // Reflexive, symmetric, transitive.
        prop_assert!(uf.connected(x, x));
        prop_assert_eq!(uf.connected(x, y), uf.connected(y, x));
        if uf.connected(x, y) && uf.connected(y, z) {
            prop_assert!(uf.connected(x, z));
        }
    }

    #[test]
    fn components_partition_the_cells(
        coords in prop::collection::vec((0u32..12, 0u32..12), 1..60),
    ) {
        let codec = KeyCodec::uniform(2, 12).unwrap();
        let grid: SparseGrid = coords
            .iter()
            .map(|&(x, y)| (codec.pack(&[x, y]), 1.0))
            .collect();
        for conn in Connectivity::ALL {
            let labels = connected_components(&grid, &codec, conn);
            // Every occupied cell is labeled with a valid id.
            prop_assert_eq!(labels.labeled_cells(), grid.occupied_cells());
            for (key, id) in labels.iter() {
                prop_assert!(grid.contains(key));
                prop_assert!(id < labels.cluster_count());
            }
            // Cluster masses sum to the grid mass.
            let mass_sum: f64 = (0..labels.cluster_count())
                .map(|c| labels.cluster_mass(c))
                .sum();
            prop_assert!((mass_sum - grid.total_mass()).abs() < 1e-9);
            // Cluster cell counts sum to the number of occupied cells.
            let cell_sum: usize = (0..labels.cluster_count())
                .map(|c| labels.cluster_cells(c))
                .sum();
            prop_assert_eq!(cell_sum, grid.occupied_cells());
        }
    }

    #[test]
    fn moore_never_more_clusters_than_face(
        coords in prop::collection::vec((0u32..10, 0u32..10), 1..50),
    ) {
        let codec = KeyCodec::uniform(2, 10).unwrap();
        let grid: SparseGrid = coords
            .iter()
            .map(|&(x, y)| (codec.pack(&[x, y]), 1.0))
            .collect();
        let face = connected_components(&grid, &codec, Connectivity::Face);
        let moore = connected_components(&grid, &codec, Connectivity::Moore);
        prop_assert!(moore.cluster_count() <= face.cluster_count());
    }

    #[test]
    fn neighbors_are_in_range_and_adjacent(
        x in 0u32..16, y in 0u32..16, z in 0u32..16,
    ) {
        let codec = KeyCodec::uniform(3, 16).unwrap();
        let key = codec.pack(&[x, y, z]);
        for conn in Connectivity::ALL {
            for nk in conn.neighbors(&codec, key) {
                let nc = codec.unpack(nk);
                let mut max_delta = 0i64;
                let mut sum_delta = 0i64;
                for (a, b) in nc.iter().zip([x, y, z].iter()) {
                    let d = (*a as i64 - *b as i64).abs();
                    max_delta = max_delta.max(d);
                    sum_delta += d;
                    prop_assert!(*a < 16);
                }
                match conn {
                    Connectivity::Face => prop_assert_eq!(sum_delta, 1),
                    Connectivity::Moore => {
                        prop_assert!(max_delta == 1 && sum_delta >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_grid_filter_below_keeps_only_high(
        cells in prop::collection::vec((0u128..1000, 0.0f64..20.0), 1..50),
        threshold in 0.0f64..20.0,
    ) {
        let mut grid: SparseGrid = cells.into_iter().collect();
        grid.filter_below(threshold);
        for (_, density) in grid.iter() {
            prop_assert!(density >= threshold);
        }
    }
}

proptest! {
    #[test]
    fn prune_to_top_never_exceeds_the_budget_and_keeps_the_max(
        cells in prop::collection::vec((0u128..10_000, -50.0f64..50.0), 1..200),
        budget in 1usize..64,
    ) {
        let mut grid: SparseGrid = cells.into_iter().collect();
        let max_before = grid
            .iter()
            .map(|(_, d)| d.abs())
            .fold(0.0f64, f64::max);
        let before = grid.occupied_cells();
        let removed = grid.prune_to_top(budget);
        prop_assert_eq!(before - grid.occupied_cells(), removed);
        prop_assert!(grid.occupied_cells() <= budget.min(before));
        if before > budget {
            prop_assert_eq!(grid.occupied_cells(), budget);
        }
        // The highest-magnitude cell always survives.
        let max_after = grid
            .iter()
            .map(|(_, d)| d.abs())
            .fold(0.0f64, f64::max);
        prop_assert!((max_after - max_before).abs() < 1e-12);
    }

    #[test]
    fn prune_to_top_is_idempotent(
        cells in prop::collection::vec((0u128..10_000, 0.0f64..50.0), 1..200),
        budget in 1usize..64,
    ) {
        let mut grid: SparseGrid = cells.into_iter().collect();
        grid.prune_to_top(budget);
        let snapshot = grid.clone();
        grid.prune_to_top(budget);
        prop_assert_eq!(grid, snapshot);
    }

    #[test]
    fn prune_to_top_keeps_a_superset_of_any_smaller_budget(
        cells in prop::collection::vec((0u128..10_000, 0.0f64..50.0), 1..150),
        small in 1usize..20,
        extra in 0usize..20,
    ) {
        let grid: SparseGrid = cells.into_iter().collect();
        let mut small_grid = grid.clone();
        small_grid.prune_to_top(small);
        let mut large_grid = grid.clone();
        large_grid.prune_to_top(small + extra);
        // Cells can tie in density, so compare by density multiset: the
        // smallest density kept by the small budget is >= the smallest kept
        // by the large budget.
        let small_min = small_grid.sorted_densities().last().copied().unwrap_or(0.0);
        let large_min = large_grid.sorted_densities().last().copied().unwrap_or(0.0);
        prop_assert!(small_min >= large_min - 1e-12);
        prop_assert!(small_grid.occupied_cells() <= large_grid.occupied_cells());
    }
}
