//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the full-covariance Gaussian mixture (EM baseline) to evaluate
//! log-densities: the Mahalanobis term and the log-determinant both fall out
//! of the factor `L` with `A = L L^T`.

use crate::{LinalgError, Matrix, Result};

/// The lower-triangular Cholesky factor `L` of a SPD matrix `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot
    /// is encountered and [`LinalgError::DimensionMismatch`] if the matrix is
    /// not square.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky: matrix must be square",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Borrow the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// `log(det(A))` computed as `2 * sum(log(L[i][i]))`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solve `A x = b` using forward and back substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    // Index-style loops below mirror the textbook formulation; iterator
    // rewrites obscure the triangular access pattern.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve: rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Squared Mahalanobis form `b^T A^{-1} b` evaluated without explicitly
    /// inverting `A`: solve `L y = b` and return `||y||^2`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    // Index-style loops below mirror the textbook formulation; iterator
    // rewrites obscure the triangular access pattern.
    #[allow(clippy::needless_range_loop)]
    pub fn mahalanobis_squared(&self, b: &[f64]) -> f64 {
        let n = self.dim();
        assert_eq!(b.len(), n, "mahalanobis: length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y.iter().map(|v| v * v).sum()
    }
}

impl Matrix {
    /// Convenience wrapper: Cholesky-factorize this matrix.
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::factorize(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0][..],
            &[12.0, 37.0, -43.0][..],
            &[-16.0, -43.0, 98.0][..],
        ])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let reconstructed = l.mat_mul(&l.transpose()).unwrap();
        assert!(reconstructed.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn known_factor_of_wikipedia_example() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]]
        let chol = spd3().cholesky().unwrap();
        let l = chol.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] - -8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct_inverse() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b);
        let ax = a.mat_vec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn log_determinant_matches_lu_det() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let det = a.determinant().unwrap();
        assert!((chol.log_determinant() - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn mahalanobis_matches_solve() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = [0.5, -1.0, 2.0];
        let x = chol.solve(&b);
        let direct: f64 = b.iter().zip(x.iter()).map(|(bi, xi)| bi * xi).sum();
        assert!((chol.mahalanobis_squared(&b) - direct).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]); // indefinite
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identity_factor_is_identity() {
        let i = Matrix::identity(4);
        let chol = i.cholesky().unwrap();
        assert!(chol.factor().max_abs_diff(&Matrix::identity(4)) < 1e-15);
        assert!(chol.log_determinant().abs() < 1e-15);
    }
}
