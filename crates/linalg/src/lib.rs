//! # adawave-linalg
//!
//! Small, dependency-free dense linear-algebra kernels used by the AdaWave
//! reproduction. The baselines the paper compares against (EM with full
//! covariance Gaussians, self-tuning spectral clustering) need a handful of
//! classic routines — matrix arithmetic, Cholesky and LU factorizations, a
//! symmetric eigen-solver and covariance estimation — but nothing close to a
//! full BLAS/LAPACK. Everything here is written from scratch so the
//! workspace only depends on the allowed offline crates.
//!
//! The crate is deliberately simple: row-major `Vec<f64>` storage, `O(n^3)`
//! textbook algorithms, and exhaustive tests. Matrix sizes in this project
//! are tiny (dimensions `d <= 64`, spectral problems subsampled to a few
//! hundred points), so clarity wins over micro-optimization — except in
//! [`kernels`], the one hot-loop module, whose dimension-specialized
//! distance and fused argmin scans are written for reliable
//! autovectorization while staying bit-identical to the scalar reference.
//!
//! ## Quick example
//!
//! ```
//! use adawave_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 2.0][..], &[2.0, 3.0][..]]);
//! let chol = a.cholesky().expect("SPD");
//! let x = chol.solve(&[6.0, 5.0]);
//! assert!((a.mat_vec(&x)[0] - 6.0).abs() < 1e-10);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cholesky;
pub mod eigen;
pub mod kernels;
pub mod lu;
pub mod matrix;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use kernels::{nearest_row, nearest_row_in};
pub use lu::Lu;
pub use matrix::Matrix;
pub use stats::{covariance_matrix, mean_vector, pearson_correlation, standardize_columns};
pub use vector::{add, axpy, dot, euclidean_distance, norm2, scale, squared_distance, sub};

/// Error type for linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (within numerical tolerance).
    NotPositiveDefinite,
    /// LU factorization hit a (numerically) singular pivot.
    Singular,
    /// An iterative routine did not converge within the iteration budget.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
