//! Autovectorization-friendly distance kernels over flat row-major buffers.
//!
//! This module is the single home for the workspace's hottest scalar loops:
//! squared Euclidean distance (with dimension-specialized bodies for the
//! d = 2 and d = 3 cases the paper's workloads live in) and fused
//! min+argmin scans over a flat row-major matrix of candidate rows
//! (k-means assignment, nearest-centroid serving). The loops are written
//! as straight-line arithmetic over slices with the bounds checks hoisted,
//! which LLVM reliably autovectorizes; no `unsafe` and no explicit SIMD
//! intrinsics are involved.
//!
//! ## Bit-exactness contract
//!
//! Every kernel here is **bit-identical** to the scalar reference it
//! replaces, for all inputs:
//!
//! - [`squared_distance`] dispatches on the dimension, and each
//!   specialized body performs the *same additions in the same order* as
//!   the generic `Σ (aᵢ − bᵢ)²` left-to-right sum. (For d = 2:
//!   `(0.0 + d₀²) + d₁²` is bit-equal to `d₀² + d₁²` because `0.0 + x == x`
//!   for every `x` that is a product of a real subtraction — squares are
//!   non-negative, and `(-0.0)·(-0.0)` is `+0.0`.)
//! - [`nearest_row`] / [`nearest_row_in`] implement first-index-wins
//!   strict-`<` argmin, the same tie-breaking as the scalar loops they
//!   replace, comparing *squared* distances so `sqrt` never runs inside
//!   the scan.
//!
//! Callers that need an actual distance take the square root once at the
//! edge ([`euclidean_distance`](crate::euclidean_distance)). IEEE-754
//! `sqrt` is correctly rounded and weakly monotone, so minima/maxima and
//! order statistics of a distance multiset can be computed on squared
//! values and rooted afterwards with bit-identical results. Strict
//! comparisons between *distinct* values are the one place this rewrite
//! is **not** sound (two distinct squared values can round to the same
//! square root); call sites whose control flow depends on such
//! comparisons keep their `sqrt` (see `adawave-baselines`' OPTICS
//! reachability loop).

/// Squared Euclidean distance between two points, dimension-dispatched.
///
/// Bit-identical to the generic left-to-right `Σ (aᵢ − bᵢ)²` for every
/// dimension: d = 2 and d = 3 get fully unrolled straight-line bodies
/// (same addition order, no FMA), and all other dimensions run a generic
/// loop in the identical order.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    match a.len() {
        2 => squared_distance_d2(a, b),
        3 => squared_distance_d3(a, b),
        _ => squared_distance_generic(a, b),
    }
}

/// Fully unrolled d = 2 squared distance.
///
/// # Panics
/// Panics if either slice has fewer than 2 elements.
#[inline]
pub fn squared_distance_d2(a: &[f64], b: &[f64]) -> f64 {
    let d0 = a[0] - b[0];
    let d1 = a[1] - b[1];
    d0 * d0 + d1 * d1
}

/// Fully unrolled d = 3 squared distance.
///
/// # Panics
/// Panics if either slice has fewer than 3 elements.
#[inline]
pub fn squared_distance_d3(a: &[f64], b: &[f64]) -> f64 {
    let d0 = a[0] - b[0];
    let d1 = a[1] - b[1];
    let d2 = a[2] - b[2];
    (d0 * d0 + d1 * d1) + d2 * d2
}

/// Generic-dimension squared distance, left-to-right accumulation.
#[inline]
fn squared_distance_generic(a: &[f64], b: &[f64]) -> f64 {
    // `-0.0` is the identity `Iterator::sum::<f64>()` folds from, and
    // `-0.0 + x == x` bitwise for every non-negative square — so this
    // matches the iterator reference even for zero-dimensional inputs.
    let mut acc = -0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Fused min+argmin scan: index of the row of `rows` (flat row-major,
/// `dims` values per row) nearest to `point`, plus that row's *squared*
/// distance. First index wins ties (strict `<` update), matching the
/// scalar assignment loops this replaces bit for bit. `sqrt` is deferred
/// entirely — callers that need the distance root the returned value once.
///
/// Returns `None` when `rows` is empty.
///
/// # Panics
/// Panics if `point.len() != dims` or `rows.len()` is not a multiple of
/// `dims` (programming error).
#[inline]
pub fn nearest_row(point: &[f64], rows: &[f64], dims: usize) -> Option<(usize, f64)> {
    assert_eq!(point.len(), dims, "nearest_row: point/dims mismatch");
    assert_eq!(rows.len() % dims, 0, "nearest_row: ragged row buffer");
    match dims {
        2 => nearest_row_dispatch(point, rows, dims, squared_distance_d2),
        3 => nearest_row_dispatch(point, rows, dims, squared_distance_d3),
        _ => nearest_row_dispatch(point, rows, dims, squared_distance_generic),
    }
}

/// The argmin body, monomorphized per distance kernel so the d = 2/d = 3
/// cases inline into a branch-free compare loop.
#[inline]
fn nearest_row_dispatch(
    point: &[f64],
    rows: &[f64],
    dims: usize,
    dist2: impl Fn(&[f64], &[f64]) -> f64,
) -> Option<(usize, f64)> {
    let mut any = false;
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, row) in rows.chunks_exact(dims).enumerate() {
        any = true;
        let d = dist2(point, row);
        // Strict `<`, exactly like the scalar loops this replaces: ties
        // keep the earlier index, and a NaN distance never wins.
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    any.then_some((best, best_d))
}

/// Like [`nearest_row`], but restricted to the candidate row indices in
/// `candidates` (still first-wins in *candidate order*). Used by
/// grid-accelerated neighbor paths that prefilter candidates.
///
/// Returns `None` when `candidates` is empty.
///
/// # Panics
/// Panics on dimension mismatch or an out-of-bounds candidate index.
#[inline]
pub fn nearest_row_in(
    point: &[f64],
    rows: &[f64],
    dims: usize,
    candidates: &[usize],
) -> Option<(usize, f64)> {
    assert_eq!(point.len(), dims, "nearest_row_in: point/dims mismatch");
    let mut best: Option<(usize, f64)> = None;
    for &i in candidates {
        let row = &rows[i * dims..(i + 1) * dims];
        let d = squared_distance(point, row);
        let better = match best {
            None => true,
            Some((_, bd)) => d < bd,
        };
        if better {
            best = Some((i, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-kernel scalar reference: iterator zip/map/sum.
    fn reference_squared(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// The pre-kernel scalar argmin (k-means assignment shape).
    fn reference_argmin(point: &[f64], rows: &[f64], dims: usize) -> Option<(usize, f64)> {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for (c, row) in rows.chunks_exact(dims).enumerate() {
            let d = reference_squared(point, row);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (best != usize::MAX).then_some((best, best_d))
    }

    #[test]
    fn dispatch_matches_reference_bitwise_small_dims() {
        // Values chosen to exercise rounding: irrational-ish magnitudes at
        // very different scales so addition order matters if it differs.
        let a = [1.0e8 + 0.1, -3.14159274, 2.718281828e-8, 7.5];
        let b = [-2.5e7, 2.236067977, -1.4142135623e-8, 0.1];
        for d in 0..=4 {
            let x = &a[..d];
            let y = &b[..d];
            assert_eq!(
                squared_distance(x, y).to_bits(),
                reference_squared(x, y).to_bits(),
                "d={d}"
            );
        }
    }

    #[test]
    fn negative_zero_components_stay_bit_identical() {
        let a = [-0.0, 0.0];
        let b = [0.0, -0.0];
        assert_eq!(
            squared_distance(&a, &b).to_bits(),
            reference_squared(&a, &b).to_bits()
        );
        assert_eq!(squared_distance(&a, &a).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn argmin_first_index_wins_on_ties() {
        // Two identical rows: the scalar loop keeps the first.
        let rows = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0];
        let got = nearest_row(&[1.0, 1.0], &rows, 2).unwrap();
        assert_eq!(got, (0, 0.0));
    }

    #[test]
    fn argmin_matches_reference_on_a_sweep() {
        // Deterministic pseudo-random sweep (LCG) over dims 1..=5.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 10.0 - 5.0
        };
        for dims in 1..=5 {
            for rows_n in [1usize, 2, 7, 33] {
                let rows: Vec<f64> = (0..rows_n * dims).map(|_| next()).collect();
                let point: Vec<f64> = (0..dims).map(|_| next()).collect();
                let got = nearest_row(&point, &rows, dims);
                let want = reference_argmin(&point, &rows, dims);
                assert_eq!(
                    got.map(|(i, d)| (i, d.to_bits())),
                    want.map(|(i, d)| (i, d.to_bits())),
                    "dims={dims} rows={rows_n}"
                );
            }
        }
    }

    #[test]
    fn nearest_row_empty_is_none() {
        assert_eq!(nearest_row(&[0.0, 0.0], &[], 2), None);
        assert_eq!(nearest_row_in(&[0.0, 0.0], &[1.0, 1.0], 2, &[]), None);
    }

    #[test]
    fn nearest_row_in_respects_candidate_order() {
        let rows = [0.0, 0.0, 5.0, 5.0, 0.0, 0.0];
        // Candidates listed as 2 then 0: both distance 0, first-in-order wins.
        assert_eq!(
            nearest_row_in(&[0.0, 0.0], &rows, 2, &[2, 0]),
            Some((2, 0.0))
        );
        assert_eq!(nearest_row_in(&[0.0, 0.0], &rows, 2, &[1]), Some((1, 50.0)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn squared_distance_length_mismatch_panics() {
        let _ = squared_distance(&[1.0], &[1.0, 2.0]);
    }
}
