//! Free functions on `&[f64]` vectors.
//!
//! These are the hot kernels of the distance-based baselines (k-means,
//! DBSCAN, DipMeans): squared Euclidean distance, dot products and simple
//! BLAS-1 style updates. They intentionally operate on plain slices so the
//! caller can keep data in flat row-major buffers.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths (programming error).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two points.
///
/// Delegates to the dimension-dispatched kernel in
/// [`crate::kernels`]; bit-identical to the plain left-to-right
/// `Σ (aᵢ − bᵢ)²` sum for every dimension.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::squared_distance(a, b)
}

/// Euclidean (L2) distance between two points.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// L2 norm of a vector.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Scale a vector by a scalar, returning a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place `y += alpha * x` (BLAS axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.3, 7.0, -1.0];
        assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [1.0, -2.0, 0.5];
        assert_eq!(squared_distance(&a, &a), 0.0);
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert!((norm2(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 2.0];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        for (x, y) in back.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-15);
        }
        let doubled = scale(&a, 2.0);
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
