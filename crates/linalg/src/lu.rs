//! LU factorization with partial pivoting.
//!
//! Used for determinants and general linear solves (e.g. inverting small
//! covariance matrices when Cholesky is not applicable because of
//! regularized near-singular inputs).

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined LU storage: the strictly lower part holds `L` (unit diagonal
    /// implied), the upper part (including diagonal) holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    sign: f64,
}

impl Lu {
    /// Factorize a square matrix. Returns [`LinalgError::Singular`] if a
    /// pivot is numerically zero.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "lu: matrix must be square",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the row with the largest |value| in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    // Index-style loops below mirror the textbook formulation; iterator
    // rewrites obscure the triangular access pattern.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve: rhs length mismatch");
        // Apply the permutation to b, then forward/back substitute.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // L y' = P b (unit lower)
        for i in 0..n {
            for k in 0..i {
                let delta = self.lu[(i, k)] * y[k];
                y[i] -= delta;
            }
        }
        // U x = y'
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }

    /// Inverse of the original matrix, column by column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]);
        let lu = Lu::factorize(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        // Solution of 2x+y=3, x+3y=5 -> x=0.8, y=1.4
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // Requires a row swap; determinant is -2.
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[2.0, 0.0][..]]);
        let lu = Lu::factorize(&a).unwrap();
        assert!((lu.determinant() - -2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_triangular_is_diagonal_product() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 4.0][..],
            &[0.0, 3.0, 5.0][..],
            &[0.0, 0.0, 7.0][..],
        ]);
        let lu = Lu::factorize(&a).unwrap();
        assert!((lu.determinant() - 42.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        assert!(matches!(Lu::factorize(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factorize(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0][..],
            &[0.0, 1.0, 4.0][..],
            &[5.0, 6.0, 0.0][..],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_matches_mat_vec_roundtrip() {
        let a = Matrix::from_rows(&[
            &[3.0, -1.0, 2.0][..],
            &[1.0, 4.0, 0.5][..],
            &[-2.0, 0.0, 5.0][..],
        ]);
        let lu = Lu::factorize(&a).unwrap();
        let x_true = [1.5, -2.0, 0.25];
        let b = a.mat_vec(&x_true);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
