//! Symmetric eigen-decomposition via the cyclic Jacobi rotation method.
//!
//! The self-tuning spectral clustering baseline (STSC) needs the leading
//! eigenvectors of a (small, subsampled) normalized graph Laplacian. The
//! cyclic Jacobi method is slow (`O(n^3)` per sweep) but simple, numerically
//! robust for symmetric matrices, and has no external dependencies.

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigen-decomposition `A = V diag(lambda) V^T`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns of a matrix, in the same order as
    /// [`eigenvalues`](Self::eigenvalues).
    pub eigenvectors: Matrix,
}

impl EigenDecomposition {
    /// The `k` leading eigenvectors as row-major point embeddings: row `i`
    /// holds the `i`-th coordinate of every point in the spectral embedding.
    ///
    /// Returns an `n x k` matrix whose row `i` is the embedding of item `i`.
    pub fn embedding(&self, k: usize) -> Matrix {
        let n = self.eigenvectors.rows();
        let k = k.min(self.eigenvalues.len());
        let mut out = Matrix::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                out[(i, j)] = self.eigenvectors[(i, j)];
            }
        }
        out
    }
}

/// Compute all eigenvalues/eigenvectors of a symmetric matrix using the
/// cyclic Jacobi method.
///
/// `max_sweeps` bounds the number of full sweeps (a sweep rotates every
/// off-diagonal pair once); 50 is far more than needed for the matrix sizes
/// in this project. Returns [`LinalgError::NoConvergence`] if the
/// off-diagonal norm has not dropped below `1e-12 * ||A||_F` by then.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: "jacobi_eigen: matrix must be square",
        });
    }
    if !a.is_symmetric(1e-8) {
        return Err(LinalgError::DimensionMismatch {
            context: "jacobi_eigen: matrix must be symmetric",
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * a.frobenius_norm().max(1e-300);

    let off_diag_norm = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        (2.0 * s).sqrt()
    };

    let mut converged = false;
    for _ in 0..max_sweeps {
        if off_diag_norm(&m) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation J(p, q, theta) to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged && off_diag_norm(&m) > tol {
        return Err(LinalgError::NoConvergence {
            iterations: max_sweeps,
        });
    }

    // Sort eigenpairs by eigenvalue, descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let e = jacobi_eigen(&a, 50).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]);
        let e = jacobi_eigen(&a, 50).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_from_eigenpairs() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5][..],
            &[1.0, 3.0, -0.5][..],
            &[0.5, -0.5, 2.0][..],
        ]);
        let e = jacobi_eigen(&a, 50).unwrap();
        let v = &e.eigenvectors;
        let d = Matrix::diagonal(&e.eigenvalues);
        let rebuilt = v.mat_mul(&d).unwrap().mat_mul(&v.transpose()).unwrap();
        assert!(rebuilt.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            &[5.0, 2.0, 1.0][..],
            &[2.0, 6.0, 3.0][..],
            &[1.0, 3.0, 7.0][..],
        ]);
        let e = jacobi_eigen(&a, 50).unwrap();
        let v = &e.eigenvectors;
        let vtv = v.transpose().mat_mul(v).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.2, 0.3][..],
            &[0.2, 2.0, 0.1][..],
            &[0.3, 0.1, 3.0][..],
        ]);
        let e = jacobi_eigen(&a, 50).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[0.0, 1.0][..]]);
        assert!(jacobi_eigen(&a, 50).is_err());
    }

    #[test]
    fn embedding_extracts_leading_columns() {
        let a = Matrix::diagonal(&[3.0, 2.0, 1.0]);
        let e = jacobi_eigen(&a, 50).unwrap();
        let emb = e.embedding(2);
        assert_eq!(emb.rows(), 3);
        assert_eq!(emb.cols(), 2);
    }
}
