//! Row-major dense matrix with the handful of operations needed by the
//! EM and spectral-clustering baselines.

use crate::{LinalgError, Result};

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from row slices. All rows must have the same length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extract a column as a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrow the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    pub fn mat_mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "mat_mul: self.cols != other.rows",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a_ik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mat_vec: length mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), v))
            .collect()
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "add: shapes differ",
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix::from_vec(self.rows, self.cols, data))
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "sub: shapes differ",
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix::from_vec(self.rows, self.cols, data))
    }

    /// Multiply every entry by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|x| x * s).collect(),
        )
    }

    /// Add `value` to every diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute difference with another matrix of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Determinant via LU factorization. Returns 0.0 for singular matrices.
    pub fn determinant(&self) -> Result<f64> {
        match crate::lu::Lu::factorize(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Inverse via LU factorization.
    pub fn inverse(&self) -> Result<Matrix> {
        let lu = crate::lu::Lu::factorize(self)?;
        lu.inverse()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mat_mul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mat_mul(&i).unwrap(), m);
        assert_eq!(i.mat_mul(&m).unwrap(), m);
    }

    #[test]
    fn mat_mul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]);
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn mat_mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mat_mul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mat_vec_basic() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0][..]]);
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn determinant_and_inverse() {
        let m = Matrix::from_rows(&[&[4.0, 7.0][..], &[2.0, 6.0][..]]);
        assert!((m.determinant().unwrap() - 10.0).abs() < 1e-12);
        let inv = m.inverse().unwrap();
        let prod = m.mat_mul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        assert_eq!(m.determinant().unwrap(), 0.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]);
        let ns = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.0, 3.0][..]]);
        assert!(s.is_symmetric(1e-12));
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn add_diagonal_regularizes() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(0.5);
        assert_eq!(m.trace(), 1.5);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 4.0][..]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
