//! Statistical helpers: means, covariance matrices, column standardization
//! and Pearson correlation (used for the Glass attribute/class correlation
//! table, Table II in the paper).

use crate::Matrix;

/// Mean of each column over a set of points given as row slices (pass a
/// re-iterable row iterator, e.g. `PointsView::rows()` or a mapped index
/// list — no materialized `Vec<Vec<f64>>` needed).
///
/// Returns a zero vector of length `dim` when the iterator is empty.
pub fn mean_vector<'a, I>(points: I, dim: usize) -> Vec<f64>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut mean = vec![0.0; dim];
    let mut n = 0usize;
    for p in points {
        for (m, v) in mean.iter_mut().zip(p.iter()) {
            *m += v;
        }
        n += 1;
    }
    if n > 0 {
        let inv = 1.0 / n as f64;
        for m in &mut mean {
            *m *= inv;
        }
    }
    mean
}

/// Sample covariance matrix (denominator `n - 1`, or `n` if `n == 1`) of a
/// set of points given as row slices of equal length `dim`. The iterator
/// is walked twice (mean, then scatter), so pass something cheaply
/// cloneable like `PointsView::rows()` or a mapped index list.
pub fn covariance_matrix<'a, I>(points: I, dim: usize) -> Matrix
where
    I: IntoIterator<Item = &'a [f64]>,
    I::IntoIter: Clone,
{
    let rows = points.into_iter();
    let mut cov = Matrix::zeros(dim, dim);
    let mean = mean_vector(rows.clone(), dim);
    let mut n = 0usize;
    for p in rows {
        for i in 0..dim {
            let di = p[i] - mean[i];
            for j in i..dim {
                let dj = p[j] - mean[j];
                cov[(i, j)] += di * dj;
            }
        }
        n += 1;
    }
    if n == 0 {
        return cov;
    }
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    for i in 0..dim {
        for j in i..dim {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    cov
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0.0 when either sample has zero variance or fewer than two
/// observations (the convention used for Table II reporting).
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson_correlation: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Standardize each column of a flat row-major `n x dim` buffer to zero
/// mean and unit variance, in place. Columns with zero variance are left
/// centered but unscaled.
pub fn standardize_columns(data: &mut [f64], dim: usize) {
    if data.is_empty() || dim == 0 {
        return;
    }
    assert_eq!(data.len() % dim, 0, "standardize_columns: ragged buffer");
    let n = (data.len() / dim) as f64;
    for j in 0..dim {
        let mean = data.iter().skip(j).step_by(dim).sum::<f64>() / n;
        let var = data
            .iter()
            .skip(j)
            .step_by(dim)
            .map(|v| (v - mean).powi(2))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        for v in data.iter_mut().skip(j).step_by(dim) {
            *v -= mean;
            if std > 1e-12 {
                *v /= std;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pts: &[Vec<f64>]) -> impl Iterator<Item = &[f64]> + Clone {
        pts.iter().map(Vec::as_slice)
    }

    #[test]
    fn mean_of_two_points() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(mean_vector(rows(&pts), 2), vec![2.0, 4.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let pts: Vec<Vec<f64>> = vec![];
        assert_eq!(mean_vector(rows(&pts), 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn covariance_of_identical_points_is_zero() {
        let pts = vec![vec![1.0, 2.0]; 5];
        let cov = covariance_matrix(rows(&pts), 2);
        assert!(cov.frobenius_norm() < 1e-15);
    }

    #[test]
    fn covariance_known_values() {
        // x = [1,2,3], y = [2,4,6]: var(x)=1, var(y)=4, cov(x,y)=2 (n-1 denom)
        let pts = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        let cov = covariance_matrix(rows(&pts), 2);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!(cov.is_symmetric(1e-15));
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfectly_anticorrelated() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson_correlation(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson_correlation(&x, &y), 0.0);
    }

    #[test]
    fn pearson_bounds() {
        let x = [0.3, -1.2, 4.0, 2.2, 0.0];
        let y = [1.0, 0.5, -2.0, 3.3, 0.9];
        let r = pearson_correlation(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn standardize_gives_zero_mean_unit_var() {
        let mut data = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        standardize_columns(&mut data, 2);
        let n = (data.len() / 2) as f64;
        for j in 0..2 {
            let mean: f64 = data.iter().skip(j).step_by(2).sum::<f64>() / n;
            let var: f64 = data.iter().skip(j).step_by(2).map(|v| v * v).sum::<f64>() / n;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardize_constant_column_is_centered() {
        let mut data = vec![5.0, 5.0, 5.0];
        standardize_columns(&mut data, 1);
        assert!(data.iter().all(|v| v.abs() < 1e-15));
    }
}
