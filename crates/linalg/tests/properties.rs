//! Property-based tests for the linear-algebra kernels.

use adawave_linalg::{covariance_matrix, jacobi_eigen, pearson_correlation, Matrix};
use proptest::prelude::*;

/// Strategy: a small vector of finite, moderately sized floats.
fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

/// Strategy: a random SPD matrix built as A = B^T B + eps*I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f64..3.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.transpose().mat_mul(&b).unwrap();
        a.add_diagonal(0.5);
        a
    })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in small_vec(6), b in small_vec(6)) {
        let ab = adawave_linalg::dot(&a, &b);
        let ba = adawave_linalg::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn distance_triangle_inequality(a in small_vec(4), b in small_vec(4), c in small_vec(4)) {
        let ab = adawave_linalg::euclidean_distance(&a, &b);
        let bc = adawave_linalg::euclidean_distance(&b, &c);
        let ac = adawave_linalg::euclidean_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-50.0f64..50.0, 12)) {
        let m = Matrix::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(
        a in prop::collection::vec(-2.0f64..2.0, 9),
        b in prop::collection::vec(-2.0f64..2.0, 9),
        c in prop::collection::vec(-2.0f64..2.0, 9),
    ) {
        let a = Matrix::from_vec(3, 3, a);
        let b = Matrix::from_vec(3, 3, b);
        let c = Matrix::from_vec(3, 3, c);
        let left = a.mat_mul(&b).unwrap().mat_mul(&c).unwrap();
        let right = a.mat_mul(&b.mat_mul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn cholesky_reconstructs_spd(a in spd_matrix(4)) {
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let rebuilt = l.mat_mul(&l.transpose()).unwrap();
        prop_assert!(rebuilt.max_abs_diff(&a) < 1e-7 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn cholesky_solve_solves(a in spd_matrix(3), b in small_vec(3)) {
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&b);
        let ax = a.mat_vec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn lu_determinant_matches_cholesky_logdet(a in spd_matrix(3)) {
        let det = a.determinant().unwrap();
        let chol = a.cholesky().unwrap();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - chol.log_determinant()).abs() < 1e-6 * (1.0 + det.ln().abs()));
    }

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace(a in spd_matrix(4)) {
        let e = jacobi_eigen(&a, 100).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-7 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn jacobi_eigenvalues_of_spd_are_positive(a in spd_matrix(3)) {
        let e = jacobi_eigen(&a, 100).unwrap();
        for &lambda in &e.eigenvalues {
            prop_assert!(lambda > 0.0);
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(x in small_vec(10), y in small_vec(10)) {
        let rxy = pearson_correlation(&x, &y);
        let ryx = pearson_correlation(&y, &x);
        prop_assert!((rxy - ryx).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&rxy));
    }

    #[test]
    fn pearson_invariant_to_affine_transform(x in small_vec(8)) {
        // correlation(x, 2x + 3) == 1 unless x is constant
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 3.0).collect();
        let r = pearson_correlation(&x, &y);
        let variance: f64 = {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            x.iter().map(|v| (v - m).powi(2)).sum::<f64>()
        };
        if variance > 1e-6 {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diag(points in prop::collection::vec(small_vec(3), 2..20)) {
        let cov = covariance_matrix(points.iter().map(Vec::as_slice), 3);
        prop_assert!(cov.is_symmetric(1e-9));
        for i in 0..3 {
            prop_assert!(cov[(i, i)] >= -1e-9);
        }
    }

    #[test]
    fn dispatched_squared_distance_is_bit_identical_to_scalar_fold(
        dims in 1usize..6,
        raw in prop::collection::vec(-1e6f64..1e6, 12),
    ) {
        // The dim-specialized kernels must never be "close" to the plain
        // left-to-right scalar accumulation — they must be the *same bits*,
        // because the f64 lane's reproducibility contract is bitwise.
        let a = &raw[..dims];
        let b = &raw[6..6 + dims];
        let scalar = a.iter().zip(b.iter()).fold(0.0f64, |acc, (x, y)| {
            let d = x - y;
            acc + d * d
        });
        let kernel = adawave_linalg::squared_distance(a, b);
        prop_assert_eq!(kernel.to_bits(), scalar.to_bits());
    }

    #[test]
    fn fused_argmin_matches_scalar_reference_loop(
        dims in 1usize..5,
        rows in prop::collection::vec(-100.0f64..100.0, 1..120),
        point in small_vec(4),
    ) {
        // nearest_row must pick the same row index — first minimum wins —
        // and the same squared distance (bitwise) as the scalar loop the
        // call sites used to carry.
        let point = &point[..dims];
        let usable = rows.len() / dims * dims;
        let rows = &rows[..usable];
        if rows.is_empty() {
            prop_assert!(adawave_linalg::nearest_row(point, rows, dims).is_none());
            return Ok(());
        }
        let mut best = 0usize;
        let mut best_d = f64::MAX;
        for (r, row) in rows.chunks_exact(dims).enumerate() {
            let d = row
                .iter()
                .zip(point.iter())
                .fold(0.0f64, |acc, (x, y)| { let t = x - y; acc + t * t });
            if d < best_d {
                best = r;
                best_d = d;
            }
        }
        let (idx, d2) = adawave_linalg::nearest_row(point, rows, dims).unwrap();
        prop_assert_eq!(idx, best);
        prop_assert_eq!(d2.to_bits(), best_d.to_bits());
    }
}
