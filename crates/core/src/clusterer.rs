//! AdaWave behind the unified [`Clusterer`] interface, and its registration
//! into the [`AlgorithmRegistry`].

use adawave_api::{
    AlgorithmRegistry, ClusterError, Clusterer, Clustering, FitOutcome, ParamSpec, Params,
    PointsView, Precision, PredictSupport,
};
use adawave_wavelet::Wavelet;

use crate::{AdaWave, AdaWaveConfig, AdaWaveError, ThresholdStrategy};

impl From<AdaWaveError> for ClusterError {
    fn from(e: AdaWaveError) -> Self {
        match e {
            AdaWaveError::InvalidInput { context } => ClusterError::InvalidInput { context },
            AdaWaveError::Grid(grid) => ClusterError::Failed {
                algorithm: "adawave".to_string(),
                context: format!("grid error: {grid}"),
            },
        }
    }
}

impl Clusterer for AdaWave {
    fn name(&self) -> &str {
        "adawave"
    }

    fn describe(&self) -> String {
        let c = self.config();
        format!(
            "adawave scale={} wavelet={} levels={} threshold={}",
            c.scale,
            c.wavelet.name(),
            c.levels,
            c.threshold.name(),
        )
    }

    /// Run the AdaWave pipeline and return the training labels plus the
    /// native serving model ([`crate::AdaWaveModel`]: grid-cell lookup;
    /// out-of-domain/non-finite points predict noise).
    fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
        let (result, model) = self.fit_with_model(points)?;
        Ok(FitOutcome {
            clustering: result.to_clustering(),
            model: Box::new(model),
        })
    }

    /// Run the AdaWave pipeline and return the canonical [`Clustering`]
    /// without building the serving model. The inherent [`AdaWave::fit`]
    /// stays available when the pipeline diagnostics ([`crate::GridStats`],
    /// the Fig. 6 density curve) are needed; this trait method is the
    /// uniform surface the registry, the CLI and the sweeps go through.
    fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        Ok(AdaWave::fit(self, points)?.to_clustering())
    }
}

impl AdaWaveConfig {
    /// Parse a configuration from dynamic key-value [`Params`]
    /// (`scale=128 wavelet=cdf22 levels=1 threshold=three-segment`),
    /// the registry-facing counterpart of [`AdaWaveConfig::builder`].
    pub fn from_params(params: &Params) -> Result<Self, ClusterError> {
        let mut builder = Self::builder()
            .scale(params.get_or("scale", 128)?)
            .levels(params.get_or("levels", 1)?)
            .threads(params.get_or("threads", 0)?);
        if let Some(raw) = params.get("precision") {
            let precision: Precision =
                raw.parse()
                    .map_err(|_: String| ClusterError::InvalidParam {
                        param: "precision".to_string(),
                        value: raw.to_string(),
                        expected: "f64 (bit-exact reference) or f32 (throughput lane)".to_string(),
                    })?;
            builder = builder.precision(precision);
        }
        if let Some(name) = params.get("wavelet") {
            let wavelet = Wavelet::from_name(name).ok_or_else(|| ClusterError::InvalidParam {
                param: "wavelet".to_string(),
                value: name.to_string(),
                expected: "one of haar, db2, db3, cdf22, cdf13".to_string(),
            })?;
            builder = builder.wavelet(wavelet);
        }
        if let Some(raw) = params.get("threshold") {
            let strategy: ThresholdStrategy =
                raw.parse()
                    .map_err(|expected: String| ClusterError::InvalidParam {
                        param: "threshold".to_string(),
                        value: raw.to_string(),
                        expected,
                    })?;
            builder = builder.threshold(strategy);
        }
        Ok(builder.build())
    }
}

/// Register AdaWave into an [`AlgorithmRegistry`] (combined with
/// `adawave_baselines::register` this yields the standard registry of the
/// paper's algorithms; see the umbrella `adawave` crate).
pub fn register(registry: &mut AlgorithmRegistry) {
    registry.register(
        "adawave",
        "adaptive wavelet clustering for highly noisy data (this paper)",
        &[
            ParamSpec::new("scale", "u32", "128", "grid intervals per dimension"),
            ParamSpec::new("wavelet", "name", "cdf22", "haar, db2, db3, cdf22 or cdf13"),
            ParamSpec::new(
                "levels",
                "u32",
                "1",
                "wavelet decomposition levels (0 = threshold the raw grid)",
            ),
            ParamSpec::new(
                "threshold",
                "name",
                "three-segment",
                "three-segment, elbow, kneedle, quantile:<f> or fixed:<f>",
            ),
            ParamSpec::new(
                "precision",
                "name",
                "f64",
                "numeric lane: f64 (bit-exact reference) or f32 (opt-in throughput lane)",
            ),
            ParamSpec::THREADS,
        ],
        PredictSupport::Native,
        |params| {
            let config = AdaWaveConfig::from_params(params)?;
            Ok(Box::new(AdaWave::new(config)))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::{AlgorithmSpec, PointMatrix};

    fn blobs() -> PointMatrix {
        let mut points = PointMatrix::new(2);
        for i in 0..150 {
            let t = i as f64 * 0.0004;
            points.push_row(&[0.2 + t, 0.2 - t]);
            points.push_row(&[0.8 - t, 0.8 + t]);
        }
        points
    }

    #[test]
    fn registry_adawave_matches_direct_call() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let points = blobs();
        let spec = AlgorithmSpec::new("adawave").with("scale", 32);
        let via_registry = registry.fit(&spec, points.view()).unwrap();
        let direct = AdaWave::new(AdaWaveConfig::builder().scale(32).build())
            .fit(points.view())
            .unwrap()
            .to_clustering();
        assert_eq!(via_registry, direct);
        assert!(via_registry.cluster_count() >= 2);
    }

    #[test]
    fn from_params_parses_every_knob() {
        let mut params = Params::new();
        params
            .set("scale", 64)
            .set("wavelet", "haar")
            .set("levels", 2)
            .set("threshold", "quantile:0.25")
            .set("precision", "f32");
        let config = AdaWaveConfig::from_params(&params).unwrap();
        assert_eq!(config.scale, 64);
        assert_eq!(config.wavelet, Wavelet::Haar);
        assert_eq!(config.levels, 2);
        assert_eq!(config.threshold, ThresholdStrategy::Quantile(0.25));
        assert_eq!(config.precision, Precision::F32);
    }

    #[test]
    fn from_params_rejects_bad_values() {
        let mut params = Params::new();
        params.set("wavelet", "sinc");
        assert!(matches!(
            AdaWaveConfig::from_params(&params),
            Err(ClusterError::InvalidParam { ref param, .. }) if param == "wavelet"
        ));
        let mut params = Params::new();
        params.set("threshold", "psychic");
        assert!(AdaWaveConfig::from_params(&params).is_err());
        let mut params = Params::new();
        params.set("scale", "-3");
        assert!(AdaWaveConfig::from_params(&params).is_err());
        let mut params = Params::new();
        params.set("precision", "f16");
        assert!(matches!(
            AdaWaveConfig::from_params(&params),
            Err(ClusterError::InvalidParam { ref param, .. }) if param == "precision"
        ));
    }

    #[test]
    fn empty_input_is_a_cluster_error() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let clusterer = registry.resolve(&AlgorithmSpec::new("adawave")).unwrap();
        let empty = PointMatrix::new(2);
        assert!(matches!(
            clusterer.fit(empty.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
    }

    #[test]
    fn describe_names_the_configuration() {
        let clusterer = AdaWave::new(AdaWaveConfig::builder().scale(64).build());
        let text = Clusterer::describe(&clusterer);
        assert!(text.contains("scale=64"), "{text}");
    }
}
