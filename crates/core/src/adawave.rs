//! The AdaWave algorithm (Algorithm 1 of the paper).

use adawave_api::PointsView;
use adawave_grid::{
    connected_components, BoundingBox, ComponentLabels, KeyCodec, LookupTable, Quantizer,
    SparseGrid,
};

use crate::config::AdaWaveConfig;
use crate::result::{AdaWaveResult, GridStats};
use crate::transform::sparse_wavelet_smooth_budgeted;
use crate::{AdaWaveError, Result};

/// The AdaWave clusterer.
///
/// Construct it with a configuration (or [`AdaWave::default`] for the
/// paper's parameter-free defaults) and call [`fit`](Self::fit) on a point
/// set. The algorithm is deterministic, order-insensitive and makes a
/// single pass over the points plus work proportional to the number of
/// occupied grid cells.
#[derive(Debug, Clone, Default)]
pub struct AdaWave {
    config: AdaWaveConfig,
}

impl AdaWave {
    /// Create a clusterer with the given configuration.
    pub fn new(config: AdaWaveConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &AdaWaveConfig {
        &self.config
    }

    /// Cluster a point set (a flat row-major [`PointsView`]; owned data
    /// converts via [`adawave_api::PointMatrix::view`]).
    ///
    /// Returns an error if the input is empty or zero-dimensional, or if
    /// the grid key would overflow and automatic scale reduction is
    /// disabled. Ragged input is unrepresentable in the flat layout, so
    /// the old per-point dimensionality check is gone by construction.
    pub fn fit(&self, points: PointsView<'_>) -> Result<AdaWaveResult> {
        let (_, model, assignment) = self.fit_parts(points)?;
        Ok(model.into_result(assignment))
    }

    /// [`fit`](Self::fit) plus the trained serving artifact: the returned
    /// [`AdaWaveModel`](crate::AdaWaveModel) labels arbitrary out-of-sample
    /// points through the clustered grid in O(1) per point, with the model's
    /// cluster ids aligned to the training clustering. Out-of-domain and
    /// non-finite points predict noise (the streaming outlier contract).
    pub fn fit_with_model(
        &self,
        points: PointsView<'_>,
    ) -> Result<(AdaWaveResult, crate::AdaWaveModel)> {
        let (quantizer, model, assignment) = self.fit_parts(points)?;
        let remap = crate::model::assignment_remap(&assignment, model.cluster_count());
        let serving =
            crate::AdaWaveModel::from_parts(quantizer, &model, &remap, self.config.precision);
        Ok((model.into_result(assignment), serving))
    }

    /// The shared pipeline: quantize, run the grid stage, label points.
    fn fit_parts(
        &self,
        points: PointsView<'_>,
    ) -> Result<(Quantizer, GridModel, Vec<Option<usize>>)> {
        if points.is_empty() {
            return Err(AdaWaveError::InvalidInput {
                context: "empty point set".to_string(),
            });
        }
        if points.dims() == 0 {
            return Err(AdaWaveError::InvalidInput {
                context: "points have zero dimensions".to_string(),
            });
        }

        // Step 1: quantization into the sparse grid-labeling structure,
        // through the configured numeric lane (f64 is the bit-exact
        // reference; f32 is the opt-in throughput lane).
        let bounds = BoundingBox::from_points(points)?;
        let quantizer = self.quantizer_for(&bounds)?;
        let (grid, assignment) = match self.config.precision {
            adawave_api::Precision::F64 => quantizer.quantize_with(points, self.config.runtime),
            adawave_api::Precision::F32 => quantizer.quantize_f32_with(points, self.config.runtime),
        };
        let lookup = LookupTable::new(quantizer.codec().clone(), assignment);

        // Steps 2-4: the reusable grid → cluster-model stage.
        let model = cluster_grid(&grid, quantizer.codec(), &self.config)?;

        // Steps 5-6: label grids and map points through the lookup table.
        let assignment = lookup.assign_points(model.labels(), model.levels(), model.codec());
        Ok((quantizer, model, assignment))
    }

    /// Build the quantizer [`fit`](Self::fit) would use over the given
    /// domain, honoring [`AdaWaveConfig::auto_reduce_scale`]: if the packed
    /// grid key would overflow 128 bits, every dimension's interval count
    /// is halved (down to a floor of 2) until it fits.
    ///
    /// This is the piece of step 1 that does not touch points, shared with
    /// the streaming ingestion layer (`adawave-stream`), which freezes a
    /// domain upfront instead of deriving it from a full point set.
    pub fn quantizer_for(&self, bounds: &BoundingBox) -> Result<Quantizer> {
        let mut intervals = self.config.intervals_for(bounds.dims());
        loop {
            match Quantizer::with_bounds(bounds.clone(), &intervals) {
                Ok(q) => return Ok(q),
                Err(e) => {
                    if !self.config.auto_reduce_scale {
                        return Err(e.into());
                    }
                    // Halve every dimension and retry; give up at scale 2.
                    let mut reduced = false;
                    for m in intervals.iter_mut() {
                        if *m > 2 {
                            *m = (*m / 2).max(2);
                            reduced = true;
                        }
                    }
                    if !reduced {
                        return Err(e.into());
                    }
                }
            }
        }
    }

    /// Cluster the same point set at several decomposition levels at once
    /// (the multi-resolution property inherited from the wavelet
    /// transform). Returns one result per requested level.
    pub fn fit_multi_resolution(
        &self,
        points: PointsView<'_>,
        levels: &[u32],
    ) -> Result<Vec<AdaWaveResult>> {
        levels
            .iter()
            .map(|&level| {
                let mut config = self.config.clone();
                config.levels = level;
                AdaWave::new(config).fit(points)
            })
            .collect()
    }
}

/// Run the grid → clusters stage of the AdaWave pipeline (steps 2–4 of
/// Algorithm 1: wavelet smoothing, near-zero removal, adaptive threshold,
/// connected components) on an already-quantized sparse grid.
///
/// The cost is `O(m)` in the number of occupied cells — independent of how
/// many points were quantized into the grid. [`AdaWave::fit`] calls this
/// after quantizing; the streaming layer (`adawave-stream`) calls it on an
/// incrementally accumulated grid each time it refits.
///
/// With `config.levels == 0` the transform is skipped entirely and the raw
/// per-cell counts are thresholded directly (an honest no-smoothing pass).
pub fn cluster_grid(
    grid: &SparseGrid,
    codec: &KeyCodec,
    config: &AdaWaveConfig,
) -> Result<GridModel> {
    let quantized_cells = grid.occupied_cells();

    // Step 2: sparse wavelet transform (low-pass branch, `levels` times)
    // followed by removal of near-zero coefficients. Zero levels smooth
    // nothing: the grid and its codec pass through unchanged.
    let kernel = config.wavelet.density_smoothing_kernel();
    let levels = config.levels;
    let (mut transformed, down_codec): (SparseGrid, KeyCodec) = sparse_wavelet_smooth_budgeted(
        grid,
        codec,
        &kernel,
        config.boundary,
        levels,
        config.max_transformed_cells.max(1),
    )?;
    let transformed_cells = transformed.occupied_cells();
    // Grid densities are non-negative by construction; cells whose
    // smoothed coefficient is near zero or negative (edge artifacts of
    // wavelets with negative taps, e.g. CDF(2,2)) are certainly not
    // cluster interiors and would otherwise distort the sorted-density
    // curve the adaptive threshold is fitted to.
    let near_zero_removed =
        transformed.drop_near_zero(config.coefficient_epsilon) + transformed.filter_below(0.0);

    // Step 3: adaptive threshold filtering. With every cell removed above
    // (extreme `coefficient_epsilon`), the sorted curve is empty and every
    // strategy degenerates to 0.0 — an all-noise model, never a NaN.
    let sorted_densities = transformed.sorted_densities();
    let threshold = config.threshold.choose(&sorted_densities);
    let threshold_removed = transformed.filter_below(threshold);
    let surviving_cells = transformed.occupied_cells();

    // Step 4: connected components in the transformed feature space.
    let labels = connected_components(&transformed, &down_codec, config.connectivity);

    Ok(GridModel {
        labels,
        codec: down_codec,
        levels,
        stats: GridStats {
            quantized_cells,
            transformed_cells,
            near_zero_removed,
            threshold,
            threshold_removed,
            surviving_cells,
            intervals: codec.all_intervals().to_vec(),
        },
        sorted_densities,
    })
}

/// The fitted grid-level cluster model produced by [`cluster_grid`]: which
/// transformed-space cells belong to which cluster, plus the pipeline
/// diagnostics. Turning the model into a per-point [`AdaWaveResult`] is a
/// separate (O(points)) step — [`AdaWave::fit`] maps a [`LookupTable`]
/// through it, the streaming layer maps its retained per-point cell keys.
#[derive(Debug, Clone)]
pub struct GridModel {
    labels: ComponentLabels,
    codec: KeyCodec,
    levels: u32,
    stats: GridStats,
    sorted_densities: Vec<f64>,
}

impl GridModel {
    /// Number of clusters found among the surviving cells.
    pub fn cluster_count(&self) -> usize {
        self.labels.cluster_count()
    }

    /// Cluster labels of the surviving transformed-space cells.
    pub fn labels(&self) -> &ComponentLabels {
        &self.labels
    }

    /// Codec of the transformed space the labels live in.
    pub fn codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// Decomposition levels separating the original quantized space from
    /// the transformed space (each level halves every coordinate).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Grid pipeline statistics (the [`AdaWaveResult::stats`] to be).
    pub fn stats(&self) -> &GridStats {
        &self.stats
    }

    /// The smoothed densities in descending order (the Fig. 6 curve).
    pub fn sorted_densities(&self) -> &[f64] {
        &self.sorted_densities
    }

    /// Cluster of an *original-space* cell key: downsample its coordinates
    /// through [`levels`](Self::levels) halvings and look the transformed
    /// cell up. `None` means the cell was removed as noise. Beyond 31
    /// levels every u32 coordinate has collapsed to 0, so the shift
    /// saturates instead of overflowing.
    pub fn cluster_of_cell(&self, original_codec: &KeyCodec, cell: u128) -> Option<usize> {
        let coords = original_codec.unpack(cell);
        let down: Vec<u32> = coords
            .iter()
            .map(|&c| c.checked_shr(self.levels).unwrap_or(0))
            .collect();
        self.labels.cluster_of(self.codec.pack(&down))
    }

    /// Finish the pipeline: combine the model with a per-point assignment
    /// (computed by the caller from its point → cell bookkeeping) into an
    /// [`AdaWaveResult`].
    pub fn into_result(self, assignment: Vec<Option<usize>>) -> AdaWaveResult {
        let cluster_count = self.labels.cluster_count();
        AdaWaveResult::new(assignment, cluster_count, self.stats, self.sorted_densities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdStrategy;
    use adawave_data::synthetic::{synthetic_benchmark, SYNTHETIC_NOISE_LABEL};
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, ami_ignoring_noise, NOISE_LABEL};
    use adawave_wavelet::Wavelet;

    use adawave_api::PointMatrix;

    fn blobs_with_noise(per_blob: usize, noise: usize, seed: u64) -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(
            &mut points,
            &mut rng,
            &[0.25, 0.25],
            &[0.03, 0.03],
            per_blob,
        );
        truth.extend(std::iter::repeat_n(0usize, per_blob));
        shapes::gaussian_blob(
            &mut points,
            &mut rng,
            &[0.75, 0.75],
            &[0.03, 0.03],
            per_blob,
        );
        truth.extend(std::iter::repeat_n(1usize, per_blob));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
        truth.extend(std::iter::repeat_n(2usize, noise));
        (points, truth)
    }

    #[test]
    fn clusters_two_blobs_in_50_percent_noise() {
        let (points, truth) = blobs_with_noise(1000, 2000, 1);
        let result = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
            .fit(points.view())
            .unwrap();
        assert!(
            result.cluster_count() >= 2,
            "found {}",
            result.cluster_count()
        );
        // The Gaussian tails of each blob are indistinguishable from the 50%
        // uniform noise, so a score in the 0.7-0.8 range is what the paper
        // itself reports on its 50%-noise running example (AMI 0.76).
        let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.7, "AMI {score}");
        // A good share of the uniform noise is recognised as noise.
        assert!(result.noise_fraction() > 0.3);
    }

    #[test]
    fn clusters_the_synthetic_benchmark_at_high_noise() {
        // A smaller copy of the Fig. 7/8 workload at 75% noise.
        let ds = synthetic_benchmark(75.0, 800, 3);
        let result = AdaWave::default().fit(ds.view()).unwrap();
        let score = ami_ignoring_noise(
            &ds.labels,
            &result.to_labels(NOISE_LABEL),
            SYNTHETIC_NOISE_LABEL,
        );
        assert!(score > 0.5, "AMI {score}");
        assert!(
            result.cluster_count() >= 3,
            "clusters {}",
            result.cluster_count()
        );
    }

    #[test]
    fn detects_ring_shaped_clusters() {
        let mut rng = Rng::new(5);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::ring(&mut points, &mut rng, (0.3, 0.5), 0.15, 0.008, 1500);
        truth.extend(std::iter::repeat_n(0usize, 1500));
        shapes::ring(&mut points, &mut rng, (0.7, 0.5), 0.15, 0.008, 1500);
        truth.extend(std::iter::repeat_n(1usize, 1500));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 1000);
        truth.extend(std::iter::repeat_n(2usize, 1000));
        let result = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
            .fit(points.view())
            .unwrap();
        let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.6, "AMI {score}");
    }

    #[test]
    fn is_order_insensitive() {
        let (mut points, _) = blobs_with_noise(500, 500, 7);
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(32).build());
        let a = adawave.fit(points.view()).unwrap();
        // Reverse the input order; results must be identical per point.
        points.reverse_rows();
        let b = adawave.fit(points.view()).unwrap();
        let b_labels: Vec<Option<usize>> = b.assignment().iter().rev().copied().collect();
        assert_eq!(a.assignment(), &b_labels[..]);
        assert_eq!(a.cluster_count(), b.cluster_count());
    }

    #[test]
    fn is_deterministic() {
        let (points, _) = blobs_with_noise(400, 800, 9);
        let adawave = AdaWave::default();
        assert_eq!(
            adawave.fit(points.view()).unwrap(),
            adawave.fit(points.view()).unwrap()
        );
    }

    #[test]
    fn is_deterministic_for_irrational_tap_wavelets() {
        // db2's taps are irrational, so floating-point summation order in
        // the transform is observable. Two fits build two hash maps with
        // identical content but different iteration orders; the sorted-key
        // scatter makes the results identical anyway — including the full
        // sorted-density curve.
        let (points, _) = blobs_with_noise(300, 600, 41);
        let adawave = AdaWave::new(
            AdaWaveConfig::builder()
                .scale(32)
                .wavelet(Wavelet::Daubechies2)
                .build(),
        );
        assert_eq!(
            adawave.fit(points.view()).unwrap(),
            adawave.fit(points.view()).unwrap()
        );
    }

    #[test]
    fn f32_lane_is_deterministic_across_thread_counts() {
        // The f32 lane gives up bit-comparability with f64, but inside
        // itself it keeps the workspace determinism contract: identical
        // clusterings for every thread count.
        use adawave_api::Precision;
        use adawave_runtime::Runtime;
        let (points, _) = blobs_with_noise(3000, 6000, 43);
        let config = |rt: Runtime| {
            AdaWaveConfig::builder()
                .scale(64)
                .precision(Precision::F32)
                .runtime(rt)
                .build()
        };
        let reference = AdaWave::new(config(Runtime::sequential()))
            .fit(points.view())
            .unwrap();
        assert!(reference.cluster_count() >= 2);
        for threads in [1, 2, 4, 8] {
            let parallel = AdaWave::new(config(Runtime::with_threads(threads)))
                .fit(points.view())
                .unwrap();
            assert_eq!(reference, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        let adawave = AdaWave::default();
        // Empty and zero-dimensional inputs are errors, never panics.
        assert!(adawave.fit(PointMatrix::new(2).view()).is_err());
        let zero_dim = PointMatrix::from_rows(vec![vec![]]).unwrap();
        assert!(adawave.fit(zero_dim.view()).is_err());
        // Ragged input is already rejected at the ingestion boundary.
        assert!(PointMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.0]]).is_err());
    }

    #[test]
    fn auto_reduces_scale_for_high_dimensional_data() {
        // 20 dimensions at scale 128 needs 140 bits > 128: the scale must be
        // reduced automatically rather than failing.
        let mut rng = Rng::new(11);
        let mut points = PointMatrix::new(20);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.3; 20], &[0.05; 20], 200);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.7; 20], &[0.05; 20], 200);
        let result = AdaWave::default().fit(points.view()).unwrap();
        assert!(result.stats().intervals[0] < 128);
        assert!(result.cluster_count() >= 1);

        // With auto-reduction disabled the same configuration must fail.
        let strict = AdaWave::new(AdaWaveConfig::builder().auto_reduce_scale(false).build());
        assert!(matches!(
            strict.fit(points.view()),
            Err(AdaWaveError::Grid(_))
        ));
    }

    #[test]
    fn stats_are_consistent() {
        let (points, _) = blobs_with_noise(500, 1500, 13);
        let result = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
            .fit(points.view())
            .unwrap();
        let stats = result.stats();
        assert!(stats.quantized_cells > 0);
        assert!(stats.transformed_cells > 0);
        assert_eq!(
            stats.surviving_cells + stats.threshold_removed + stats.near_zero_removed,
            stats.transformed_cells
        );
        assert!(stats.threshold > 0.0);
        assert_eq!(stats.intervals, vec![64, 64]);
        assert_eq!(
            result.sorted_densities().len(),
            stats.transformed_cells - stats.near_zero_removed
        );
    }

    #[test]
    fn multi_resolution_produces_coarser_clusterings() {
        let (points, _) = blobs_with_noise(800, 800, 15);
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).build());
        let results = adawave
            .fit_multi_resolution(points.view(), &[1, 2, 3])
            .unwrap();
        assert_eq!(results.len(), 3);
        // Higher levels work on coarser grids; cluster count should not blow up.
        assert!(results[2].stats().surviving_cells <= results[0].stats().surviving_cells);
        for r in &results {
            assert!(r.cluster_count() >= 1);
        }
    }

    #[test]
    fn level_zero_is_an_honest_no_smoothing_pass() {
        let (points, _) = blobs_with_noise(600, 1200, 23);
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).build());
        let results = adawave
            .fit_multi_resolution(points.view(), &[0, 1])
            .unwrap();
        let (level0, level1) = (&results[0], &results[1]);
        // Level 0 used to be silently promoted to level 1, returning two
        // identical results labelled differently. It must now skip the
        // transform: the "transformed" grid is the raw quantized grid.
        assert_eq!(
            level0.stats().transformed_cells,
            level0.stats().quantized_cells
        );
        assert_eq!(level0.stats().near_zero_removed, 0, "raw counts are >= 1");
        // Level 1 smooths and downsamples, so its stats must differ.
        assert_ne!(level0.stats(), level1.stats());
        assert_ne!(level0, level1);
        // The raw-grid threshold still separates the blobs from the noise.
        assert!(level0.cluster_count() >= 2);
        // And the direct fit at levels=0 matches the multi-resolution entry.
        let direct = AdaWave::new(AdaWaveConfig::builder().scale(64).levels(0).build())
            .fit(points.view())
            .unwrap();
        assert_eq!(&direct, level0);
    }

    #[test]
    fn extreme_epsilon_yields_all_noise_not_a_panic() {
        // When `coefficient_epsilon` removes every smoothed cell, the
        // threshold strategies see an empty sorted-density curve. Every
        // strategy must degenerate to a finite threshold and an all-noise
        // clustering — no NaN, no panic.
        let (points, _) = blobs_with_noise(300, 300, 29);
        for strategy in [
            ThresholdStrategy::ElbowAngle { divisor: 3.0 },
            ThresholdStrategy::ThreeSegment,
            ThresholdStrategy::Kneedle,
            ThresholdStrategy::Quantile(0.2),
            ThresholdStrategy::Fixed(1.0),
        ] {
            let result = AdaWave::new(
                AdaWaveConfig::builder()
                    .scale(32)
                    .threshold(strategy)
                    .coefficient_epsilon(1e30)
                    .build(),
            )
            .fit(points.view())
            .unwrap();
            let name = strategy.name();
            assert_eq!(result.cluster_count(), 0, "{name}");
            assert_eq!(result.noise_fraction(), 1.0, "{name}");
            assert_eq!(result.stats().surviving_cells, 0, "{name}");
            assert!(result.stats().threshold.is_finite(), "{name}");
            assert!(result.sorted_densities().is_empty(), "{name}");
        }
    }

    #[test]
    fn extreme_levels_saturate_instead_of_overflowing_the_shift() {
        // 40 levels collapse every dimension to a single cell; the
        // coordinate downshift must saturate at 0, not panic (debug) or
        // wrap (release) on `c >> 40`.
        let (points, _) = blobs_with_noise(100, 100, 37);
        let result = AdaWave::new(AdaWaveConfig::builder().scale(32).levels(40).build())
            .fit(points.view())
            .unwrap();
        assert_eq!(result.len(), points.len());
        // Everything lives in the one surviving cell (or none at all).
        assert!(result.cluster_count() <= 1);
    }

    #[test]
    fn cluster_grid_matches_fit_on_the_same_quantization() {
        // The extracted grid → model stage must reproduce fit() exactly
        // when driven with fit()'s own quantizer output.
        let (points, _) = blobs_with_noise(500, 1000, 31);
        let config = AdaWaveConfig::builder().scale(64).build();
        let adawave = AdaWave::new(config.clone());
        let fitted = adawave.fit(points.view()).unwrap();

        let bounds = BoundingBox::from_points(points.view()).unwrap();
        let quantizer = adawave.quantizer_for(&bounds).unwrap();
        let (grid, cells) = quantizer.quantize(points.view());
        let model = cluster_grid(&grid, quantizer.codec(), &config).unwrap();
        assert_eq!(model.cluster_count(), fitted.cluster_count());
        assert_eq!(model.stats(), fitted.stats());
        let assignment: Vec<Option<usize>> = cells
            .iter()
            .map(|&cell| model.cluster_of_cell(quantizer.codec(), cell))
            .collect();
        let rebuilt = model.into_result(assignment);
        assert_eq!(rebuilt, fitted);
    }

    #[test]
    fn threshold_strategies_all_produce_sane_results() {
        let (points, truth) = blobs_with_noise(800, 1600, 17);
        for strategy in [
            ThresholdStrategy::ElbowAngle { divisor: 3.0 },
            ThresholdStrategy::ThreeSegment,
            ThresholdStrategy::Kneedle,
            ThresholdStrategy::Quantile(0.2),
        ] {
            let result = AdaWave::new(
                AdaWaveConfig::builder()
                    .scale(64)
                    .threshold(strategy)
                    .build(),
            )
            .fit(points.view())
            .unwrap();
            let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 2);
            assert!(score > 0.4, "{}: AMI {score}", strategy.name());
        }
    }

    #[test]
    fn different_wavelets_still_cluster() {
        let (points, truth) = blobs_with_noise(800, 800, 19);
        for wavelet in [Wavelet::Haar, Wavelet::Cdf22, Wavelet::Daubechies2] {
            let result = AdaWave::new(AdaWaveConfig::builder().scale(64).wavelet(wavelet).build())
                .fit(points.view())
                .unwrap();
            let score = ami_ignoring_noise(&truth, &result.to_labels(NOISE_LABEL), 2);
            assert!(score > 0.6, "{wavelet}: AMI {score}");
        }
    }

    #[test]
    fn noise_reassignment_gives_full_partition() {
        let (points, truth) = blobs_with_noise(600, 600, 21);
        let result = AdaWave::new(AdaWaveConfig::builder().scale(64).build())
            .fit(points.view())
            .unwrap();
        let labels = result.assign_noise_to_nearest_centroid(points.view());
        assert_eq!(labels.len(), points.len());
        // Every point now has a real cluster id.
        assert!(labels.iter().all(|&l| l < result.cluster_count().max(1)));
        // And the clustering still reflects the ground truth reasonably.
        let score = ami(&truth[..1200], &labels[..1200]);
        assert!(score > 0.5, "AMI {score}");
    }
}
