//! The trained AdaWave serving model: O(1) per-point labeling through the
//! clustered grid, plus the versioned persistence payload.
//!
//! WaveCluster-style grid methods label *any* point by quantizing it and
//! looking its (downsampled) cell up in the cell → cluster table; the grid
//! built by one fit therefore serves arbitrarily many predictions. This is
//! the [`adawave_api::Model`] the paper's pipeline naturally produces: the
//! clustered grid is the trained artifact, the per-point labeling step is
//! a hash lookup.

use std::collections::HashMap;

use adawave_api::{compact_remap, f64_to_hex, Model, PayloadReader, Precision};
use adawave_grid::{BoundingBox, F32Lane, KeyCodec, Quantizer};

use crate::adawave::GridModel;

/// A trained AdaWave model: the frozen quantization domain plus the
/// cell → cluster table of the transformed space.
///
/// Out-of-domain and non-finite points predict noise — the same outlier
/// contract the streaming layer (`adawave-stream`) applies to ingested
/// points, so a served model and a streaming session never disagree about
/// what an outlier is. Cluster ids follow the training clustering (first-
/// appearance numbering over the training batch), so
/// [`predict_one`](Model::predict_one) is consistent with the fit labels.
///
/// ```
/// use adawave_api::{Model, PointMatrix};
/// use adawave_core::{AdaWave, AdaWaveConfig};
///
/// let mut points = PointMatrix::new(2);
/// for i in 0..200 {
///     let t = i as f64 * 0.0004;
///     points.push_row(&[0.2 + t, 0.2 - t]);
///     points.push_row(&[0.8 - t, 0.8 + t]);
/// }
/// let adawave = AdaWave::new(AdaWaveConfig::builder().scale(32).build());
/// let (result, model) = adawave.fit_with_model(points.view()).unwrap();
/// // Training points reproduce their fit labels...
/// assert_eq!(model.predict(points.view()).unwrap(), result.to_clustering());
/// // ...and out-of-domain points are noise.
/// assert_eq!(model.predict_one(&[50.0, 50.0]), None);
/// ```
#[derive(Debug, Clone)]
pub struct AdaWaveModel {
    quantizer: Quantizer,
    levels: u32,
    down_codec: KeyCodec,
    /// Transformed-space cell key → cluster id (training numbering).
    cells: HashMap<u128, usize>,
    cluster_count: usize,
    /// Numeric lane the model was fitted with; predictions quantize
    /// through the same lane so serving matches training cell for cell.
    precision: Precision,
    /// Precomputed f32 quantization state, present exactly when
    /// `precision == F32` (built at fit/load time, not per query).
    lane: Option<F32Lane>,
}

impl AdaWaveModel {
    /// Build a serving model from a fitted grid model over the given
    /// original-space quantizer. `remap` maps the grid's component ids to
    /// the training clustering's ids (see [`compact_remap`]); pass the
    /// identity to keep raw component ids. `precision` must be the lane
    /// the grid was quantized with, so serving and training agree on cell
    /// boundaries.
    pub fn from_parts(
        quantizer: Quantizer,
        grid_model: &GridModel,
        remap: &[usize],
        precision: Precision,
    ) -> Self {
        let cells = grid_model
            .labels()
            .iter()
            .map(|(key, id)| (key, remap.get(id).copied().unwrap_or(id)))
            .collect();
        let lane = lane_for(&quantizer, precision);
        Self {
            quantizer,
            levels: grid_model.levels(),
            down_codec: grid_model.codec().clone(),
            cells,
            cluster_count: grid_model.cluster_count(),
            precision,
            lane,
        }
    }

    /// The numeric lane the model quantizes queries through.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The frozen quantization domain.
    pub fn domain(&self) -> &BoundingBox {
        self.quantizer.bounds()
    }

    /// Number of clusters in the table.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Number of surviving (labeled) transformed-space cells.
    pub fn labeled_cells(&self) -> usize {
        self.cells.len()
    }

    /// Reconstruct a model from its [`serialize`](Model::serialize)
    /// payload (header already stripped by the persistence layer).
    pub fn deserialize(payload: &str) -> Result<Self, String> {
        let mut reader = PayloadReader::new(payload);
        let dims: usize = reader.scalar("dims")?;
        let intervals: Vec<u32> = reader.list("intervals", dims)?;
        let down_intervals: Vec<u32> = reader.list("down-intervals", dims)?;
        let levels: u32 = reader.scalar("levels")?;
        let precision: Precision = reader.scalar("precision")?;
        let cluster_count: usize = reader.scalar("clusters")?;
        let min = reader.float_list("min", dims)?;
        let max = reader.float_list("max", dims)?;
        let cell_count: usize = reader.scalar("cells")?;
        let mut cells = HashMap::with_capacity(cell_count);
        for _ in 0..cell_count {
            let line = reader.line()?;
            let (key_hex, id) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad cell line '{line}'"))?;
            let key = u128::from_str_radix(key_hex, 16)
                .map_err(|_| format!("bad cell key '{key_hex}'"))?;
            let id: usize = id.parse().map_err(|_| format!("bad cluster id '{id}'"))?;
            cells.insert(key, id);
        }
        let quantizer = Quantizer::with_bounds(BoundingBox::from_bounds(min, max), &intervals)
            .map_err(|e| format!("bad quantizer: {e}"))?;
        let down_codec =
            KeyCodec::new(&down_intervals).map_err(|e| format!("bad down codec: {e}"))?;
        let lane = lane_for(&quantizer, precision);
        Ok(Self {
            quantizer,
            levels,
            down_codec,
            cells,
            cluster_count,
            precision,
            lane,
        })
    }
}

/// The precomputed f32 lane for a quantizer, present exactly when the
/// model's precision selects it.
fn lane_for(quantizer: &Quantizer, precision: Precision) -> Option<F32Lane> {
    match precision {
        Precision::F64 => None,
        Precision::F32 => Some(quantizer.f32_lane()),
    }
}

impl Model for AdaWaveModel {
    fn algorithm(&self) -> &str {
        "adawave"
    }

    fn dims(&self) -> usize {
        self.quantizer.dims()
    }

    /// Quantize the point into its original-space cell, downsample the
    /// coordinates through the decomposition levels and look the
    /// transformed cell up — the exact mapping `fit` applies to training
    /// points, so predicting on the training batch reproduces the fit
    /// labels bit for bit.
    fn predict_one(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.quantizer.dims() || !point.iter().all(|v| v.is_finite()) {
            return None;
        }
        if !self.quantizer.bounds().contains(point) {
            return None;
        }
        // Allocation-free downsampling: stream each coordinate out of the
        // original-space key, shift it through the decomposition levels
        // (saturating past 31, matching the fit path) and pack it straight
        // into the transformed-space key. The key is computed through the
        // same numeric lane as training, so serving never straddles a cell
        // boundary the fit did not.
        let key = match &self.lane {
            None => self.quantizer.cell_key(point),
            Some(lane) => self.quantizer.cell_key_f32(lane, point),
        };
        let codec = self.quantizer.codec();
        let mut down_key = 0u128;
        for j in 0..codec.dims() {
            let c = codec
                .coordinate(key, j)
                .checked_shr(self.levels)
                .unwrap_or(0);
            down_key |= self.down_codec.pack_coord(j, c);
        }
        self.cells.get(&down_key).copied()
    }

    fn summary(&self) -> String {
        format!(
            "adawave model: {} clusters over {} surviving grid cells \
             ({}-d domain, {} decomposition levels); out-of-domain and \
             non-finite points predict noise",
            self.cluster_count,
            self.cells.len(),
            self.quantizer.dims(),
            self.levels,
        )
    }

    fn serialize(&self) -> Option<String> {
        let dims = self.quantizer.dims();
        let bounds = self.quantizer.bounds();
        let mut out = String::new();
        out.push_str(&format!("dims {dims}\n"));
        out.push_str(&format!(
            "intervals {}\n",
            join_display(self.quantizer.codec().all_intervals())
        ));
        out.push_str(&format!(
            "down-intervals {}\n",
            join_display(self.down_codec.all_intervals())
        ));
        out.push_str(&format!("levels {}\n", self.levels));
        out.push_str(&format!("precision {}\n", self.precision));
        out.push_str(&format!("clusters {}\n", self.cluster_count));
        out.push_str(&format!("min {}\n", join_hex(bounds.min())));
        out.push_str(&format!("max {}\n", join_hex(bounds.max())));
        out.push_str(&format!("cells {}\n", self.cells.len()));
        // Sorted by key so the payload is deterministic.
        let mut sorted_cells: Vec<(u128, usize)> =
            // audit:allow(nondeterministic-iteration) cells are collected and sorted on the next line
            self.cells.iter().map(|(&k, &v)| (k, v)).collect();
        sorted_cells.sort_unstable();
        for (key, id) in sorted_cells {
            out.push_str(&format!("{key:032x} {id}\n"));
        }
        Some(out)
    }
}

/// Compute the training remap for a fitted assignment: raw component ids →
/// the first-appearance ids [`adawave_api::Clustering::new`] will assign.
pub(crate) fn assignment_remap(assignment: &[Option<usize>], cluster_count: usize) -> Vec<usize> {
    compact_remap(assignment.iter().filter_map(|a| *a), cluster_count)
}

fn join_display<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_hex(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_to_hex(v))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaWave, AdaWaveConfig};
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};

    fn noisy_blobs(seed: u64) -> PointMatrix {
        let mut rng = Rng::new(seed);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.03, 0.03], 400);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.03, 0.03], 400);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 400);
        points
    }

    #[test]
    fn predict_on_training_points_reproduces_fit_labels() {
        let points = noisy_blobs(3);
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).build());
        let (result, model) = adawave.fit_with_model(points.view()).unwrap();
        assert_eq!(
            model.predict(points.view()).unwrap(),
            result.to_clustering()
        );
        // predict_one agrees point by point with the compacted fit labels.
        let fit_labels = result.to_clustering();
        for (i, p) in points.rows().enumerate() {
            assert_eq!(model.predict_one(p), fit_labels.label(i), "point {i}");
        }
    }

    #[test]
    fn unanswerable_points_predict_noise() {
        let points = noisy_blobs(5);
        let (_, model) = AdaWave::new(AdaWaveConfig::builder().scale(32).build())
            .fit_with_model(points.view())
            .unwrap();
        assert_eq!(model.predict_one(&[99.0, 99.0]), None, "out of domain");
        assert_eq!(model.predict_one(&[f64::NAN, 0.5]), None, "non-finite");
        assert_eq!(model.predict_one(&[0.5]), None, "wrong dimensionality");
        assert_eq!(model.dims(), 2);
        assert!(model.summary().contains("clusters"), "{}", model.summary());
    }

    #[test]
    fn serialize_round_trips_bit_exactly() {
        let points = noisy_blobs(7);
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(64).levels(2).build());
        let (result, model) = adawave.fit_with_model(points.view()).unwrap();
        let payload = model.serialize().expect("adawave models serialize");
        let loaded = AdaWaveModel::deserialize(&payload).unwrap();
        assert_eq!(loaded.cluster_count(), model.cluster_count());
        assert_eq!(loaded.labeled_cells(), model.labeled_cells());
        assert_eq!(
            loaded.predict(points.view()).unwrap(),
            result.to_clustering()
        );
        // Deterministic payload: serializing the loaded model is identical.
        assert_eq!(loaded.serialize().unwrap(), payload);
    }

    #[test]
    fn f32_lane_fits_serves_and_round_trips() {
        let points = noisy_blobs(11);
        let adawave = AdaWave::new(
            AdaWaveConfig::builder()
                .scale(64)
                .precision(Precision::F32)
                .build(),
        );
        let (result, model) = adawave.fit_with_model(points.view()).unwrap();
        assert_eq!(model.precision(), Precision::F32);
        // The blobs still separate through the single-precision lane.
        assert!(result.cluster_count() >= 2, "{}", result.cluster_count());
        // Serving quantizes through the same lane as training, so training
        // points reproduce their fit labels exactly.
        assert_eq!(
            model.predict(points.view()).unwrap(),
            result.to_clustering()
        );
        // Persistence preserves the lane and the predictions.
        let payload = model.serialize().unwrap();
        assert!(payload.contains("precision f32"), "{payload}");
        let loaded = AdaWaveModel::deserialize(&payload).unwrap();
        assert_eq!(loaded.precision(), Precision::F32);
        assert_eq!(
            loaded.predict(points.view()).unwrap(),
            result.to_clustering()
        );
    }

    #[test]
    fn deserialize_rejects_malformed_payloads() {
        assert!(AdaWaveModel::deserialize("").is_err());
        assert!(AdaWaveModel::deserialize("dims banana\n").is_err());
        assert!(
            AdaWaveModel::deserialize("levels 1\n").is_err(),
            "wrong field order"
        );
        let points = noisy_blobs(9);
        let (_, model) = AdaWave::default().fit_with_model(points.view()).unwrap();
        let payload = model.serialize().unwrap();
        // Truncating the cell table is detected.
        let truncated: String = payload.lines().take(9).collect::<Vec<_>>().join("\n");
        assert!(AdaWaveModel::deserialize(&truncated).is_err());
    }
}
