//! Configuration of the AdaWave pipeline.
//!
//! AdaWave is advertised as "parameter free": every knob here has a default
//! matching the paper's setup (`scale = 128`, CDF(2,2) wavelet, one
//! decomposition level, adaptive elbow threshold), and the defaults are what
//! every experiment uses unless an ablation says otherwise.

use adawave_api::Precision;
use adawave_grid::Connectivity;
use adawave_runtime::Runtime;
use adawave_wavelet::{BoundaryMode, Wavelet};

use crate::threshold::ThresholdStrategy;

/// Full configuration of an AdaWave run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaWaveConfig {
    /// Number of intervals per dimension at quantization time (the paper's
    /// default is 128).
    pub scale: u32,
    /// Optional per-dimension interval counts overriding [`scale`](Self::scale).
    pub per_dimension_scale: Option<Vec<u32>>,
    /// Wavelet family whose low-pass filter smooths the grid densities.
    pub wavelet: Wavelet,
    /// Number of decomposition levels; each level halves every dimension.
    /// Level 0 is an honest no-smoothing pass: the transform is skipped and
    /// the adaptive threshold is applied to the raw quantized counts.
    pub levels: u32,
    /// Boundary handling for the smoothing convolution.
    pub boundary: BoundaryMode,
    /// Smoothed cells with |density| below this value are dropped before
    /// thresholding (the "remove coefficients close to zero" step).
    pub coefficient_epsilon: f64,
    /// Strategy used to pick the density threshold separating cluster grids
    /// from noise grids.
    pub threshold: ThresholdStrategy,
    /// Cell adjacency used by the connected-component step.
    pub connectivity: Connectivity,
    /// If the packed grid key would overflow 128 bits, automatically halve
    /// the scale until it fits instead of failing.
    pub auto_reduce_scale: bool,
    /// Upper bound on the number of occupied cells kept after each
    /// per-dimension smoothing pass. In high dimensions the kernel scatter
    /// would otherwise grow the sparse grid exponentially with `d`; only the
    /// lowest-magnitude cells beyond the budget are dropped, which the
    /// threshold filter would discard anyway.
    pub max_transformed_cells: usize,
    /// Worker pool for the quantization pass (the per-point hot path of
    /// the pipeline). The clustering is identical for every thread count.
    pub runtime: Runtime,
    /// Numeric lane for the per-point quantization kernels. The default
    /// [`Precision::F64`] lane is bit-for-bit reproducible across releases;
    /// the opt-in [`Precision::F32`] lane trades that contract for speed
    /// while staying deterministic across runs and thread counts.
    pub precision: Precision,
}

impl Default for AdaWaveConfig {
    fn default() -> Self {
        Self {
            scale: 128,
            per_dimension_scale: None,
            wavelet: Wavelet::Cdf22,
            levels: 1,
            boundary: BoundaryMode::Zero,
            coefficient_epsilon: 1e-9,
            threshold: ThresholdStrategy::default(),
            connectivity: Connectivity::Face,
            auto_reduce_scale: true,
            max_transformed_cells: 1_000_000,
            runtime: Runtime::from_env(),
            precision: Precision::F64,
        }
    }
}

impl AdaWaveConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> AdaWaveConfigBuilder {
        AdaWaveConfigBuilder {
            config: AdaWaveConfig::default(),
        }
    }

    /// The interval counts for a dataset of dimension `dims`.
    pub fn intervals_for(&self, dims: usize) -> Vec<u32> {
        match &self.per_dimension_scale {
            Some(v) => v.clone(),
            None => vec![self.scale; dims],
        }
    }
}

/// Builder for [`AdaWaveConfig`].
#[derive(Debug, Clone)]
pub struct AdaWaveConfigBuilder {
    config: AdaWaveConfig,
}

impl AdaWaveConfigBuilder {
    /// Set the number of intervals per dimension.
    pub fn scale(mut self, scale: u32) -> Self {
        self.config.scale = scale;
        self
    }

    /// Set explicit per-dimension interval counts.
    pub fn per_dimension_scale(mut self, intervals: Vec<u32>) -> Self {
        self.config.per_dimension_scale = Some(intervals);
        self
    }

    /// Set the wavelet family.
    pub fn wavelet(mut self, wavelet: Wavelet) -> Self {
        self.config.wavelet = wavelet;
        self
    }

    /// Set the number of decomposition levels (0 = skip the transform and
    /// threshold the raw quantized grid).
    pub fn levels(mut self, levels: u32) -> Self {
        self.config.levels = levels;
        self
    }

    /// Set the boundary handling mode.
    pub fn boundary(mut self, boundary: BoundaryMode) -> Self {
        self.config.boundary = boundary;
        self
    }

    /// Set the near-zero coefficient cut-off.
    pub fn coefficient_epsilon(mut self, epsilon: f64) -> Self {
        self.config.coefficient_epsilon = epsilon;
        self
    }

    /// Set the threshold strategy.
    pub fn threshold(mut self, threshold: ThresholdStrategy) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Set the connected-component adjacency.
    pub fn connectivity(mut self, connectivity: Connectivity) -> Self {
        self.config.connectivity = connectivity;
        self
    }

    /// Enable or disable automatic scale reduction on key overflow.
    pub fn auto_reduce_scale(mut self, enabled: bool) -> Self {
        self.config.auto_reduce_scale = enabled;
        self
    }

    /// Set the per-dimension occupied-cell budget of the sparse transform.
    pub fn max_transformed_cells(mut self, budget: usize) -> Self {
        self.config.max_transformed_cells = budget;
        self
    }

    /// Set the worker pool for the parallel pipeline stages.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.config.runtime = runtime;
        self
    }

    /// Set the worker count (`0` = auto: `ADAWAVE_THREADS` or all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.runtime = Runtime::with_threads(threads);
        self
    }

    /// Select the numeric lane for the quantization kernels (default
    /// [`Precision::F64`]; `F32` opts into the faster single-precision
    /// lane).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Finish building.
    pub fn build(self) -> AdaWaveConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AdaWaveConfig::default();
        assert_eq!(c.scale, 128);
        assert_eq!(c.wavelet, Wavelet::Cdf22);
        assert_eq!(c.levels, 1);
        assert_eq!(c.connectivity, Connectivity::Face);
        assert!(c.auto_reduce_scale);
        assert_eq!(c.max_transformed_cells, 1_000_000);
        assert_eq!(c.precision, Precision::F64);
    }

    #[test]
    fn builder_selects_precision_lane() {
        let c = AdaWaveConfig::builder().precision(Precision::F32).build();
        assert_eq!(c.precision, Precision::F32);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = AdaWaveConfig::builder()
            .scale(64)
            .wavelet(Wavelet::Haar)
            .levels(2)
            .boundary(BoundaryMode::Periodic)
            .coefficient_epsilon(0.01)
            .connectivity(Connectivity::Moore)
            .auto_reduce_scale(false)
            .max_transformed_cells(5000)
            .build();
        assert_eq!(c.scale, 64);
        assert_eq!(c.wavelet, Wavelet::Haar);
        assert_eq!(c.levels, 2);
        assert_eq!(c.boundary, BoundaryMode::Periodic);
        assert_eq!(c.coefficient_epsilon, 0.01);
        assert_eq!(c.connectivity, Connectivity::Moore);
        assert!(!c.auto_reduce_scale);
        assert_eq!(c.max_transformed_cells, 5000);
    }

    #[test]
    fn intervals_for_uniform_and_per_dimension() {
        let c = AdaWaveConfig::builder().scale(16).build();
        assert_eq!(c.intervals_for(3), vec![16, 16, 16]);
        let c = AdaWaveConfig::builder()
            .per_dimension_scale(vec![8, 32])
            .build();
        assert_eq!(c.intervals_for(2), vec![8, 32]);
    }
}
