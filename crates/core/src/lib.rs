//! # adawave-core
//!
//! AdaWave: adaptive wavelet clustering for highly noisy data — the primary
//! contribution of the paper, built on the `adawave-grid` (sparse "grid
//! labeling") and `adawave-wavelet` (DWT) substrates.
//!
//! The pipeline follows Algorithm 1 of the paper:
//!
//! 1. **Quantization** — divide the feature space into `scale` intervals per
//!    dimension and count points per grid cell, storing only non-empty
//!    cells ([`adawave_grid::Quantizer`]).
//! 2. **Wavelet transform** — smooth the sparse grid densities with the
//!    low-pass branch of the chosen wavelet, one dimension at a time,
//!    downsampling by two per level; wavelet coefficients near zero are
//!    dropped ([`transform`]).
//! 3. **Adaptive threshold filtering** — sort the smoothed densities and
//!    find the elbow between "middle" and "noise" grids
//!    ([`threshold::ThresholdStrategy`]), then remove every grid below it.
//! 4. **Connected components** — adjacent surviving grids form clusters.
//! 5. **Label & lookup** — map every original point to the cluster of its
//!    (downsampled) grid cell; points in removed cells become noise.
//!
//! ## The unified clustering API
//!
//! AdaWave participates in the workspace's unified API
//! (`adawave-api`): [`AdaWave`] implements [`adawave_api::Clusterer`],
//! whose `fit` returns the canonical [`adawave_api::Clustering`] shared
//! with every baseline — obtain it from an [`AdaWaveResult`] via
//! [`AdaWaveResult::to_clustering`]. The inherent [`AdaWave::fit`] remains
//! the richer surface, additionally exposing the pipeline diagnostics
//! ([`GridStats`], the sorted density curve of Fig. 6). Use
//! [`clusterer::register`] to add AdaWave to an
//! [`adawave_api::AlgorithmRegistry`], or the umbrella `adawave` crate's
//! `standard_registry()` for AdaWave plus all baselines.
//!
//! Points travel through the pipeline as the flat row-major
//! [`adawave_api::PointsView`]; build one from owned data with
//! [`adawave_api::PointMatrix`]:
//!
//! ```
//! use adawave_api::PointMatrix;
//! use adawave_core::{AdaWave, AdaWaveConfig};
//!
//! // Two tight diagonal streaks plus one stray point.
//! let mut points = PointMatrix::new(2);
//! for i in 0..100 {
//!     let t = i as f64 * 0.0003;
//!     points.push_row(&[0.2 + t, 0.2 - t]);
//!     points.push_row(&[0.8 - t, 0.8 + t]);
//! }
//! points.push_row(&[0.5, 0.95]);
//!
//! let config = AdaWaveConfig::builder().scale(32).build();
//! let result = AdaWave::new(config).fit(points.view()).unwrap();
//! assert!(result.cluster_count() >= 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adawave;
pub mod clusterer;
pub mod config;
pub mod model;
pub mod result;
pub mod threshold;
pub mod transform;

pub use adawave::{cluster_grid, AdaWave, GridModel};
pub use clusterer::register;
pub use config::{AdaWaveConfig, AdaWaveConfigBuilder};
pub use model::AdaWaveModel;
pub use result::{AdaWaveResult, GridStats};
pub use threshold::ThresholdStrategy;
pub use transform::{
    sparse_wavelet_level, sparse_wavelet_level_budgeted, sparse_wavelet_smooth,
    sparse_wavelet_smooth_budgeted,
};

/// Errors produced by the AdaWave pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaWaveError {
    /// The input point set is empty or inconsistent.
    InvalidInput {
        /// Human-readable description.
        context: String,
    },
    /// The grid configuration cannot be represented (too many dimensions
    /// for the requested scale); lower the scale.
    Grid(adawave_grid::GridError),
}

impl std::fmt::Display for AdaWaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaWaveError::InvalidInput { context } => write!(f, "invalid input: {context}"),
            AdaWaveError::Grid(e) => write!(f, "grid error: {e}"),
        }
    }
}

impl std::error::Error for AdaWaveError {}

impl From<adawave_grid::GridError> for AdaWaveError {
    fn from(e: adawave_grid::GridError) -> Self {
        AdaWaveError::Grid(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, AdaWaveError>;
