//! Sparse per-dimension wavelet smoothing (Algorithm 3 of the paper).
//!
//! The dense WaveCluster transform convolves the full `M^d` grid; AdaWave
//! instead applies the same low-pass filter + downsample **directly on the
//! sparse `{key: density}` map** in scatter form: every occupied cell
//! contributes `kernel[t] · density` to the half-resolution output cell it
//! overlaps. The cost is `O(l · d · m)` for `m` occupied cells and a filter
//! of length `l`, independent of the dense grid volume — this is what makes
//! the paper's `O(nm)` total complexity and its memory frugality possible.

use adawave_grid::{KeyCodec, Result as GridResult, SparseGrid};
use adawave_wavelet::BoundaryMode;

/// Apply the low-pass filter along a single dimension of a sparse grid,
/// halving that dimension. The kernel is centered (offset `(l-1)/2`), so an
/// input coordinate `c` lands mainly in output coordinate `c >> 1`,
/// matching the lookup-table mapping used to label points later.
///
/// Returns the new grid together with the codec describing it.
pub fn sparse_lowpass_dimension(
    grid: &SparseGrid,
    codec: &KeyCodec,
    dim: usize,
    kernel: &[f64],
    boundary: BoundaryMode,
) -> GridResult<(SparseGrid, KeyCodec)> {
    let old_m = codec.intervals(dim);
    let new_m = old_m.div_ceil(2).max(1);
    let mut new_intervals: Vec<u32> = codec.all_intervals().to_vec();
    new_intervals[dim] = new_m;
    let new_codec = KeyCodec::new(&new_intervals)?;

    let offset = (kernel.len() as isize - 1) / 2;
    // Scatter in sorted-key order so each output cell accumulates its
    // floating-point contributions in a fixed sequence. Hash-map iteration
    // order differs per map instance, and for wavelets with irrational
    // taps (db2/db3) a different summation order rounds differently —
    // sorting makes the transform a pure function of the grid *content*,
    // which is what lets a streamed accumulator refit bit-identically to a
    // freshly quantized one (and two `fit` calls agree with each other).
    let mut entries: Vec<(u128, f64)> = grid.iter().collect();
    entries.sort_unstable_by_key(|&(key, _)| key);
    let mut out = SparseGrid::with_capacity(grid.occupied_cells());
    for (key, density) in entries {
        let c = codec.coordinate(key, dim) as isize;
        // Input index c appears at kernel tap t of output i when
        // 2i - offset + t = c  =>  i = (c + offset - t) / 2.
        for (t, &h) in kernel.iter().enumerate() {
            if h == 0.0 {
                continue;
            }
            let numerator = c + offset - t as isize;
            if boundary == BoundaryMode::Periodic {
                // Periodic extension wraps *input* coordinates, so reduce
                // modulo `old_m` before halving. Reducing modulo
                // `2 * new_m` instead — which equals `old_m + 1` when
                // `old_m` is odd — would send boundary mass to a phantom
                // input coordinate that does not exist on the ring.
                // `2i ≡ numerator (mod old_m)` has a solution with
                // `i < new_m` exactly when the wrapped position is even.
                let wrapped = numerator.rem_euclid(old_m as isize);
                if wrapped % 2 != 0 {
                    continue;
                }
                let i = (wrapped / 2) as u32;
                debug_assert!(i < new_m);
                let new_key = remap_key(codec, &new_codec, key, dim, i);
                out.add(new_key, h * density);
                continue;
            }
            // Zero boundary handling: out-of-range contributions (negative,
            // odd, or beyond the halved extent) are dropped.
            if numerator < 0 || numerator % 2 != 0 {
                continue;
            }
            let i = numerator / 2;
            if i >= new_m as isize {
                continue;
            }
            let new_key = remap_key(codec, &new_codec, key, dim, i as u32);
            out.add(new_key, h * density);
        }
    }
    Ok((out, new_codec))
}

/// Re-encode a key from `old_codec` to `new_codec` with dimension `dim`
/// replaced by `new_coord` (all other coordinates are copied).
fn remap_key(
    old_codec: &KeyCodec,
    new_codec: &KeyCodec,
    key: u128,
    dim: usize,
    new_coord: u32,
) -> u128 {
    let mut coords = old_codec.unpack(key);
    coords[dim] = new_coord;
    // Clamp other coordinates in case the new codec is narrower (it never
    // is for dimensions other than `dim`, but stay defensive).
    for (j, c) in coords.iter_mut().enumerate() {
        let m = new_codec.intervals(j);
        if *c >= m {
            *c = m - 1;
        }
    }
    new_codec.pack(&coords)
}

/// One full decomposition level: smooth and halve every dimension in turn
/// (Algorithm 3). Returns the transformed grid and its codec.
pub fn sparse_wavelet_level(
    grid: &SparseGrid,
    codec: &KeyCodec,
    kernel: &[f64],
    boundary: BoundaryMode,
) -> GridResult<(SparseGrid, KeyCodec)> {
    sparse_wavelet_level_budgeted(grid, codec, kernel, boundary, usize::MAX)
}

/// [`sparse_wavelet_level`] with a cap on the number of occupied cells kept
/// after each per-dimension pass.
///
/// The scatter of an `l`-tap kernel can multiply the number of occupied
/// cells by up to `ceil(l/2) + 1` once per dimension, which in high
/// dimensions turns a sparse grid into an exponentially large one. After
/// each dimension the lowest-magnitude cells beyond `cell_budget` are
/// discarded; the densest cells — the ones the clustering step keeps anyway —
/// always survive. Pass `usize::MAX` to disable the guard.
pub fn sparse_wavelet_level_budgeted(
    grid: &SparseGrid,
    codec: &KeyCodec,
    kernel: &[f64],
    boundary: BoundaryMode,
    cell_budget: usize,
) -> GridResult<(SparseGrid, KeyCodec)> {
    let mut current = grid.clone();
    let mut current_codec = codec.clone();
    for dim in 0..codec.dims() {
        let (mut next, next_codec) =
            sparse_lowpass_dimension(&current, &current_codec, dim, kernel, boundary)?;
        if next.occupied_cells() > cell_budget {
            next.prune_to_top(cell_budget);
        }
        current = next;
        current_codec = next_codec;
    }
    Ok((current, current_codec))
}

/// Apply `levels` full decomposition levels.
pub fn sparse_wavelet_smooth(
    grid: &SparseGrid,
    codec: &KeyCodec,
    kernel: &[f64],
    boundary: BoundaryMode,
    levels: u32,
) -> GridResult<(SparseGrid, KeyCodec)> {
    sparse_wavelet_smooth_budgeted(grid, codec, kernel, boundary, levels, usize::MAX)
}

/// [`sparse_wavelet_smooth`] with the per-dimension cell budget of
/// [`sparse_wavelet_level_budgeted`].
pub fn sparse_wavelet_smooth_budgeted(
    grid: &SparseGrid,
    codec: &KeyCodec,
    kernel: &[f64],
    boundary: BoundaryMode,
    levels: u32,
    cell_budget: usize,
) -> GridResult<(SparseGrid, KeyCodec)> {
    let mut current = grid.clone();
    let mut current_codec = codec.clone();
    for _ in 0..levels {
        let (next, next_codec) =
            sparse_wavelet_level_budgeted(&current, &current_codec, kernel, boundary, cell_budget)?;
        current = next;
        current_codec = next_codec;
    }
    Ok((current, current_codec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_wavelet::Wavelet;

    fn kernel() -> Vec<f64> {
        Wavelet::Cdf22.density_smoothing_kernel()
    }

    #[test]
    fn single_dimension_halves_coordinates() {
        let codec = KeyCodec::uniform(1, 16).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[10]), 4.0);
        let (out, out_codec) =
            sparse_lowpass_dimension(&grid, &codec, 0, &kernel(), BoundaryMode::Zero).unwrap();
        assert_eq!(out_codec.intervals(0), 8);
        // The dominant contribution of input 10 is output 5.
        let mut best = (0u32, f64::MIN);
        for (k, v) in out.iter() {
            if v > best.1 {
                best = (out_codec.coordinate(k, 0), v);
            }
        }
        assert_eq!(best.0, 5);
    }

    #[test]
    fn level_halves_every_dimension() {
        let codec = KeyCodec::new(&[16, 8, 4]).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[3, 3, 3]), 1.0);
        let (_, out_codec) =
            sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        assert_eq!(out_codec.all_intervals(), &[8, 4, 2]);
    }

    #[test]
    fn dense_block_keeps_its_level_and_aligns_with_halved_coords() {
        // An 8x8 block of density 10 at [16..24)^2 in a 32x32 grid maps to
        // [8..12)^2 after one level, with interior density preserved.
        let codec = KeyCodec::uniform(2, 32).unwrap();
        let mut grid = SparseGrid::new();
        for x in 16..24u32 {
            for y in 16..24u32 {
                grid.add(codec.pack(&[x, y]), 10.0);
            }
        }
        let (out, out_codec) =
            sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        assert_eq!(out_codec.all_intervals(), &[16, 16]);
        let interior = out.density(out_codec.pack(&[10, 10]));
        assert!((interior - 10.0).abs() < 1e-9, "interior {interior}");
        let far_away = out.density(out_codec.pack(&[4, 4]));
        assert!(far_away.abs() < 1e-9);
    }

    #[test]
    fn isolated_noise_cell_is_attenuated_relative_to_blocks() {
        let codec = KeyCodec::uniform(2, 64).unwrap();
        let mut grid = SparseGrid::new();
        // Dense 4x4 block of 5s and one isolated cell of 5.
        for x in 10..14u32 {
            for y in 10..14u32 {
                grid.add(codec.pack(&[x, y]), 5.0);
            }
        }
        grid.add(codec.pack(&[40, 40]), 5.0);
        let (out, out_codec) =
            sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        let block_center = out.density(out_codec.pack(&[6, 6]));
        let noise = out.density(out_codec.pack(&[20, 20]));
        assert!(
            block_center > 2.0 * noise,
            "block {block_center} vs noise {noise}"
        );
    }

    #[test]
    fn density_level_is_preserved_and_mass_scales_with_downsampling() {
        // A unit-sum kernel preserves the *density level* of a flat block;
        // since every dimension is halved, the total mass of the block drops
        // by roughly 2^d (modulo edge effects).
        let codec = KeyCodec::uniform(2, 64).unwrap();
        let mut grid = SparseGrid::new();
        for x in 20..28u32 {
            for y in 20..28u32 {
                grid.add(codec.pack(&[x, y]), 3.0);
            }
        }
        let before = grid.total_mass();
        let (out, out_codec) =
            sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        let after = out.total_mass();
        assert!(
            after > 0.15 * before && after < 0.4 * before,
            "mass {before} -> {after} (expected ~1/4)"
        );
        // Interior density level is unchanged.
        let interior = out.density(out_codec.pack(&[12, 12]));
        assert!((interior - 3.0).abs() < 1e-9, "interior {interior}");
    }

    #[test]
    fn multi_level_reduces_resolution_geometrically() {
        let codec = KeyCodec::uniform(2, 64).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[32, 32]), 1.0);
        let (_, c1) =
            sparse_wavelet_smooth(&grid, &codec, &kernel(), BoundaryMode::Zero, 1).unwrap();
        let (_, c3) =
            sparse_wavelet_smooth(&grid, &codec, &kernel(), BoundaryMode::Zero, 3).unwrap();
        assert_eq!(c1.all_intervals(), &[32, 32]);
        assert_eq!(c3.all_intervals(), &[8, 8]);
    }

    #[test]
    fn occupied_cells_stay_proportional_to_input_cells() {
        // Sparsity: the output never has more than (kernel support) times
        // the input cells, far below the dense grid volume.
        let codec = KeyCodec::uniform(3, 64).unwrap();
        let mut grid = SparseGrid::new();
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (state >> 33) as u32 % 64;
            let y = (state >> 22) as u32 % 64;
            let z = (state >> 11) as u32 % 64;
            grid.add(codec.pack(&[x, y, z]), 1.0);
        }
        let (out, _) = sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        assert!(out.occupied_cells() <= grid.occupied_cells() * 27);
        assert!(out.occupied_cells() < 64 * 64 * 64 / 8);
    }

    #[test]
    fn cell_budget_keeps_the_densest_cells_and_bounds_memory() {
        // A dense 6x6 block plus many isolated unit cells: with a tight
        // budget only the neighbourhood of the block survives.
        let codec = KeyCodec::uniform(2, 64).unwrap();
        let mut grid = SparseGrid::new();
        for x in 10..16u32 {
            for y in 10..16u32 {
                grid.add(codec.pack(&[x, y]), 20.0);
            }
        }
        let mut state = 99u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = 32 + (state >> 33) as u32 % 32;
            let y = 32 + (state >> 22) as u32 % 32;
            grid.add(codec.pack(&[x, y]), 1.0);
        }
        let budget = 16;
        let (out, out_codec) =
            sparse_wavelet_level_budgeted(&grid, &codec, &kernel(), BoundaryMode::Zero, budget)
                .unwrap();
        assert!(out.occupied_cells() <= budget);
        // The interior of the block survives at full density.
        let interior = out.density(out_codec.pack(&[6, 6]));
        assert!(interior > 10.0, "interior {interior}");
    }

    #[test]
    fn unlimited_budget_matches_the_unbudgeted_transform() {
        let codec = KeyCodec::uniform(2, 32).unwrap();
        let mut grid = SparseGrid::new();
        for x in 4..12u32 {
            for y in 4..12u32 {
                grid.add(codec.pack(&[x, y]), (x + y) as f64);
            }
        }
        let plain = sparse_wavelet_level(&grid, &codec, &kernel(), BoundaryMode::Zero).unwrap();
        let budgeted =
            sparse_wavelet_level_budgeted(&grid, &codec, &kernel(), BoundaryMode::Zero, usize::MAX)
                .unwrap();
        assert_eq!(plain.0, budgeted.0);
    }

    #[test]
    fn periodic_boundary_wraps_contributions() {
        // Use the Haar kernel (non-negative taps) so total mass is a valid
        // proxy for "contributions kept": with periodic wrapping no tap of a
        // boundary cell is dropped, with zero padding some are.
        let haar = Wavelet::Haar.density_smoothing_kernel();
        let codec = KeyCodec::uniform(1, 8).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[0]), 1.0);
        grid.add(codec.pack(&[7]), 1.0);
        let zero = sparse_lowpass_dimension(&grid, &codec, 0, &haar, BoundaryMode::Zero)
            .unwrap()
            .0;
        let periodic = sparse_lowpass_dimension(&grid, &codec, 0, &haar, BoundaryMode::Periodic)
            .unwrap()
            .0;
        assert!(periodic.total_mass() >= zero.total_mass() - 1e-12);

        // With a wider kernel that has negative taps the periodic transform
        // must still produce at least as many occupied cells near the edges.
        let zero = sparse_lowpass_dimension(&grid, &codec, 0, &kernel(), BoundaryMode::Zero)
            .unwrap()
            .0;
        let periodic =
            sparse_lowpass_dimension(&grid, &codec, 0, &kernel(), BoundaryMode::Periodic)
                .unwrap()
                .0;
        assert!(periodic.occupied_cells() >= zero.occupied_cells());
    }

    #[test]
    fn periodic_wrap_on_odd_dimension_reaches_the_last_cell_not_a_phantom() {
        // Regression for the negative-numerator wrap branch: with
        // `old_m = 7` (odd), `new_m = 4` and the Haar kernel
        // `[0.5, 0.5]` (offset 0), the cell at input coordinate 0 feeds
        // output 0 (tap 0) and — through the periodic wrap `-1 ≡ 6
        // (mod 7)` — output 3 (tap 1): `output[3] = (in[6] + in[7 mod 7 =
        // 0]) / 2`. The old code reduced modulo `2 * new_m = 8`, landing
        // the wrap on the phantom input coordinate 7 and dropping it.
        let haar = Wavelet::Haar.density_smoothing_kernel();
        let codec = KeyCodec::new(&[7]).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[0]), 1.0);
        let (out, out_codec) =
            sparse_lowpass_dimension(&grid, &codec, 0, &haar, BoundaryMode::Periodic).unwrap();
        assert_eq!(out_codec.intervals(0), 4);
        assert!((out.density(out_codec.pack(&[0])) - 0.5).abs() < 1e-15);
        assert!((out.density(out_codec.pack(&[3])) - 0.5).abs() < 1e-15);
        assert!((out.total_mass() - 1.0).abs() < 1e-15, "no tap was lost");
    }

    #[test]
    fn periodic_wrap_on_odd_dimension_matches_direct_convolution() {
        // Regression for the overflowing-index wrap branch: with the
        // 5-tap CDF(2,2) kernel (offset 2) over `old_m = 7`, the cell at
        // input coordinate 6 produces `numerator = 8` at tap 0 — the old
        // code wrapped the *output* index modulo `new_m`, adding a
        // spurious `-0.125` at output 0. The direct periodic convolution
        // `output[i] = Σ_t h[t] · input[(2i + t - 2) mod 7]` says input 6
        // feeds exactly outputs {0: 0.25, 2: -0.125, 3: 0.75}.
        let codec = KeyCodec::new(&[7]).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[6]), 1.0);
        let (out, out_codec) =
            sparse_lowpass_dimension(&grid, &codec, 0, &kernel(), BoundaryMode::Periodic).unwrap();
        let expected = [(0u32, 0.25), (2, -0.125), (3, 0.75)];
        assert_eq!(out.occupied_cells(), expected.len());
        for (coord, value) in expected {
            let got = out.density(out_codec.pack(&[coord]));
            assert!((got - value).abs() < 1e-15, "output {coord}: {got}");
        }
        // Exhaustive cross-check over every input cell of the odd ring:
        // scatter output == gather (direct convolution) output.
        for c in 0..7u32 {
            let mut grid = SparseGrid::new();
            grid.add(codec.pack(&[c]), 1.0);
            let (out, out_codec) =
                sparse_lowpass_dimension(&grid, &codec, 0, &kernel(), BoundaryMode::Periodic)
                    .unwrap();
            let k = kernel();
            for i in 0..4u32 {
                let direct: f64 = k
                    .iter()
                    .enumerate()
                    .map(|(t, &h)| {
                        let pos = (2 * i as i64 + t as i64 - 2).rem_euclid(7);
                        if pos == c as i64 {
                            h
                        } else {
                            0.0
                        }
                    })
                    .sum();
                let got = out.density(out_codec.pack(&[i]));
                assert!(
                    (got - direct).abs() < 1e-15,
                    "input {c} output {i}: scatter {got} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn haar_kernel_gives_exact_pairwise_average() {
        let codec = KeyCodec::uniform(1, 8).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[2]), 4.0);
        grid.add(codec.pack(&[3]), 6.0);
        let haar = Wavelet::Haar.density_smoothing_kernel();
        let (out, out_codec) =
            sparse_lowpass_dimension(&grid, &codec, 0, &haar, BoundaryMode::Zero).unwrap();
        assert!((out.density(out_codec.pack(&[1])) - 5.0).abs() < 1e-12);
    }
}
