//! Result types returned by an AdaWave run.

use adawave_api::PointsView;

/// Statistics about the grid pipeline, useful for the Fig. 5 / Fig. 6
//  experiments and for diagnosing configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct GridStats {
    /// Number of occupied cells right after quantization.
    pub quantized_cells: usize,
    /// Number of occupied cells after the wavelet transform (before any
    /// thresholding).
    pub transformed_cells: usize,
    /// Number of cells removed because their coefficient was near zero.
    pub near_zero_removed: usize,
    /// The adaptive density threshold that was chosen.
    pub threshold: f64,
    /// Number of cells removed by the threshold filter.
    pub threshold_removed: usize,
    /// Number of cells that survived and were clustered.
    pub surviving_cells: usize,
    /// Effective scale used per dimension (after any automatic reduction).
    pub intervals: Vec<u32>,
}

/// The outcome of clustering a dataset with AdaWave.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaWaveResult {
    assignment: Vec<Option<usize>>,
    cluster_count: usize,
    stats: GridStats,
    sorted_densities: Vec<f64>,
}

impl AdaWaveResult {
    pub(crate) fn new(
        assignment: Vec<Option<usize>>,
        cluster_count: usize,
        stats: GridStats,
        sorted_densities: Vec<f64>,
    ) -> Self {
        Self {
            assignment,
            cluster_count,
            stats,
            sorted_densities,
        }
    }

    /// Number of points that were clustered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of clusters found (noise excluded).
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Cluster of a point; `None` means the point was classified as noise
    /// (the paper groups these as one extra "noise cluster").
    pub fn label(&self, point: usize) -> Option<usize> {
        self.assignment[point]
    }

    /// The per-point assignment.
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.assignment
    }

    /// Number of points classified as noise.
    pub fn noise_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_none()).count()
    }

    /// Fraction of points classified as noise.
    pub fn noise_fraction(&self) -> f64 {
        if self.assignment.is_empty() {
            0.0
        } else {
            self.noise_count() as f64 / self.assignment.len() as f64
        }
    }

    /// Size of every cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cluster_count];
        for a in self.assignment.iter().flatten() {
            sizes[*a] += 1;
        }
        sizes
    }

    /// Convert to a dense label vector, mapping noise to `noise_label`.
    pub fn to_labels(&self, noise_label: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .map(|a| a.unwrap_or(noise_label))
            .collect()
    }

    /// Convert to the canonical [`adawave_api::Clustering`] shared by every
    /// algorithm in the workspace, dropping the AdaWave-specific pipeline
    /// diagnostics. This is what [`Clusterer::fit`] returns for AdaWave.
    ///
    /// [`Clusterer::fit`]: adawave_api::Clusterer::fit
    pub fn to_clustering(&self) -> adawave_api::Clustering {
        adawave_api::Clustering::new(self.assignment.clone())
    }

    /// Grid pipeline statistics.
    pub fn stats(&self) -> &GridStats {
        &self.stats
    }

    /// The smoothed grid densities in descending order — the curve of
    /// Fig. 6, exposed for the threshold experiments.
    pub fn sorted_densities(&self) -> &[f64] {
        &self.sorted_densities
    }

    /// Reassign every noise point to the cluster with the nearest centroid
    /// (the paper's protocol for the real-world datasets of Table I, which
    /// have no noise ground truth). Returns the new dense labels; with no
    /// clusters at all, every point is labeled 0.
    ///
    /// Delegates to the canonical
    /// [`Clustering::assign_noise_to_nearest_centroid`](adawave_api::Clustering::assign_noise_to_nearest_centroid)
    /// so core and baselines share one implementation of the protocol.
    pub fn assign_noise_to_nearest_centroid(&self, points: PointsView<'_>) -> Vec<usize> {
        self.to_clustering()
            .assign_noise_to_nearest_centroid(points)
            .to_labels(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> GridStats {
        GridStats {
            quantized_cells: 100,
            transformed_cells: 80,
            near_zero_removed: 5,
            threshold: 2.5,
            threshold_removed: 40,
            surviving_cells: 35,
            intervals: vec![128, 128],
        }
    }

    #[test]
    fn accessors() {
        let r = AdaWaveResult::new(
            vec![Some(0), Some(1), None, Some(0)],
            2,
            stats(),
            vec![9.0, 5.0, 1.0],
        );
        assert_eq!(r.len(), 4);
        assert_eq!(r.cluster_count(), 2);
        assert_eq!(r.noise_count(), 1);
        assert_eq!(r.noise_fraction(), 0.25);
        assert_eq!(r.cluster_sizes(), vec![2, 1]);
        assert_eq!(r.to_labels(9), vec![0, 1, 9, 0]);
        assert_eq!(r.label(2), None);
        assert_eq!(r.stats().threshold, 2.5);
        assert_eq!(r.sorted_densities(), &[9.0, 5.0, 1.0]);
        assert!(!r.is_empty());
    }

    #[test]
    fn noise_reassignment_to_nearest_centroid() {
        let points = adawave_api::PointMatrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![5.0, 5.0],
            vec![5.2, 5.0],
            vec![4.5, 4.9],
        ])
        .unwrap();
        let r = AdaWaveResult::new(
            vec![Some(0), Some(0), Some(1), Some(1), None],
            2,
            stats(),
            vec![],
        );
        let labels = r.assign_noise_to_nearest_centroid(points.view());
        assert_eq!(labels[4], labels[2]);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn noise_reassignment_without_clusters_is_stable() {
        let points = adawave_api::PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let r = AdaWaveResult::new(vec![None, None], 0, stats(), vec![]);
        let labels = r.assign_noise_to_nearest_centroid(points.view());
        assert_eq!(labels.len(), 2);
    }
}
