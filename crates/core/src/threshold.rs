//! Adaptive threshold selection (Algorithm 4 / Fig. 6 of the paper).
//!
//! After wavelet smoothing, the sorted grid densities form three regimes:
//! a steep head of *signal* grids, a sloping *middle* of boundary grids and
//! a long, nearly flat tail of *noise* grids. The threshold should sit
//! where the middle regime meets the noise regime. The paper finds it with
//! an "elbow" heuristic on the turning angle of the sorted-density curve;
//! we implement that (in a corrected form — the algorithm as printed can
//! never update its θ₀), plus alternative strategies used for ablations.

/// Strategy used to pick the density threshold from the descending sorted
/// density curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdStrategy {
    /// Corrected version of the paper's Algorithm 4: walk the axis-normalized
    /// sorted-density curve, track the largest turning angle θ₀ seen so far
    /// and stop at the first point after a pronounced elbow where the turn
    /// falls below `θ₀ / divisor`. Falls back to [`ThresholdStrategy::ThreeSegment`]
    /// when no pronounced elbow exists.
    ElbowAngle {
        /// Divisor applied to the maximum turning angle (3.0 in the paper).
        divisor: f64,
    },
    /// Least-squares fit of three line segments to the sorted density curve
    /// (signal / middle / noise); the threshold is the density at the second
    /// breakpoint — exactly the description of Fig. 6.
    ThreeSegment,
    /// Kneedle-style: the point of maximum distance below the chord from the
    /// first to the last point of the normalized curve.
    Kneedle,
    /// A fixed absolute density threshold.
    Fixed(f64),
    /// Keep the top `fraction` of the sorted densities (e.g. 0.2 keeps the
    /// densest 20% of grids).
    Quantile(f64),
}

impl Default for ThresholdStrategy {
    /// The default is the three-segment fit: it is the direct translation
    /// of the paper's Fig. 6 description ("statistically fitted with three
    /// line segments", threshold at the middle/noise intersection) and in
    /// our ablations (`experiments -- ablation`) it is considerably more
    /// robust across noise levels and dataset sizes than the literal
    /// turning-angle reading of Algorithm 4, which remains available as
    /// [`ThresholdStrategy::ElbowAngle`].
    fn default() -> Self {
        ThresholdStrategy::ThreeSegment
    }
}

impl ThresholdStrategy {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ThresholdStrategy::ElbowAngle { .. } => "elbow-angle",
            ThresholdStrategy::ThreeSegment => "three-segment",
            ThresholdStrategy::Kneedle => "kneedle",
            ThresholdStrategy::Fixed(_) => "fixed",
            ThresholdStrategy::Quantile(_) => "quantile",
        }
    }

    /// Choose a threshold given the densities sorted in **descending**
    /// order. Returns 0.0 (keep everything) for degenerate inputs.
    pub fn choose(&self, sorted_densities: &[f64]) -> f64 {
        let m = sorted_densities.len();
        if m < 3 {
            return 0.0;
        }
        match self {
            ThresholdStrategy::Fixed(v) => *v,
            ThresholdStrategy::Quantile(fraction) => {
                let keep = ((m as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
                let idx = keep.clamp(1, m) - 1;
                sorted_densities[idx]
            }
            ThresholdStrategy::Kneedle => kneedle(sorted_densities),
            ThresholdStrategy::ThreeSegment => three_segment(sorted_densities),
            ThresholdStrategy::ElbowAngle { divisor } => elbow_angle(sorted_densities, *divisor)
                .unwrap_or_else(|| three_segment(sorted_densities)),
        }
    }
}

impl std::str::FromStr for ThresholdStrategy {
    /// On failure the error is the human-readable "expected ..." text.
    type Err = String;

    /// Parse a strategy name as accepted by the CLI and the algorithm
    /// registry: `three-segment`, `elbow` / `elbow-angle`, `kneedle`,
    /// `quantile:<f>` or `fixed:<f>`.
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = raw.strip_prefix("quantile:") {
            let q: f64 = rest
                .parse()
                .map_err(|_| format!("a fraction after 'quantile:', got '{rest}'"))?;
            return Ok(ThresholdStrategy::Quantile(q));
        }
        if let Some(rest) = raw.strip_prefix("fixed:") {
            let v: f64 = rest
                .parse()
                .map_err(|_| format!("a number after 'fixed:', got '{rest}'"))?;
            return Ok(ThresholdStrategy::Fixed(v));
        }
        match raw {
            "three-segment" => Ok(ThresholdStrategy::ThreeSegment),
            "elbow" | "elbow-angle" => Ok(ThresholdStrategy::ElbowAngle { divisor: 3.0 }),
            "kneedle" => Ok(ThresholdStrategy::Kneedle),
            other => Err(format!(
                "one of three-segment, elbow, kneedle, quantile:<f>, fixed:<f>; got '{other}'"
            )),
        }
    }
}

/// Normalize the curve to the unit square: x = index / (m-1), y = d / d_max.
fn normalized(sorted: &[f64]) -> Vec<(f64, f64)> {
    let m = sorted.len();
    let max = sorted[0].max(1e-300);
    sorted
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 / (m - 1) as f64, d / max))
        .collect()
}

/// Subsample a long descending curve to at most `max_points`, returning the
/// subsampled values together with their original indices. Keeping the
/// breakpoint search on a bounded number of points both caps the cost and
/// makes local angle estimates meaningful (consecutive raw grid densities
/// differ by sampling noise, not by curve shape).
fn subsample(sorted: &[f64], max_points: usize) -> (Vec<f64>, Vec<usize>) {
    let m = sorted.len();
    if m <= max_points {
        return (sorted.to_vec(), (0..m).collect());
    }
    let step = m as f64 / max_points as f64;
    let mut values = Vec::with_capacity(max_points);
    let mut indices = Vec::with_capacity(max_points);
    for i in 0..max_points {
        let j = ((i as f64 * step) as usize).min(m - 1);
        values.push(sorted[j]);
        indices.push(j);
    }
    (values, indices)
}

/// Corrected Algorithm 4. Returns `None` when no pronounced elbow exists
/// (e.g. a perfectly straight curve).
fn elbow_angle(sorted: &[f64], divisor: f64) -> Option<f64> {
    let (curve, _) = subsample(sorted, 256);
    let pts = normalized(&curve);
    let m = pts.len();
    // The turning angle of a straight continuation is 0; a right-angle bend
    // is π/2. Only consider the elbow "seen" once the max turn exceeds this.
    const MIN_ELBOW: f64 = 0.15; // ≈ 8.6 degrees
    let mut theta0: f64 = 0.0;
    let mut seen_elbow = false;
    for i in 1..m - 1 {
        let v1 = (pts[i].0 - pts[i - 1].0, pts[i].1 - pts[i - 1].1);
        let v2 = (pts[i + 1].0 - pts[i].0, pts[i + 1].1 - pts[i].1);
        let n1 = (v1.0 * v1.0 + v1.1 * v1.1).sqrt();
        let n2 = (v2.0 * v2.0 + v2.1 * v2.1).sqrt();
        if n1 <= 1e-300 || n2 <= 1e-300 {
            continue;
        }
        let cos = ((v1.0 * v2.0 + v1.1 * v2.1) / (n1 * n2)).clamp(-1.0, 1.0);
        let theta = cos.acos(); // 0 = straight continuation, π = full reversal
        if theta > theta0 {
            theta0 = theta;
            if theta0 >= MIN_ELBOW {
                seen_elbow = true;
            }
            continue;
        }
        if seen_elbow && theta <= theta0 / divisor {
            return Some(curve[i]);
        }
    }
    None
}

/// Kneedle: maximum vertical distance below the chord of the normalized curve.
fn kneedle(sorted: &[f64]) -> f64 {
    let pts = normalized(sorted);
    let m = pts.len();
    let (x0, y0) = pts[0];
    let (x1, y1) = pts[m - 1];
    let mut best_idx = m - 1;
    let mut best_gap = f64::MIN;
    for (i, &(x, y)) in pts.iter().enumerate() {
        let chord_y = y0 + (y1 - y0) * (x - x0) / (x1 - x0).max(1e-300);
        let gap = chord_y - y;
        if gap > best_gap {
            best_gap = gap;
            best_idx = i;
        }
    }
    sorted[best_idx]
}

/// Incremental simple-linear-regression sums over a prefix range, used to
/// evaluate the SSE of fitting a straight line to `pts[a..=b]` in O(1).
struct SegmentFitter {
    sx: Vec<f64>,
    sy: Vec<f64>,
    sxx: Vec<f64>,
    sxy: Vec<f64>,
    syy: Vec<f64>,
}

impl SegmentFitter {
    fn new(pts: &[(f64, f64)]) -> Self {
        let n = pts.len();
        let mut sx = vec![0.0; n + 1];
        let mut sy = vec![0.0; n + 1];
        let mut sxx = vec![0.0; n + 1];
        let mut sxy = vec![0.0; n + 1];
        let mut syy = vec![0.0; n + 1];
        for (i, &(x, y)) in pts.iter().enumerate() {
            sx[i + 1] = sx[i] + x;
            sy[i + 1] = sy[i] + y;
            sxx[i + 1] = sxx[i] + x * x;
            sxy[i + 1] = sxy[i] + x * y;
            syy[i + 1] = syy[i] + y * y;
        }
        Self {
            sx,
            sy,
            sxx,
            sxy,
            syy,
        }
    }

    /// SSE of the best-fit line over the inclusive index range `[a, b]`.
    fn sse(&self, a: usize, b: usize) -> f64 {
        let n = (b - a + 1) as f64;
        if n < 2.0 {
            return 0.0;
        }
        let sx = self.sx[b + 1] - self.sx[a];
        let sy = self.sy[b + 1] - self.sy[a];
        let sxx = self.sxx[b + 1] - self.sxx[a];
        let sxy = self.sxy[b + 1] - self.sxy[a];
        let syy = self.syy[b + 1] - self.syy[a];
        let var_x = sxx - sx * sx / n;
        let cov_xy = sxy - sx * sy / n;
        let var_y = syy - sy * sy / n;
        if var_x <= 1e-300 {
            return var_y.max(0.0);
        }
        (var_y - cov_xy * cov_xy / var_x).max(0.0)
    }
}

/// Three-segment least-squares fit; returns the density at the second
/// breakpoint (middle/noise intersection). Long curves are subsampled to at
/// most 512 points to keep the O(m^2) breakpoint search cheap.
fn three_segment(sorted: &[f64]) -> f64 {
    const MAX_POINTS: usize = 512;
    let m = sorted.len();
    let (curve, index_map) = subsample(sorted, MAX_POINTS);
    let pts = normalized(&curve);
    let n = pts.len();
    if n < 6 {
        return sorted[m / 2];
    }
    let fitter = SegmentFitter::new(&pts);
    let mut best = (1usize, 2usize);
    let mut best_sse = f64::MAX;
    for b1 in 1..n - 3 {
        let head = fitter.sse(0, b1);
        for b2 in (b1 + 2)..n - 1 {
            let sse = head + fitter.sse(b1 + 1, b2) + fitter.sse(b2 + 1, n - 1);
            if sse < best_sse {
                best_sse = sse;
                best = (b1, b2);
            }
        }
    }
    sorted[index_map[best.1]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic three-regime curve: `signal` grids at high density,
    /// `middle` grids sloping down, `noise` grids almost flat.
    fn three_regime_curve(signal: usize, middle: usize, noise: usize) -> Vec<f64> {
        let mut d = Vec::new();
        for i in 0..signal {
            d.push(100.0 - i as f64 * 0.5);
        }
        for i in 0..middle {
            d.push(60.0 - i as f64 * (50.0 / middle as f64));
        }
        for i in 0..noise {
            d.push(8.0 - i as f64 * (6.0 / noise as f64));
        }
        d
    }

    #[test]
    fn degenerate_inputs_keep_everything() {
        // Every strategy — including Fixed and Quantile, which would
        // otherwise index into the slice — must return the keep-everything
        // threshold 0.0 (never NaN, never a panic) on curves of fewer than
        // three densities. The empty slice is what the pipeline produces
        // when an extreme `coefficient_epsilon` removes every cell.
        for strategy in [
            ThresholdStrategy::default(),
            ThresholdStrategy::ElbowAngle { divisor: 3.0 },
            ThresholdStrategy::ThreeSegment,
            ThresholdStrategy::Kneedle,
            ThresholdStrategy::Quantile(0.2),
            ThresholdStrategy::Fixed(7.5),
        ] {
            let name = strategy.name();
            assert_eq!(strategy.choose(&[]), 0.0, "{name}");
            assert_eq!(strategy.choose(&[5.0]), 0.0, "{name}");
            assert_eq!(strategy.choose(&[5.0, 3.0]), 0.0, "{name}");
        }
    }

    #[test]
    fn fixed_and_quantile() {
        let d = vec![10.0, 8.0, 6.0, 4.0, 2.0];
        assert_eq!(ThresholdStrategy::Fixed(3.3).choose(&d), 3.3);
        assert_eq!(ThresholdStrategy::Quantile(0.4).choose(&d), 8.0);
        assert_eq!(ThresholdStrategy::Quantile(1.0).choose(&d), 2.0);
        assert_eq!(ThresholdStrategy::Quantile(0.0).choose(&d), 10.0);
    }

    #[test]
    fn from_str_parses_every_strategy_name() {
        assert_eq!(
            "three-segment".parse::<ThresholdStrategy>().unwrap(),
            ThresholdStrategy::ThreeSegment
        );
        assert_eq!(
            "quantile:0.25".parse::<ThresholdStrategy>().unwrap(),
            ThresholdStrategy::Quantile(0.25)
        );
        assert_eq!(
            "fixed:3.5".parse::<ThresholdStrategy>().unwrap(),
            ThresholdStrategy::Fixed(3.5)
        );
        assert_eq!(
            "kneedle".parse::<ThresholdStrategy>().unwrap(),
            ThresholdStrategy::Kneedle
        );
        for alias in ["elbow", "elbow-angle"] {
            assert!(matches!(
                alias.parse::<ThresholdStrategy>().unwrap(),
                ThresholdStrategy::ElbowAngle { .. }
            ));
        }
        // Errors carry the "expected ..." text shown to CLI/registry users.
        assert!("nope"
            .parse::<ThresholdStrategy>()
            .unwrap_err()
            .contains("three-segment"));
        assert!("quantile:x".parse::<ThresholdStrategy>().is_err());
        assert!("fixed:".parse::<ThresholdStrategy>().is_err());
    }

    #[test]
    fn three_segment_finds_the_middle_noise_break() {
        let d = three_regime_curve(40, 120, 600);
        let t = ThresholdStrategy::ThreeSegment.choose(&d);
        // The middle regime ends at density 10 and the noise regime spans
        // 8..2; the breakpoint should land near that boundary.
        assert!(t <= 25.0, "threshold {t} too high");
        assert!(t >= 2.0, "threshold {t} too low");
    }

    #[test]
    fn elbow_angle_lands_between_signal_and_noise() {
        let d = three_regime_curve(40, 120, 600);
        let t = ThresholdStrategy::default().choose(&d);
        assert!(t < 100.0);
        assert!(t >= 2.0);
        // It must drop (at least) the flat noise tail.
        let kept = d.iter().filter(|&&x| x >= t).count();
        assert!(kept < d.len(), "threshold keeps everything");
        assert!(kept >= 20, "threshold keeps almost nothing ({kept})");
    }

    #[test]
    fn elbow_angle_falls_back_on_straight_curve() {
        // Perfectly straight curve: no elbow; must fall back (and not panic).
        let d: Vec<f64> = (0..200).map(|i| 200.0 - i as f64).collect();
        let t = ThresholdStrategy::default().choose(&d);
        assert!(t > 0.0 && t <= 200.0);
    }

    #[test]
    fn kneedle_picks_the_corner_of_an_l_shaped_curve() {
        // L-shaped curve: sharp drop then long flat tail.
        let mut d = vec![100.0, 90.0, 80.0, 70.0, 60.0];
        d.extend(std::iter::repeat_n(5.0, 200));
        let t = ThresholdStrategy::Kneedle.choose(&d);
        assert!((5.0..=60.0).contains(&t), "threshold {t}");
    }

    #[test]
    fn thresholds_separate_clusters_from_uniform_noise_densities() {
        // Densities as AdaWave would see them: a few hundred cluster grids
        // with high smoothed counts, thousands of noise grids with ~1.
        let mut d: Vec<f64> = Vec::new();
        for i in 0..300 {
            d.push(40.0 - i as f64 * 0.1);
        }
        for i in 0..5000 {
            d.push(1.5 - (i as f64 / 5000.0));
        }
        for strategy in [
            ThresholdStrategy::default(),
            ThresholdStrategy::ThreeSegment,
        ] {
            let t = strategy.choose(&d);
            assert!(
                t > 0.6 && t <= 15.0,
                "{}: threshold {t} does not separate the regimes",
                strategy.name()
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ThresholdStrategy::default().name(), "three-segment");
        assert_eq!(
            ThresholdStrategy::ElbowAngle { divisor: 3.0 }.name(),
            "elbow-angle"
        );
        assert_eq!(ThresholdStrategy::ThreeSegment.name(), "three-segment");
        assert_eq!(ThresholdStrategy::Kneedle.name(), "kneedle");
        assert_eq!(ThresholdStrategy::Fixed(1.0).name(), "fixed");
        assert_eq!(ThresholdStrategy::Quantile(0.5).name(), "quantile");
    }

    #[test]
    fn segment_fitter_sse_of_straight_line_is_zero() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        let fitter = SegmentFitter::new(&pts);
        assert!(fitter.sse(0, 49) < 1e-9);
        assert!(fitter.sse(10, 20) < 1e-9);
    }

    #[test]
    fn segment_fitter_sse_positive_for_bent_data() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, if i < 25 { i as f64 } else { 25.0 }))
            .collect();
        let fitter = SegmentFitter::new(&pts);
        assert!(fitter.sse(0, 49) > 1.0);
        // ...but each straight half fits perfectly.
        assert!(fitter.sse(0, 24) < 1e-9);
        assert!(fitter.sse(25, 49) < 1e-9);
    }
}
