//! Property-based tests for the AdaWave core pipeline.

use adawave_api::PointMatrix;
use adawave_core::{AdaWave, AdaWaveConfig, ThresholdStrategy};
use adawave_grid::{KeyCodec, SparseGrid};
use adawave_wavelet::{BoundaryMode, Wavelet};
use proptest::prelude::*;

fn point_cloud() -> impl Strategy<Value = PointMatrix> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2), 20..200)
        .prop_map(|rows| PointMatrix::from_rows(rows).expect("constant-width rows"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_point_gets_a_verdict(points in point_cloud()) {
        let result = AdaWave::new(AdaWaveConfig::builder().scale(16).build())
            .fit(points.view())
            .unwrap();
        prop_assert_eq!(result.len(), points.len());
        // Labels are contiguous: every assigned id < cluster_count.
        for a in result.assignment().iter().flatten() {
            prop_assert!(*a < result.cluster_count());
        }
        // Cluster sizes + noise = total.
        let assigned: usize = result.cluster_sizes().iter().sum();
        prop_assert_eq!(assigned + result.noise_count(), points.len());
    }

    #[test]
    fn deterministic_and_order_insensitive(points in point_cloud(), seed in 0u64..100) {
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(16).build());
        let base = adawave.fit(points.view()).unwrap();

        // Deterministic rerun.
        prop_assert_eq!(&base, &adawave.fit(points.view()).unwrap());

        // Shuffled input gives the same per-point labels (up to cluster id
        // permutation — ids are mass-ordered so they are in fact equal).
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..indices.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            indices.swap(i, (state as usize) % (i + 1));
        }
        let shuffled = points.select(&indices);
        let shuffled_result = adawave.fit(shuffled.view()).unwrap();
        for (new_pos, &old_pos) in indices.iter().enumerate() {
            prop_assert_eq!(base.label(old_pos), shuffled_result.label(new_pos));
        }
    }

    #[test]
    fn scaling_points_does_not_change_the_partition(points in point_cloud()) {
        // Affine re-scaling of the feature space leaves the grid structure
        // (and therefore the clustering) unchanged.
        let adawave = AdaWave::new(AdaWaveConfig::builder().scale(16).build());
        let base = adawave.fit(points.view()).unwrap();
        let mut scaled = points.clone();
        for v in scaled.as_mut_slice() {
            *v = *v * 37.0 - 5.0;
        }
        let scaled_result = adawave.fit(scaled.view()).unwrap();
        prop_assert_eq!(base.assignment(), scaled_result.assignment());
    }

    #[test]
    fn threshold_choice_is_within_density_range(densities in prop::collection::vec(0.01f64..100.0, 3..300)) {
        let mut sorted = densities.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for strategy in [
            ThresholdStrategy::ElbowAngle { divisor: 3.0 },
            ThresholdStrategy::ThreeSegment,
            ThresholdStrategy::Kneedle,
            ThresholdStrategy::Quantile(0.3),
        ] {
            let t = strategy.choose(&sorted);
            prop_assert!(t >= 0.0);
            prop_assert!(t <= sorted[0] + 1e-9, "{}: {t} > max", strategy.name());
        }
    }

    #[test]
    fn higher_quantile_threshold_keeps_fewer_cells(densities in prop::collection::vec(0.01f64..100.0, 10..200)) {
        let mut sorted = densities.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let t_small = ThresholdStrategy::Quantile(0.8).choose(&sorted);
        let t_big = ThresholdStrategy::Quantile(0.2).choose(&sorted);
        prop_assert!(t_big >= t_small);
    }

    #[test]
    fn sparse_smoothing_never_exceeds_dense_volume(
        cells in prop::collection::vec((0u32..32, 0u32..32), 1..100),
    ) {
        let codec = KeyCodec::uniform(2, 32).unwrap();
        let grid: SparseGrid = cells
            .iter()
            .map(|&(x, y)| (codec.pack(&[x, y]), 1.0))
            .collect();
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let (out, out_codec) = adawave_core::sparse_wavelet_smooth(
            &grid,
            &codec,
            &kernel,
            BoundaryMode::Zero,
            1,
        )
        .unwrap();
        prop_assert_eq!(out_codec.all_intervals(), &[16u32, 16][..]);
        prop_assert!(out.occupied_cells() <= 16 * 16);
        // Sparsity: output cells bounded by input cells times the 2-D kernel support.
        prop_assert!(out.occupied_cells() <= grid.occupied_cells() * 9);
    }

    #[test]
    fn smoothing_preserves_nonnegativity_of_isolated_masses(
        x in 2u32..30, y in 2u32..30, mass in 0.1f64..50.0,
    ) {
        // A single occupied cell smoothed with the CDF(2,2) kernel may have
        // small negative side lobes, but the dominant cell stays positive
        // and carries most of the mass.
        let codec = KeyCodec::uniform(2, 32).unwrap();
        let mut grid = SparseGrid::new();
        grid.add(codec.pack(&[x, y]), mass);
        let kernel = Wavelet::Cdf22.density_smoothing_kernel();
        let (out, out_codec) = adawave_core::sparse_wavelet_smooth(
            &grid, &codec, &kernel, BoundaryMode::Zero, 1,
        )
        .unwrap();
        let main = out.density(out_codec.pack(&[x / 2, y / 2]));
        prop_assert!(main > 0.0);
        prop_assert!(main <= mass + 1e-9);
    }
}
