//! WaveCluster (Sheikholeslami, Chatterjee & Zhang, VLDB 1998) — the
//! original dense-grid wavelet clustering algorithm that AdaWave builds on.
//!
//! WaveCluster quantizes the feature space into a **dense** grid,
//! convolves it with the wavelet low-pass filter along every dimension
//! (downsampling by two), removes low-density cells with a fixed relative
//! threshold, and connects the remaining cells into clusters. Unlike
//! AdaWave it has no adaptive threshold and its memory grows with the full
//! `M^d` grid volume, which is exactly the limitation the paper's
//! "grid labeling" structure removes.

use adawave_api::PointsView;
use adawave_grid::{
    connected_components, Connectivity, KeyCodec, LookupTable, Quantizer, SparseGrid,
};
use adawave_runtime::Runtime;
use adawave_wavelet::{BoundaryMode, DenseGrid, Wavelet};

use crate::Clustering;

/// Configuration for [`wavecluster`].
#[derive(Debug, Clone)]
pub struct WaveClusterConfig {
    /// Requested number of intervals per dimension (the actual value is
    /// reduced automatically if the dense grid would exceed
    /// [`WaveClusterConfig::max_dense_cells`]).
    pub scale: u32,
    /// Wavelet family used for smoothing.
    pub wavelet: Wavelet,
    /// Number of decomposition levels (each level halves every dimension).
    pub levels: u32,
    /// Cells with smoothed density below `density_threshold × mean
    /// non-zero density` are discarded. WaveCluster's fixed (non-adaptive)
    /// threshold.
    pub density_threshold: f64,
    /// Connectivity used for the connected-component step.
    pub connectivity: Connectivity,
    /// Upper bound on the dense grid size; the scale is halved until the
    /// grid fits (the dense grid is WaveCluster's scalability bottleneck).
    pub max_dense_cells: u128,
    /// Worker pool for quantization and the separable dense wavelet passes
    /// (independent grid rows/columns per axis). Any thread count produces
    /// the same clustering.
    pub runtime: Runtime,
}

impl Default for WaveClusterConfig {
    fn default() -> Self {
        Self {
            scale: 128,
            wavelet: Wavelet::Cdf22,
            levels: 1,
            density_threshold: 1.0,
            connectivity: Connectivity::Face,
            max_dense_cells: 1 << 24,
            runtime: Runtime::from_env(),
        }
    }
}

fn effective_scale(requested: u32, dims: usize, max_cells: u128) -> u32 {
    let mut scale = requested.max(2);
    while scale > 2 && (scale as u128).saturating_pow(dims as u32) > max_cells {
        scale /= 2;
    }
    scale
}

/// Run WaveCluster on a point set.
pub fn wavecluster(points: PointsView<'_>, config: &WaveClusterConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let dims = points.dims();
    let scale = effective_scale(config.scale, dims, config.max_dense_cells);
    let quantizer = match Quantizer::fit(points, scale) {
        Ok(q) => q,
        Err(_) => return Clustering::all_noise(n),
    };
    let (_, assignment) = quantizer.quantize_with(points, config.runtime);
    let lookup = LookupTable::new(quantizer.codec().clone(), assignment);

    // Build the dense grid (WaveCluster's original data structure).
    let shape: Vec<usize> = (0..dims)
        .map(|j| quantizer.codec().intervals(j) as usize)
        .collect();
    let mut dense = DenseGrid::zeros(&shape);
    for point in points.rows() {
        let coords: Vec<usize> = quantizer
            .cell_coords(point)
            .into_iter()
            .map(|c| c as usize)
            .collect();
        dense.add(&coords, 1.0);
    }

    // Smooth with the wavelet low-pass filter, `levels` times. The centered
    // variant keeps cell `c` aligned with cell `c >> 1`, matching the
    // lookup-table mapping used to label points afterwards.
    let kernel = config.wavelet.density_smoothing_kernel();
    let mut smoothed = dense;
    for _ in 0..config.levels.max(1) {
        smoothed = smoothed.smooth_all_axes_with(&kernel, BoundaryMode::Zero, config.runtime);
    }

    // Fixed threshold relative to the mean non-zero smoothed density.
    let nonzero: Vec<f64> = smoothed
        .as_slice()
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .collect();
    if nonzero.is_empty() {
        return Clustering::all_noise(n);
    }
    let mean_density: f64 = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
    let threshold = config.density_threshold * mean_density;

    // Transfer surviving cells into a sparse grid keyed in the downsampled space.
    let levels = config.levels.max(1);
    let down_codec: KeyCodec = match quantizer.codec().downsampled(levels) {
        Ok(c) => c,
        Err(_) => return Clustering::all_noise(n),
    };
    let mut surviving = SparseGrid::new();
    let shape = smoothed.shape().to_vec();
    let mut coords = vec![0usize; dims];
    for flat in 0..smoothed.len() {
        // Decode the flat index into per-dimension coordinates (row-major).
        let mut rest = flat;
        for j in (0..dims).rev() {
            coords[j] = rest % shape[j];
            rest /= shape[j];
        }
        let v = smoothed.as_slice()[flat];
        if v >= threshold && v > 0.0 {
            let key_coords: Vec<u32> = coords
                .iter()
                .enumerate()
                .map(|(j, &c)| (c as u32).min(down_codec.intervals(j) - 1))
                .collect();
            surviving.add(down_codec.pack(&key_coords), v);
        }
    }

    let labels = connected_components(&surviving, &down_codec, config.connectivity);
    let assignment = lookup.assign_points(&labels, levels, &down_codec);
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

    fn blobs_with_noise(noise: usize, seed: u64) -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.03, 0.03], 600);
        truth.extend(std::iter::repeat_n(0usize, 600));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.03, 0.03], 600);
        truth.extend(std::iter::repeat_n(1usize, 600));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], noise);
        truth.extend(std::iter::repeat_n(2usize, noise));
        (points, truth)
    }

    #[test]
    fn finds_two_blobs_in_light_noise() {
        let (points, truth) = blobs_with_noise(150, 1);
        let clustering = wavecluster(
            points.view(),
            &WaveClusterConfig {
                scale: 64,
                ..Default::default()
            },
        );
        assert!(clustering.cluster_count() >= 2);
        let score = ami_ignoring_noise(&truth, &clustering.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.8, "AMI {score}");
    }

    #[test]
    fn degrades_in_heavy_noise() {
        // WaveCluster's fixed threshold struggles at high noise — the
        // motivation for AdaWave's adaptive threshold.
        let (points, truth) = blobs_with_noise(4800, 2); // 80% noise
        let clustering = wavecluster(
            points.view(),
            &WaveClusterConfig {
                scale: 64,
                ..Default::default()
            },
        );
        let score = ami_ignoring_noise(&truth, &clustering.to_labels(NOISE_LABEL), 2);
        assert!(
            score < 0.9,
            "expected degradation under heavy noise, got {score}"
        );
    }

    #[test]
    fn effective_scale_limits_dense_grid() {
        assert_eq!(effective_scale(128, 2, 1 << 24), 128);
        // 128^4 = 2^28 cells > 2^24, so the scale is halved to 64 (64^4 = 2^24).
        assert_eq!(effective_scale(128, 4, 1 << 24), 64);
        // 9 dimensions: scale collapses to something tiny but >= 2.
        assert!(effective_scale(128, 9, 1 << 24) <= 8);
        assert!(effective_scale(128, 30, 1 << 24) >= 2);
    }

    #[test]
    fn handles_higher_dimensional_data_by_reducing_scale() {
        let mut rng = Rng::new(3);
        let mut points = PointMatrix::new(5);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.2; 5], &[0.03; 5], 300);
        truth.extend(std::iter::repeat_n(0usize, 300));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.8; 5], &[0.03; 5], 300);
        truth.extend(std::iter::repeat_n(1usize, 300));
        let clustering = wavecluster(points.view(), &WaveClusterConfig::default());
        // No noise in the ground truth: apply the paper's Table-I protocol
        // and push grid-noise points back to the nearest cluster before
        // scoring.
        let filled = clustering.assign_noise_to_nearest_centroid(points.view());
        assert!(filled.cluster_count() >= 2);
        let score = ami_ignoring_noise(&truth, &filled.to_labels(NOISE_LABEL), usize::MAX);
        assert!(score > 0.8, "AMI {score}");
    }

    #[test]
    fn empty_input() {
        assert!(wavecluster(PointMatrix::new(2).view(), &WaveClusterConfig::default()).is_empty());
    }

    #[test]
    fn deterministic() {
        let (points, _) = blobs_with_noise(300, 5);
        let a = wavecluster(points.view(), &WaveClusterConfig::default());
        let b = wavecluster(points.view(), &WaveClusterConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn ring_cluster_is_kept_in_one_piece() {
        let mut rng = Rng::new(7);
        let mut points = PointMatrix::new(2);
        shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.3, 0.01, 2000);
        let clustering = wavecluster(
            points.view(),
            &WaveClusterConfig {
                scale: 64,
                density_threshold: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(
            clustering.cluster_count(),
            1,
            "ring should be a single cluster"
        );
    }
}
