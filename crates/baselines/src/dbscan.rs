//! DBSCAN (Ester et al., KDD 1996), the density-based representative.
//!
//! Uses a kd-tree for the `eps`-neighborhood queries, giving the
//! `O(n log n)` average behaviour the paper quotes; the worst case remains
//! quadratic.

use adawave_api::PointsView;
use adawave_runtime::Runtime;

use crate::{Clustering, KdTree};

/// Configuration for [`dbscan`].
#[derive(Debug, Clone)]
pub struct DbscanConfig {
    /// Neighborhood radius (`eps`).
    pub eps: f64,
    /// Minimum number of points (including the point itself) inside the
    /// `eps`-neighborhood for a point to be a core point.
    pub min_points: usize,
    /// Worker pool for the `eps`-neighborhood queries (the dominant cost;
    /// each query is independent, so labels never depend on the thread
    /// count).
    pub runtime: Runtime,
}

impl DbscanConfig {
    /// Create a configuration.
    pub fn new(eps: f64, min_points: usize) -> Self {
        Self {
            eps,
            min_points,
            runtime: Runtime::from_env(),
        }
    }
}

impl Default for DbscanConfig {
    fn default() -> Self {
        // The paper's automation protocol: minPts = 8 with eps swept.
        Self::new(0.05, 8)
    }
}

/// Run DBSCAN. Points that are neither core points nor density-reachable
/// from one are labeled as noise (`None`).
///
/// The pairwise-distance work — one kd-tree range query per point — is
/// computed up front over `config.runtime` when it has more than one
/// worker; the sequential expansion then only walks the precomputed
/// lists. A sequential runtime keeps the lazy per-point queries instead
/// (O(1) extra memory). The neighborhood *contents* are identical either
/// way, so the clustering never depends on the thread count — only the
/// peak memory does (parallel precompute holds every neighborhood at
/// once, which on huge inputs with a diameter-sized `eps` approaches
/// `O(n^2)` indices).
pub fn dbscan(points: PointsView<'_>, config: &DbscanConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let tree = KdTree::build(points);
    let precomputed: Option<Vec<Vec<usize>>> = if config.runtime.is_sequential() {
        None
    } else {
        Some(
            config
                .runtime
                .par_map_indexed(n, |i| tree.within_radius(points.row(i), config.eps)),
        )
    };
    let neighborhood = |i: usize| -> std::borrow::Cow<'_, [usize]> {
        match &precomputed {
            Some(lists) => std::borrow::Cow::Borrowed(&lists[i]),
            None => std::borrow::Cow::Owned(tree.within_radius(points.row(i), config.eps)),
        }
    };

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster = 0usize;

    for start in 0..n {
        if labels[start] != UNVISITED {
            continue;
        }
        let neighbors = neighborhood(start);
        if neighbors.len() < config.min_points {
            labels[start] = NOISE;
            continue;
        }
        // Start a new cluster and expand it with a seed queue.
        labels[start] = cluster;
        let mut queue: std::collections::VecDeque<usize> = neighbors.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            if labels[q] == NOISE {
                // Border point: reachable from a core point.
                labels[q] = cluster;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let q_neighbors = neighborhood(q);
            if q_neighbors.len() >= config.min_points {
                queue.extend(q_neighbors.iter().copied());
            }
        }
        cluster += 1;
    }

    Clustering::new(
        labels
            .into_iter()
            .map(|l| {
                if l == NOISE || l == UNVISITED {
                    None
                } else {
                    Some(l)
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, NOISE_LABEL};

    #[test]
    fn separates_two_dense_blobs_and_marks_outliers() {
        let mut rng = Rng::new(1);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.05, 0.05], 200);
        shapes::gaussian_blob(&mut points, &mut rng, &[1.0, 1.0], &[0.05, 0.05], 200);
        // A few far-away outliers.
        points.push_row(&[3.0, -3.0]);
        points.push_row(&[-3.0, 3.0]);
        let clustering = dbscan(points.view(), &DbscanConfig::new(0.1, 5));
        assert_eq!(clustering.cluster_count(), 2);
        assert_eq!(clustering.label(400), None);
        assert_eq!(clustering.label(401), None);
        // The two blobs are not merged.
        assert_ne!(clustering.label(0), clustering.label(200));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = Rng::new(9);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.05, 0.05], 400);
        shapes::gaussian_blob(&mut points, &mut rng, &[1.0, 1.0], &[0.05, 0.05], 400);
        shapes::uniform_box(&mut points, &mut rng, &[-0.5, -0.5], &[2.0, 2.0], 300);
        let sequential = dbscan(
            points.view(),
            &DbscanConfig {
                runtime: Runtime::sequential(),
                ..DbscanConfig::new(0.08, 5)
            },
        );
        for threads in [2, 8] {
            let parallel = dbscan(
                points.view(),
                &DbscanConfig {
                    runtime: Runtime::with_threads(threads),
                    ..DbscanConfig::new(0.08, 5)
                },
            );
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn finds_ring_shaped_cluster() {
        let mut rng = Rng::new(2);
        let mut points = PointMatrix::new(2);
        shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.3, 0.01, 400);
        let clustering = dbscan(points.view(), &DbscanConfig::new(0.08, 5));
        assert_eq!(clustering.cluster_count(), 1);
        assert!(clustering.noise_fraction() < 0.05);
    }

    #[test]
    fn all_noise_when_eps_too_small() {
        let mut rng = Rng::new(3);
        let mut points = PointMatrix::new(2);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        let clustering = dbscan(points.view(), &DbscanConfig::new(1e-6, 4));
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(clustering.noise_count(), 100);
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let mut rng = Rng::new(4);
        let mut points = PointMatrix::new(2);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        let clustering = dbscan(points.view(), &DbscanConfig::new(10.0, 4));
        assert_eq!(clustering.cluster_count(), 1);
        assert_eq!(clustering.noise_count(), 0);
    }

    #[test]
    fn empty_input() {
        let clustering = dbscan(PointMatrix::new(2).view(), &DbscanConfig::default());
        assert!(clustering.is_empty());
    }

    #[test]
    fn deterministic() {
        let mut rng = Rng::new(5);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.1, 0.1], 150);
        let a = dbscan(points.view(), &DbscanConfig::new(0.05, 5));
        let b = dbscan(points.view(), &DbscanConfig::new(0.05, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn best_eps_sweep_picks_good_parameter() {
        let mut rng = Rng::new(6);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.03, 0.03], 150);
        truth.extend(std::iter::repeat_n(0usize, 150));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.5, 0.5], &[0.03, 0.03], 150);
        truth.extend(std::iter::repeat_n(1usize, 150));
        // The paper's eps-sweep protocol now lives in the bench's
        // Algorithm::candidate_specs; this test keeps the underlying
        // eps-sensitivity claim pinned: some eps in the sweep separates
        // the blobs nearly perfectly.
        let best = (1..=20)
            .map(|i| {
                let clustering = dbscan(points.view(), &DbscanConfig::new(i as f64 * 0.01, 8));
                ami(&truth, &clustering.to_labels(NOISE_LABEL))
            })
            .fold(f64::MIN, f64::max);
        assert!(best > 0.9, "best AMI over the eps sweep: {best}");
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core with one point just inside eps of the core but with
        // too few neighbours of its own: it must become a border member, not noise.
        let mut points = PointMatrix::new(2);
        for i in 0..10 {
            points.push_row(&[0.01 * i as f64, 0.0]);
        }
        points.push_row(&[0.13, 0.0]); // border point
        let clustering = dbscan(points.view(), &DbscanConfig::new(0.05, 4));
        assert_eq!(clustering.cluster_count(), 1);
        assert!(clustering.label(10).is_some());
    }
}
