//! DBSCAN (Ester et al., KDD 1996), the density-based representative.
//!
//! Uses a kd-tree for the `eps`-neighborhood queries, giving the
//! `O(n log n)` average behaviour the paper quotes; the worst case remains
//! quadratic.

use crate::{Clustering, KdTree};

/// Configuration for [`dbscan`].
#[derive(Debug, Clone)]
pub struct DbscanConfig {
    /// Neighborhood radius (`eps`).
    pub eps: f64,
    /// Minimum number of points (including the point itself) inside the
    /// `eps`-neighborhood for a point to be a core point.
    pub min_points: usize,
}

impl DbscanConfig {
    /// Create a configuration.
    pub fn new(eps: f64, min_points: usize) -> Self {
        Self { eps, min_points }
    }
}

impl Default for DbscanConfig {
    fn default() -> Self {
        // The paper's automation protocol: minPts = 8 with eps swept.
        Self {
            eps: 0.05,
            min_points: 8,
        }
    }
}

/// Run DBSCAN. Points that are neither core points nor density-reachable
/// from one are labeled as noise (`None`).
pub fn dbscan(points: &[Vec<f64>], config: &DbscanConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let tree = KdTree::build(points);

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster = 0usize;

    for start in 0..n {
        if labels[start] != UNVISITED {
            continue;
        }
        let neighbors = tree.within_radius(&points[start], config.eps);
        if neighbors.len() < config.min_points {
            labels[start] = NOISE;
            continue;
        }
        // Start a new cluster and expand it with a seed queue.
        labels[start] = cluster;
        let mut queue: std::collections::VecDeque<usize> = neighbors.into_iter().collect();
        while let Some(q) = queue.pop_front() {
            if labels[q] == NOISE {
                // Border point: reachable from a core point.
                labels[q] = cluster;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let q_neighbors = tree.within_radius(&points[q], config.eps);
            if q_neighbors.len() >= config.min_points {
                queue.extend(q_neighbors);
            }
        }
        cluster += 1;
    }

    Clustering::new(
        labels
            .into_iter()
            .map(|l| if l == NOISE || l == UNVISITED { None } else { Some(l) })
            .collect(),
    )
}

/// Run DBSCAN for every `eps` in a sweep and return the clustering that
/// maximizes `score`, together with the chosen `eps`. This mirrors the
/// paper's automation protocol ("we fix minPts = 8 and run DBSCAN for all
/// eps in {0.01, ..., 0.2}, reporting the best AMI").
pub fn dbscan_best_eps<F>(
    points: &[Vec<f64>],
    eps_values: &[f64],
    min_points: usize,
    mut score: F,
) -> (Clustering, f64)
where
    F: FnMut(&Clustering) -> f64,
{
    let mut best: Option<(Clustering, f64, f64)> = None;
    for &eps in eps_values {
        let clustering = dbscan(points, &DbscanConfig::new(eps, min_points));
        let s = score(&clustering);
        let better = match &best {
            None => true,
            Some((_, _, best_s)) => s > *best_s,
        };
        if better {
            best = Some((clustering, eps, s));
        }
    }
    let (clustering, eps, _) = best.expect("dbscan_best_eps: empty eps sweep");
    (clustering, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami, NOISE_LABEL};

    #[test]
    fn separates_two_dense_blobs_and_marks_outliers() {
        let mut rng = Rng::new(1);
        let mut points = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.05, 0.05], 200);
        shapes::gaussian_blob(&mut points, &mut rng, &[1.0, 1.0], &[0.05, 0.05], 200);
        // A few far-away outliers.
        points.push(vec![3.0, -3.0]);
        points.push(vec![-3.0, 3.0]);
        let clustering = dbscan(&points, &DbscanConfig::new(0.1, 5));
        assert_eq!(clustering.cluster_count(), 2);
        assert_eq!(clustering.label(400), None);
        assert_eq!(clustering.label(401), None);
        // The two blobs are not merged.
        assert_ne!(clustering.label(0), clustering.label(200));
    }

    #[test]
    fn finds_ring_shaped_cluster() {
        let mut rng = Rng::new(2);
        let mut points = Vec::new();
        shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.3, 0.01, 400);
        let clustering = dbscan(&points, &DbscanConfig::new(0.08, 5));
        assert_eq!(clustering.cluster_count(), 1);
        assert!(clustering.noise_fraction() < 0.05);
    }

    #[test]
    fn all_noise_when_eps_too_small() {
        let mut rng = Rng::new(3);
        let mut points = Vec::new();
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        let clustering = dbscan(&points, &DbscanConfig::new(1e-6, 4));
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(clustering.noise_count(), 100);
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let mut rng = Rng::new(4);
        let mut points = Vec::new();
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        let clustering = dbscan(&points, &DbscanConfig::new(10.0, 4));
        assert_eq!(clustering.cluster_count(), 1);
        assert_eq!(clustering.noise_count(), 0);
    }

    #[test]
    fn empty_input() {
        let clustering = dbscan(&[], &DbscanConfig::default());
        assert!(clustering.is_empty());
    }

    #[test]
    fn deterministic() {
        let mut rng = Rng::new(5);
        let mut points = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.1, 0.1], 150);
        let a = dbscan(&points, &DbscanConfig::new(0.05, 5));
        let b = dbscan(&points, &DbscanConfig::new(0.05, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn best_eps_sweep_picks_good_parameter() {
        let mut rng = Rng::new(6);
        let mut points = Vec::new();
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.03, 0.03], 150);
        truth.extend(std::iter::repeat(0usize).take(150));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.5, 0.5], &[0.03, 0.03], 150);
        truth.extend(std::iter::repeat(1usize).take(150));
        let eps_values: Vec<f64> = (1..=20).map(|i| i as f64 * 0.01).collect();
        let (clustering, eps) = dbscan_best_eps(&points, &eps_values, 8, |c| {
            ami(&truth, &c.to_labels(NOISE_LABEL))
        });
        assert!(eps > 0.0 && eps <= 0.2);
        let score = ami(&truth, &clustering.to_labels(NOISE_LABEL));
        assert!(score > 0.9, "AMI {score}");
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core with one point just inside eps of the core but with
        // too few neighbours of its own: it must become a border member, not noise.
        let mut points = vec![];
        for i in 0..10 {
            points.push(vec![0.01 * i as f64, 0.0]);
        }
        points.push(vec![0.13, 0.0]); // border point
        let clustering = dbscan(&points, &DbscanConfig::new(0.05, 4));
        assert_eq!(clustering.cluster_count(), 1);
        assert!(clustering.label(10).is_some());
    }
}
