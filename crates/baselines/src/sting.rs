//! STING — STatistical INformation Grid (Wang, Yang & Muntz, VLDB 1997).
//!
//! The AdaWave paper positions itself in the grid-based family "sharing the
//! common characteristic with STING and CLIQUE: fast and independent of the
//! number of data objects" (§II). STING builds a hierarchy of rectangular
//! cells — each cell splits into `2^d` children one level down — and keeps
//! per-cell summary statistics (count, mean, standard deviation, min, max).
//! Queries and clustering then work on the cell summaries instead of the
//! points. The clustering used here mirrors the common STING formulation:
//! leaf cells whose density exceeds a threshold are *relevant*, and
//! face-connected relevant leaves form clusters.

use std::collections::HashMap;

use adawave_api::PointsView;

use crate::Clustering;

/// Summary statistics STING maintains for every occupied cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStatistics {
    /// Number of points in the cell.
    pub count: usize,
    /// Per-dimension mean of the member points.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviation of the member points.
    pub std_dev: Vec<f64>,
    /// Per-dimension minimum.
    pub min: Vec<f64>,
    /// Per-dimension maximum.
    pub max: Vec<f64>,
}

/// Configuration for [`sting`].
#[derive(Debug, Clone)]
pub struct StingConfig {
    /// Number of levels below the root; leaves split each dimension into
    /// `2^levels` intervals.
    pub levels: u32,
    /// A leaf cell is relevant when it holds at least this many points.
    pub density_threshold: usize,
}

impl Default for StingConfig {
    fn default() -> Self {
        Self {
            levels: 5,
            density_threshold: 4,
        }
    }
}

impl StingConfig {
    /// Create a configuration.
    pub fn new(levels: u32, density_threshold: usize) -> Self {
        Self {
            levels,
            density_threshold,
        }
    }
}

/// The STING hierarchy: per-level sparse maps from cell coordinates to
/// statistics (level 0 is the root, level `levels` holds the leaves).
#[derive(Debug, Clone)]
pub struct StingGrid {
    levels: u32,
    dims: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    cells: Vec<HashMap<Vec<u32>, CellStatistics>>,
    leaf_of_point: Vec<Vec<u32>>,
}

impl StingGrid {
    /// Build the hierarchy for a point set.
    // The per-dimension loop updates four parallel statistics vectors;
    // indexing keeps them visibly in lockstep.
    #[allow(clippy::needless_range_loop)]
    pub fn build(points: PointsView<'_>, levels: u32) -> Self {
        let dims = points.dims();
        let mut lower = vec![f64::INFINITY; dims];
        let mut upper = vec![f64::NEG_INFINITY; dims];
        for p in points.rows() {
            for j in 0..dims {
                lower[j] = lower[j].min(p[j]);
                upper[j] = upper[j].max(p[j]);
            }
        }
        for j in 0..dims {
            if !lower[j].is_finite() || upper[j] - lower[j] <= 0.0 {
                lower[j] = lower.get(j).copied().unwrap_or(0.0);
                upper[j] = lower[j] + 1.0;
            }
        }

        // Accumulators per level: (count, sum, sum of squares, min, max).
        struct Acc {
            count: usize,
            sum: Vec<f64>,
            sum_sq: Vec<f64>,
            min: Vec<f64>,
            max: Vec<f64>,
        }
        let mut acc: Vec<HashMap<Vec<u32>, Acc>> = (0..=levels).map(|_| HashMap::new()).collect();
        let mut leaf_of_point = Vec::with_capacity(points.len());

        for p in points.rows() {
            let leaf = Self::leaf_coords(p, &lower, &upper, levels);
            leaf_of_point.push(leaf.clone());
            for level in 0..=levels {
                let shift = levels - level;
                let coords: Vec<u32> = leaf.iter().map(|c| c >> shift).collect();
                let entry = acc[level as usize].entry(coords).or_insert_with(|| Acc {
                    count: 0,
                    sum: vec![0.0; dims],
                    sum_sq: vec![0.0; dims],
                    min: vec![f64::INFINITY; dims],
                    max: vec![f64::NEG_INFINITY; dims],
                });
                entry.count += 1;
                for j in 0..dims {
                    entry.sum[j] += p[j];
                    entry.sum_sq[j] += p[j] * p[j];
                    entry.min[j] = entry.min[j].min(p[j]);
                    entry.max[j] = entry.max[j].max(p[j]);
                }
            }
        }

        let cells = acc
            .into_iter()
            .map(|level_map| {
                level_map
                    .into_iter()
                    .map(|(coords, a)| {
                        let n = a.count as f64;
                        let mean: Vec<f64> = a.sum.iter().map(|s| s / n).collect();
                        let std_dev: Vec<f64> = a
                            .sum_sq
                            .iter()
                            .zip(mean.iter())
                            .map(|(sq, m)| (sq / n - m * m).max(0.0).sqrt())
                            .collect();
                        (
                            coords,
                            CellStatistics {
                                count: a.count,
                                mean,
                                std_dev,
                                min: a.min,
                                max: a.max,
                            },
                        )
                    })
                    .collect()
            })
            .collect();

        Self {
            levels,
            dims,
            lower,
            upper,
            cells,
            leaf_of_point,
        }
    }

    fn leaf_coords(point: &[f64], lower: &[f64], upper: &[f64], levels: u32) -> Vec<u32> {
        let resolution = 1u32 << levels;
        point
            .iter()
            .enumerate()
            .map(|(j, &x)| {
                let t = (x - lower[j]) / (upper[j] - lower[j]);
                ((t * resolution as f64) as u32).min(resolution - 1)
            })
            .collect()
    }

    /// Number of levels below the root.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Dimensionality of the data.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Statistics of a cell at `level` (0 = root), if it holds any point.
    pub fn cell(&self, level: u32, coords: &[u32]) -> Option<&CellStatistics> {
        self.cells.get(level as usize)?.get(coords)
    }

    /// Number of occupied cells at a level.
    pub fn occupied_cells(&self, level: u32) -> usize {
        self.cells
            .get(level as usize)
            .map_or(0, |level_map| level_map.len())
    }

    /// The data's bounding box.
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lower, &self.upper)
    }

    /// Flat clustering of the underlying points: face-connected leaf cells
    /// holding at least `density_threshold` points form clusters; points in
    /// sparser leaves are noise.
    pub fn cluster(&self, density_threshold: usize) -> Clustering {
        let leaves = &self.cells[self.levels as usize];
        // Enumerate the dense leaves in sorted coordinate order so their
        // indices — and with them the union-find shape — are a function of
        // the grid content, not of hash-map iteration order.
        let mut dense: Vec<&Vec<u32>> = leaves
            .iter()
            .filter(|(_, s)| s.count >= density_threshold)
            .map(|(c, _)| c)
            .collect();
        dense.sort_unstable();
        let relevant: HashMap<&Vec<u32>, usize> =
            dense.iter().enumerate().map(|(i, &c)| (c, i)).collect();

        // Union-find over relevant leaves connected through shared faces.
        let mut parent: Vec<usize> = (0..dense.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for (i, coords) in dense.iter().enumerate() {
            for j in 0..self.dims {
                if coords[j] + 1 < (1u32 << self.levels) {
                    let mut neighbor = (*coords).clone();
                    neighbor[j] += 1;
                    if let Some(&k) = relevant.get(&neighbor) {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, k));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                }
            }
        }

        let roots: Vec<usize> = (0..parent.len()).map(|i| find(&mut parent, i)).collect();
        let assignment: Vec<Option<usize>> = self
            .leaf_of_point
            .iter()
            .map(|leaf| relevant.get(leaf).map(|&i| roots[i]))
            .collect();
        Clustering::new(assignment)
    }
}

/// Build the STING hierarchy and return the flat clustering of its leaves.
pub fn sting(points: PointsView<'_>, config: &StingConfig) -> Clustering {
    if points.is_empty() {
        return Clustering::new(vec![]);
    }
    StingGrid::build(points, config.levels).cluster(config.density_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::{shapes, Rng};
    use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

    fn blobs_with_noise() -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(41);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.25, 0.25], &[0.03, 0.03], 400);
        truth.extend(std::iter::repeat_n(0usize, 400));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.75, 0.75], &[0.03, 0.03], 400);
        truth.extend(std::iter::repeat_n(1usize, 400));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 300);
        truth.extend(std::iter::repeat_n(2usize, 300));
        (points, truth)
    }

    #[test]
    fn clusters_two_blobs_in_noise() {
        let (points, truth) = blobs_with_noise();
        let clustering = sting(points.view(), &StingConfig::new(5, 4));
        assert!(clustering.cluster_count() >= 2);
        let score = ami_ignoring_noise(&truth, &clustering.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.6, "AMI {score}");
    }

    #[test]
    fn hierarchy_counts_are_consistent_across_levels() {
        let (points, _) = blobs_with_noise();
        let grid = StingGrid::build(points.view(), 4);
        for level in 0..=4u32 {
            let total: usize = (0..1u32 << level)
                .flat_map(|x| (0..1u32 << level).map(move |y| vec![x, y]))
                .filter_map(|c| grid.cell(level, &c))
                .map(|s| s.count)
                .sum();
            assert_eq!(total, points.len(), "level {level} loses points");
        }
        // The root summarizes everything.
        let root = grid.cell(0, &[0, 0]).unwrap();
        assert_eq!(root.count, points.len());
        for j in 0..2 {
            assert!(root.min[j] <= root.mean[j] && root.mean[j] <= root.max[j]);
            assert!(root.std_dev[j] > 0.0);
        }
    }

    #[test]
    fn occupied_cells_grow_with_depth() {
        let (points, _) = blobs_with_noise();
        let grid = StingGrid::build(points.view(), 5);
        assert_eq!(grid.occupied_cells(0), 1);
        assert!(grid.occupied_cells(5) > grid.occupied_cells(2));
    }

    #[test]
    fn uniform_noise_alone_produces_few_or_no_clusters() {
        let mut rng = Rng::new(7);
        let mut points = PointMatrix::new(2);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 500);
        let clustering = sting(points.view(), &StingConfig::new(5, 6));
        // 500 points over 1024 leaves: almost no leaf reaches 6 points.
        assert!(clustering.noise_fraction() > 0.8);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(sting(PointMatrix::new(2).view(), &StingConfig::default()).is_empty());
        // All points identical: one cluster when the threshold is met.
        let points = PointMatrix::from_rows(vec![vec![0.5, 0.5]; 10]).unwrap();
        let clustering = sting(points.view(), &StingConfig::new(3, 5));
        assert_eq!(clustering.cluster_count(), 1);
        assert_eq!(clustering.noise_count(), 0);
    }

    #[test]
    fn statistics_of_a_leaf_match_its_members() {
        let points =
            PointMatrix::from_rows(vec![vec![0.1, 0.1], vec![0.12, 0.14], vec![0.9, 0.9]]).unwrap();
        let grid = StingGrid::build(points.view(), 2);
        let leaf = StingGrid::leaf_coords(&points[0], grid.bounds().0, grid.bounds().1, 2);
        let stats = grid.cell(2, &leaf).unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.mean[0] - 0.11).abs() < 1e-9);
        assert!((stats.min[1] - 0.1).abs() < 1e-9);
        assert!((stats.max[1] - 0.14).abs() < 1e-9);
    }
}
