//! # adawave-baselines
//!
//! From-scratch Rust implementations of every clustering algorithm the
//! AdaWave paper compares against (§V-A):
//!
//! * [`kmeans()`] — Lloyd's algorithm with k-means++ initialization and
//!   multiple restarts (the centroid-based representative).
//! * [`dbscan()`] — density-based clustering with a kd-tree region index
//!   (the density-based representative).
//! * [`em()`] — full-covariance Gaussian mixture fitted with
//!   expectation-maximization (the model-based representative).
//! * [`wavecluster()`] — the original dense-grid wavelet clustering of
//!   Sheikholeslami et al., which AdaWave extends.
//! * [`dip`] — Hartigan's dip statistic, its bootstrap p-value, and the
//!   UniDip / SkinnyDip algorithms of Maurus & Plant (the specialized
//!   high-noise competitor).
//! * [`dipmeans()`] — DipMeans, the dip-based wrapper that estimates `k`
//!   around k-means.
//! * [`spectral`] — self-tuning spectral clustering (STSC) with local
//!   scaling and eigengap model selection.
//! * [`ric()`] — a simplified Robust Information-theoretic Clustering
//!   (MDL-based purification of an initial k-means partition).
//!
//! All algorithms return the canonical [`Clustering`] of `adawave-api`
//! with per-point labels (`None` = noise) so they can be scored uniformly
//! by `adawave-metrics`, and every one of them is exposed behind the
//! uniform [`adawave_api::Clusterer`] trait via [`clusterers::register`].
//!
//! The distance-heavy kernels (k-means assignment/accumulation, the DBSCAN
//! neighborhood queries, mean-shift mode seeking, SYNC rounds, the STSC
//! affinity matrix) fan out over an [`adawave_runtime::Runtime`] carried in
//! each config — with the fixed-chunk contract that any thread count
//! produces identical labels.
//!
//! ```
//! use adawave_api::PointMatrix;
//! use adawave_baselines::{dbscan, DbscanConfig};
//!
//! let points = PointMatrix::from_rows(vec![
//!     vec![0.00, 0.00], vec![0.01, 0.00], vec![0.00, 0.01],
//!     vec![1.00, 1.00], vec![1.01, 1.00], vec![1.00, 1.01],
//! ]).unwrap();
//! let clustering = dbscan(points.view(), &DbscanConfig::new(0.05, 2));
//! assert_eq!(clustering.cluster_count(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cellgrid;
pub mod clique;
pub mod clusterers;
pub mod clustering;
pub mod dbscan;
pub mod dip;
pub mod dipmeans;
pub mod em;
pub mod kdtree;
pub mod kmeans;
pub mod meanshift;
pub mod models;
pub mod optics;
pub mod ric;
pub mod spectral;
pub mod sting;
pub mod sync;
pub mod wavecluster;

pub use clique::{clique, clique_model, CliqueConfig, CliqueModel, DenseUnit};
pub use clusterers::{register, ConfiguredClusterer};
pub use clustering::Clustering;
pub use dbscan::{dbscan, DbscanConfig};
pub use dip::{dip_statistic, dip_test, skinnydip, unidip, SkinnyDipConfig};
pub use dipmeans::{dipmeans, dipmeans_with_centroids, DipMeansConfig};
pub use em::{em, EmConfig, GaussianMixture};
pub use kdtree::{KdIndex, KdTree};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use meanshift::{mean_shift, MeanShiftConfig, MeanShiftKernel};
pub use models::{CentroidModel, EmModel, IntervalModel, MeanShiftModel, NearestTrainingModel};
pub use optics::{optics, optics_ordering, OpticsConfig, OpticsOrdering};
pub use ric::{ric, RicConfig};
pub use spectral::{self_tuning_spectral, SpectralConfig};
pub use sting::{sting, CellStatistics, StingConfig, StingGrid};
pub use sync::{sync_cluster, SyncConfig};
pub use wavecluster::{wavecluster, WaveClusterConfig};
