//! Hartigan's dip test of unimodality, UniDip and SkinnyDip.
//!
//! SkinnyDip (Maurus & Plant, KDD 2016) is the paper's specialized
//! high-noise competitor. Its core is the dip statistic: the largest
//! distance between the empirical CDF and the closest unimodal CDF. UniDip
//! recursively applies the dip test to 1-D data to extract modal intervals;
//! SkinnyDip intersects the UniDip intervals across dimensions to form
//! hyper-rectangular clusters, leaving everything else as noise.
//!
//! The dip statistic here follows the iterative greatest-convex-minorant /
//! least-concave-majorant scheme of Hartigan & Hartigan (1985). P-values
//! are estimated by Monte-Carlo bootstrap against uniform samples of the
//! same size, which is the standard practice when the published lookup
//! tables are unavailable.

use adawave_data::Rng;

use crate::Clustering;

/// Result of a dip computation: the statistic and the modal interval
/// (indices into the *sorted* sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DipResult {
    /// The dip statistic, in `[0, 0.25]`.
    pub dip: f64,
    /// Inclusive index range of the modal interval in the sorted sample.
    pub modal_interval: (usize, usize),
}

/// Empirical CDF value at sorted index `i` (using the midpoint convention).
fn ecdf(i: usize, n: usize) -> f64 {
    (i as f64 + 1.0) / n as f64
}

/// Indices of the greatest convex minorant of the ECDF restricted to
/// `[low, high]` (inclusive), returned in increasing order.
fn convex_minorant(x: &[f64], low: usize, high: usize, n: usize) -> Vec<usize> {
    let mut hull: Vec<usize> = Vec::new();
    for i in low..=high {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Remove b if it lies above the segment a -> i (not convex).
            let cross = (x[b] - x[a]) * (ecdf(i, n) - ecdf(a, n))
                - (ecdf(b, n) - ecdf(a, n)) * (x[i] - x[a]);
            if cross >= 0.0 {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }
    hull
}

/// Indices of the least concave majorant of the ECDF restricted to
/// `[low, high]` (inclusive), returned in increasing order.
fn concave_majorant(x: &[f64], low: usize, high: usize, n: usize) -> Vec<usize> {
    let mut hull: Vec<usize> = Vec::new();
    for i in low..=high {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Remove b if it lies below the segment a -> i (not concave).
            let cross = (x[b] - x[a]) * (ecdf(i, n) - ecdf(a, n))
                - (ecdf(b, n) - ecdf(a, n)) * (x[i] - x[a]);
            if cross <= 0.0 {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }
    hull
}

/// Linear interpolation of the piecewise-linear curve through the hull
/// points `(x[h], ecdf(h))` evaluated at `x[i]`.
fn interpolate_on_hull(x: &[f64], hull: &[usize], i: usize, n: usize) -> f64 {
    // Find the hull segment containing x[i].
    let xi = x[i];
    if xi <= x[hull[0]] {
        return ecdf(hull[0], n);
    }
    for w in hull.windows(2) {
        let (a, b) = (w[0], w[1]);
        if xi <= x[b] {
            let span = x[b] - x[a];
            if span <= 0.0 {
                return ecdf(b, n);
            }
            let t = (xi - x[a]) / span;
            return ecdf(a, n) + t * (ecdf(b, n) - ecdf(a, n));
        }
    }
    ecdf(*hull.last().unwrap(), n)
}

/// Compute the dip statistic of a 1-D sample. The input does **not** need
/// to be sorted. Returns the statistic and the modal interval as indices
/// into the sorted order.
pub fn dip_statistic(values: &[f64]) -> DipResult {
    let n = values.len();
    if n < 4 {
        return DipResult {
            dip: 0.0,
            modal_interval: (0, n.saturating_sub(1)),
        };
    }
    let mut x: Vec<f64> = values.to_vec();
    x.sort_by(f64::total_cmp);

    let mut low = 0usize;
    let mut high = n - 1;
    let mut dip = 1.0 / (2.0 * n as f64);

    for _ in 0..n {
        let gcm = convex_minorant(&x, low, high, n);
        let lcm = concave_majorant(&x, low, high, n);

        // Largest separation between the two envelope curves. The gap is
        // evaluated at every hull vertex; the modal-interval candidates are
        // the GCM vertex at/below and the LCM vertex at/above the location
        // of the maximum gap.
        let mut d = 0.0;
        let mut arg = low;
        for &i in gcm.iter().chain(lcm.iter()) {
            let gap = interpolate_on_hull(&x, &lcm, i, n) - interpolate_on_hull(&x, &gcm, i, n);
            if gap > d {
                d = gap;
                arg = i;
            }
        }
        let ig = gcm.iter().copied().rfind(|&g| g <= arg).unwrap_or(low);
        let ih = lcm.iter().copied().find(|&l| l >= arg).unwrap_or(high);

        if d <= dip {
            break;
        }

        // Deviations of the ECDF from the envelopes outside the candidate
        // modal interval.
        let mut dip_l: f64 = 0.0;
        for i in low..=ig.max(low) {
            let dev = (ecdf(i, n) - interpolate_on_hull(&x, &gcm, i, n)).abs();
            dip_l = dip_l.max(dev);
        }
        let mut dip_u: f64 = 0.0;
        for i in ih.min(high)..=high {
            let dev = (interpolate_on_hull(&x, &lcm, i, n) - ecdf(i, n)).abs();
            dip_u = dip_u.max(dev);
        }
        dip = dip.max(dip_l.max(dip_u));

        // Shrink to the candidate modal interval and iterate.
        let new_low = ig.min(ih);
        let new_high = ig.max(ih);
        if new_low <= low && new_high >= high {
            break;
        }
        low = new_low.max(low);
        high = new_high.min(high);
        if high <= low + 1 {
            break;
        }
    }

    DipResult {
        dip: (dip * 0.5).min(0.25),
        modal_interval: (low, high),
    }
}

/// Monte-Carlo p-value of a dip statistic: the fraction of `bootstraps`
/// uniform samples of size `n` whose dip is at least as large as `dip`.
pub fn dip_pvalue(dip: f64, n: usize, bootstraps: usize, rng: &mut Rng) -> f64 {
    if n < 4 || bootstraps == 0 {
        return 1.0;
    }
    let mut at_least = 0usize;
    let mut sample = vec![0.0; n];
    for _ in 0..bootstraps {
        for v in &mut sample {
            *v = rng.uniform();
        }
        if dip_statistic(&sample).dip >= dip {
            at_least += 1;
        }
    }
    (at_least as f64 + 1.0) / (bootstraps as f64 + 1.0)
}

/// Combined dip test: statistic, modal interval and bootstrap p-value.
pub fn dip_test(values: &[f64], bootstraps: usize, rng: &mut Rng) -> (DipResult, f64) {
    let result = dip_statistic(values);
    let p = dip_pvalue(result.dip, values.len(), bootstraps, rng);
    (result, p)
}

/// Configuration shared by UniDip and SkinnyDip.
#[derive(Debug, Clone)]
pub struct SkinnyDipConfig {
    /// Significance level of the dip test (0.05 in the SkinnyDip paper).
    pub alpha: f64,
    /// Number of bootstrap samples per dip test.
    pub bootstraps: usize,
    /// Smallest interval (number of points) worth recursing into.
    pub min_cluster_size: usize,
    /// Maximum recursion depth of UniDip.
    pub max_depth: usize,
    /// A modal interval only counts as a cluster if the point density
    /// inside it is at least this factor above the average density of the
    /// whole (sub)sample; this is what keeps uniform noise from being
    /// reported as a mode.
    pub min_density_ratio: f64,
    /// RNG seed (bootstrap only; the algorithm itself is deterministic).
    pub seed: u64,
}

impl Default for SkinnyDipConfig {
    fn default() -> Self {
        Self {
            alpha: 0.05,
            bootstraps: 64,
            min_cluster_size: 8,
            max_depth: 12,
            min_density_ratio: 2.0,
            seed: 0,
        }
    }
}

/// Expand a modal interval outwards while the local point density stays
/// comparable to the density inside the interval.
///
/// The dip's modal interval marks the steepest part of the ECDF, which for
/// a Gaussian-ish cluster is narrower than the cluster itself; UniDip needs
/// the full cluster extent so that the interval captures (most of) its
/// members. Expansion stops as soon as the gap to the next point exceeds
/// `3x` the median in-interval spacing — i.e. when we reach the
/// low-density noise floor.
fn expand_modal_interval(sorted: &[f64], lo: usize, hi: usize) -> (usize, usize) {
    let n = sorted.len();
    if n < 3 || hi <= lo + 1 {
        return (lo, hi);
    }
    // Average spacing of the (dense) modal interval; expansion continues as
    // long as the local spacing — averaged over a small window to smooth
    // sampling jitter — stays within a small multiple of it.
    let average_spacing = ((sorted[hi] - sorted[lo]) / (hi - lo) as f64).max(1e-12);
    let limit = 4.0 * average_spacing;
    let window = 5usize;

    let mut new_lo = lo;
    while new_lo > 0 {
        let prev = new_lo - 1;
        let window_start = prev.saturating_sub(window);
        let span = sorted[new_lo] - sorted[window_start];
        let local = span / (new_lo - window_start) as f64;
        if local <= limit {
            new_lo = prev;
        } else {
            break;
        }
    }
    let mut new_hi = hi;
    while new_hi + 1 < n {
        let next = new_hi + 1;
        let window_end = (next + window).min(n - 1);
        let span = sorted[window_end] - sorted[new_hi];
        let local = span / (window_end - new_hi) as f64;
        if local <= limit {
            new_hi = next;
        } else {
            break;
        }
    }
    (new_lo, new_hi)
}

/// Recursively extract modal intervals from 1-D values with UniDip.
///
/// Returns the discovered intervals as `(low, high)` value ranges
/// (inclusive), in increasing order of `low`.
pub fn unidip(values: &[f64], config: &SkinnyDipConfig, rng: &mut Rng) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut intervals = Vec::new();
    unidip_recursive(&sorted, config, rng, 0, &mut intervals);
    let n = sorted.len();
    if n < 2 {
        return intervals;
    }
    // Keep only "core" intervals that are denser than the sample average
    // (uniform-noise stretches are not modes), then grow each survivor
    // against the full sample until the local density falls back to the
    // noise floor, so the interval captures the bulk of its cluster.
    let global_spacing = ((sorted[n - 1] - sorted[0]) / (n - 1) as f64).max(1e-15);
    let expanded: Vec<(f64, f64)> = intervals
        .iter()
        .filter_map(|&(lo_v, hi_v)| {
            let lo = sorted.partition_point(|&v| v < lo_v);
            let hi = sorted
                .partition_point(|&v| v <= hi_v)
                .saturating_sub(1)
                .max(lo);
            let count = hi - lo;
            let spacing = if count == 0 {
                0.0
            } else {
                (sorted[hi] - sorted[lo]) / count as f64
            };
            if spacing * config.min_density_ratio > global_spacing {
                return None; // not denser than the background
            }
            let (elo, ehi) = expand_modal_interval(&sorted, lo, hi);
            Some((sorted[elo], sorted[ehi]))
        })
        .collect();
    let mut intervals = expanded;
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    merge_overlapping(&mut intervals);
    intervals
}

fn merge_overlapping(intervals: &mut Vec<(f64, f64)>) {
    if intervals.len() < 2 {
        return;
    }
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for &(lo, hi) in intervals.iter() {
        if let Some(last) = merged.last_mut() {
            if lo <= last.1 {
                last.1 = last.1.max(hi);
                continue;
            }
        }
        merged.push((lo, hi));
    }
    *intervals = merged;
}

fn unidip_recursive(
    sorted: &[f64],
    config: &SkinnyDipConfig,
    rng: &mut Rng,
    depth: usize,
    out: &mut Vec<(f64, f64)>,
) {
    let n = sorted.len();
    if n < config.min_cluster_size {
        return;
    }
    let (result, p) = dip_test(sorted, config.bootstraps, rng);
    let (lo, hi) = result.modal_interval;
    if p > config.alpha || depth >= config.max_depth {
        // Unimodal: the (density-expanded) modal interval is one cluster.
        // When the dip test is run on a flank that is pure noise the modal
        // interval tends to span (almost) everything; reporting it is still
        // correct because the caller decides which points fall inside.
        let (elo, ehi) = expand_modal_interval(sorted, lo, hi);
        out.push((sorted[elo], sorted[ehi]));
        return;
    }
    // Multimodal: recurse into the modal interval and into both flanks.
    let modal = &sorted[lo..=hi];
    if modal.len() >= config.min_cluster_size && modal.len() < n {
        unidip_recursive(modal, config, rng, depth + 1, out);
    } else if modal.len() >= config.min_cluster_size {
        // The modal interval did not shrink; treat it as one cluster to
        // guarantee termination.
        out.push((sorted[lo], sorted[hi]));
    }
    if lo >= config.min_cluster_size {
        let left = &sorted[..lo];
        let (left_result, left_p) = dip_test(left, config.bootstraps, rng);
        if left_p <= config.alpha {
            unidip_recursive(left, config, rng, depth + 1, out);
        } else {
            // Unimodal flank: only keep it if it is "peaky" enough to look
            // like a cluster rather than uniform noise.
            let (flank_lo, flank_hi) = left_result.modal_interval;
            let coverage = (flank_hi - flank_lo + 1) as f64 / left.len() as f64;
            if coverage < 0.5 {
                let (elo, ehi) = expand_modal_interval(left, flank_lo, flank_hi);
                out.push((left[elo], left[ehi]));
            }
        }
    }
    if n - 1 - hi >= config.min_cluster_size {
        let right = &sorted[hi + 1..];
        let (right_result, right_p) = dip_test(right, config.bootstraps, rng);
        if right_p <= config.alpha {
            unidip_recursive(right, config, rng, depth + 1, out);
        } else {
            let (flank_lo, flank_hi) = right_result.modal_interval;
            let coverage = (flank_hi - flank_lo + 1) as f64 / right.len() as f64;
            if coverage < 0.5 {
                let (elo, ehi) = expand_modal_interval(right, flank_lo, flank_hi);
                out.push((right[elo], right[ehi]));
            }
        }
    }
}

/// A candidate cluster during SkinnyDip: per-dimension value intervals plus
/// the indices of the points currently satisfying all of them.
type HyperRect = (Vec<(f64, f64)>, Vec<usize>);

/// SkinnyDip: run UniDip on every dimension, intersecting the modal
/// intervals into hyper-rectangles. Points outside every hyper-rectangle
/// are noise.
// `dim` indexes the inner coordinate of `points.row(i)`; there is no outer
// container to iterate instead.
#[allow(clippy::needless_range_loop)]
pub fn skinnydip(points: adawave_api::PointsView<'_>, config: &SkinnyDipConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    let dims = points.dims();
    let mut rng = Rng::new(config.seed);

    // Each candidate cluster is a set of per-dimension value intervals and
    // the indices of the points that currently satisfy them.
    let mut hyperrects: Vec<HyperRect> = vec![(Vec::new(), (0..n).collect())];

    for dim in 0..dims {
        let mut next: Vec<HyperRect> = Vec::new();
        for (bounds, members) in &hyperrects {
            if members.len() < config.min_cluster_size {
                continue;
            }
            let values: Vec<f64> = members.iter().map(|&i| points.row(i)[dim]).collect();
            let intervals = unidip(&values, config, &mut rng);
            for (lo, hi) in intervals {
                let subset: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let v = points.row(i)[dim];
                        v >= lo && v <= hi
                    })
                    .collect();
                if subset.len() >= config.min_cluster_size {
                    let mut new_bounds = bounds.clone();
                    new_bounds.push((lo, hi));
                    next.push((new_bounds, subset));
                }
            }
        }
        if next.is_empty() {
            // No modal structure anywhere: everything is noise.
            return Clustering::all_noise(n);
        }
        hyperrects = next;
    }

    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for (cluster_id, (_, members)) in hyperrects.iter().enumerate() {
        for &i in members {
            // First hyper-rectangle wins in the (rare) overlapping case.
            if assignment[i].is_none() {
                assignment[i] = Some(cluster_id);
            }
        }
    }
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::shapes;
    use adawave_metrics::{ami_ignoring_noise, NOISE_LABEL};

    fn unimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal_with(-4.0, 0.5)
                } else {
                    rng.normal_with(4.0, 0.5)
                }
            })
            .collect()
    }

    #[test]
    fn dip_is_bounded() {
        for seed in 0..5 {
            let sample = unimodal_sample(200, seed);
            let d = dip_statistic(&sample).dip;
            assert!((0.0..=0.25).contains(&d), "dip {d}");
        }
    }

    #[test]
    fn dip_of_tiny_samples_is_zero() {
        assert_eq!(dip_statistic(&[]).dip, 0.0);
        assert_eq!(dip_statistic(&[1.0, 2.0, 3.0]).dip, 0.0);
    }

    #[test]
    fn bimodal_dip_is_larger_than_unimodal() {
        let uni = dip_statistic(&unimodal_sample(400, 1)).dip;
        let bi = dip_statistic(&bimodal_sample(400, 2)).dip;
        assert!(
            bi > 2.0 * uni,
            "bimodal dip {bi} should clearly exceed unimodal dip {uni}"
        );
    }

    #[test]
    fn dip_is_insensitive_to_input_order_and_scale() {
        let sample = bimodal_sample(300, 3);
        let mut reversed = sample.clone();
        reversed.reverse();
        let scaled: Vec<f64> = sample.iter().map(|v| v * 10.0 + 5.0).collect();
        let d0 = dip_statistic(&sample).dip;
        assert!((d0 - dip_statistic(&reversed).dip).abs() < 1e-12);
        assert!((d0 - dip_statistic(&scaled).dip).abs() < 1e-9);
    }

    #[test]
    fn pvalue_discriminates_unimodal_from_bimodal() {
        let mut rng = Rng::new(4);
        let uni = unimodal_sample(300, 5);
        let (du, pu) = dip_test(&uni, 80, &mut rng);
        let bi = bimodal_sample(300, 6);
        let (db, pb) = dip_test(&bi, 80, &mut rng);
        assert!(pu > 0.05, "unimodal p-value {pu} (dip {})", du.dip);
        assert!(pb < 0.05, "bimodal p-value {pb} (dip {})", db.dip);
    }

    #[test]
    fn modal_interval_covers_the_mode() {
        // Strong central mode with uniform tails: the modal interval should
        // concentrate around the middle of the sorted sample.
        let mut rng = Rng::new(7);
        let mut sample: Vec<f64> = (0..300).map(|_| rng.normal_with(0.0, 0.2)).collect();
        sample.extend((0..300).map(|_| rng.uniform_range(-10.0, 10.0)));
        let result = dip_statistic(&sample);
        let (lo, hi) = result.modal_interval;
        let n = sample.len();
        assert!(lo > n / 10, "modal interval starts too early: {lo}");
        assert!(hi < n - n / 10, "modal interval ends too late: {hi}");
        assert!(hi > lo);
    }

    #[test]
    fn unidip_finds_two_well_separated_modes() {
        let mut rng = Rng::new(8);
        let mut values: Vec<f64> = Vec::new();
        values.extend((0..300).map(|_| rng.normal_with(-5.0, 0.3)));
        values.extend((0..300).map(|_| rng.normal_with(5.0, 0.3)));
        // sprinkle uniform noise
        values.extend((0..200).map(|_| rng.uniform_range(-10.0, 10.0)));
        let config = SkinnyDipConfig {
            bootstraps: 48,
            ..Default::default()
        };
        let mut dip_rng = Rng::new(9);
        let intervals = unidip(&values, &config, &mut dip_rng);
        assert!(
            intervals.len() >= 2,
            "expected at least two modal intervals, got {intervals:?}"
        );
        // One interval near -5, one near +5.
        assert!(intervals
            .iter()
            .any(|&(lo, hi)| lo < -4.0 && hi > -6.0 && hi < 0.0));
        assert!(intervals
            .iter()
            .any(|&(lo, hi)| hi > 4.0 && lo < 6.0 && lo > 0.0));
    }

    #[test]
    fn unidip_on_pure_noise_returns_wide_or_no_intervals() {
        let mut rng = Rng::new(10);
        let values: Vec<f64> = (0..400).map(|_| rng.uniform()).collect();
        let config = SkinnyDipConfig {
            bootstraps: 48,
            ..Default::default()
        };
        let mut dip_rng = Rng::new(11);
        let intervals = unidip(&values, &config, &mut dip_rng);
        // Uniform data is unimodal in the dip sense: a single interval.
        assert!(intervals.len() <= 2, "{intervals:?}");
    }

    #[test]
    fn skinnydip_recovers_axis_aligned_gaussians_in_noise() {
        let mut rng = Rng::new(12);
        let mut points = PointMatrix::new(2);
        let mut truth = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.2, 0.2], &[0.02, 0.02], 400);
        truth.extend(std::iter::repeat_n(0usize, 400));
        shapes::gaussian_blob(&mut points, &mut rng, &[0.8, 0.8], &[0.02, 0.02], 400);
        truth.extend(std::iter::repeat_n(1usize, 400));
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 300);
        truth.extend(std::iter::repeat_n(2usize, 300));

        let config = SkinnyDipConfig {
            bootstraps: 48,
            seed: 3,
            ..Default::default()
        };
        let clustering = skinnydip(points.view(), &config);
        assert!(
            clustering.cluster_count() >= 2,
            "found {} clusters",
            clustering.cluster_count()
        );
        let score = ami_ignoring_noise(&truth, &clustering.to_labels(NOISE_LABEL), 2);
        assert!(score > 0.5, "AMI {score}");
    }

    #[test]
    fn skinnydip_empty_input() {
        let clustering = skinnydip(PointMatrix::new(2).view(), &SkinnyDipConfig::default());
        assert!(clustering.is_empty());
    }

    #[test]
    fn skinnydip_is_deterministic() {
        let mut rng = Rng::new(13);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.3, 0.7], &[0.03, 0.03], 200);
        shapes::uniform_box(&mut points, &mut rng, &[0.0, 0.0], &[1.0, 1.0], 100);
        let config = SkinnyDipConfig {
            bootstraps: 32,
            seed: 5,
            ..Default::default()
        };
        assert_eq!(
            skinnydip(points.view(), &config),
            skinnydip(points.view(), &config)
        );
    }
}
