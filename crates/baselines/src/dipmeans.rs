//! DipMeans (Kalogeratos & Likas, NIPS 2012): a dip-test wrapper around
//! k-means that estimates the number of clusters.
//!
//! Each cluster member acts as a "viewer" that dip-tests the distribution
//! of its distances to the other members; if the fraction of viewers that
//! see multimodality ("split viewers") exceeds a threshold, the cluster is
//! split with 2-means and the global solution is refined. The loop stops
//! when no cluster wants to split.

use adawave_api::PointsView;
use adawave_data::Rng;
use adawave_linalg::euclidean_distance;
use adawave_runtime::Runtime;

use crate::dip::{dip_pvalue, dip_statistic};
use crate::kmeans::{kmeans, two_means_split, KMeansConfig};
use crate::Clustering;

/// Configuration for [`dipmeans`].
#[derive(Debug, Clone)]
pub struct DipMeansConfig {
    /// Significance level of each viewer's dip test.
    pub alpha: f64,
    /// A cluster splits when more than this fraction of its viewers are
    /// split viewers (the paper uses 0.01).
    pub split_viewer_threshold: f64,
    /// Maximum number of clusters to grow to.
    pub max_k: usize,
    /// Number of viewers sampled per cluster (caps the cost of the test).
    pub max_viewers: usize,
    /// Bootstrap samples per dip test.
    pub bootstraps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker pool forwarded to the inner k-means runs (splits and global
    /// refinements).
    pub runtime: Runtime,
}

impl Default for DipMeansConfig {
    fn default() -> Self {
        Self {
            // The smallest achievable bootstrap p-value is 1/(bootstraps+1),
            // so alpha must stay above it for splits to ever trigger.
            alpha: 0.05,
            split_viewer_threshold: 0.01,
            max_k: 16,
            max_viewers: 40,
            bootstraps: 64,
            seed: 0,
            runtime: Runtime::from_env(),
        }
    }
}

/// Fraction of sampled viewers in `members` whose distance vector to the
/// other members is significantly multimodal.
fn split_viewer_fraction(
    points: PointsView<'_>,
    members: &[usize],
    config: &DipMeansConfig,
    rng: &mut Rng,
) -> f64 {
    if members.len() < 8 {
        return 0.0;
    }
    let viewer_count = config.max_viewers.min(members.len());
    let viewers = rng.sample_indices(members.len(), viewer_count);
    let mut split = 0usize;
    for &v in &viewers {
        let viewer = points.row(members[v]);
        let distances: Vec<f64> = members
            .iter()
            .filter(|&&m| m != members[v])
            .map(|&m| euclidean_distance(viewer, points.row(m)))
            .collect();
        let dip = dip_statistic(&distances).dip;
        let p = dip_pvalue(dip, distances.len(), config.bootstraps, rng);
        if p <= config.alpha {
            split += 1;
        }
    }
    split as f64 / viewer_count as f64
}

/// Run DipMeans. Returns a clustering with the estimated number of
/// clusters; every point is assigned (no noise concept).
pub fn dipmeans(points: PointsView<'_>, config: &DipMeansConfig) -> Clustering {
    dipmeans_with_centroids(points, config).0
}

/// [`dipmeans`] plus the centroids of the final global k-means refinement
/// (one row per cluster, in the refinement's own order; the global mean
/// when no split ever triggered). Because the final labels come from that
/// k-means run — whose labels are the nearest-centroid assignment against
/// its returned centroids — these centroids make nearest-centroid
/// prediction reproduce the DipMeans training labels exactly.
pub fn dipmeans_with_centroids(
    points: PointsView<'_>,
    config: &DipMeansConfig,
) -> (Clustering, adawave_api::PointMatrix) {
    let n = points.len();
    if n == 0 {
        return (
            Clustering::new(vec![]),
            adawave_api::PointMatrix::new(points.dims()),
        );
    }
    let mut rng = Rng::new(config.seed);
    let mut k = 1usize;
    let mut clustering = Clustering::from_labels(vec![0; n]);
    // The single-cluster "centroids": the global mean (every point is
    // trivially nearest to the only centroid).
    let dims = points.dims();
    let mut mean = vec![0.0; dims];
    for p in points.rows() {
        for (m, v) in mean.iter_mut().zip(p.iter()) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut centroids = adawave_api::PointMatrix::new(dims);
    centroids.push_row(&mean);

    while k < config.max_k {
        let clusters = clustering.clusters();
        // Score every cluster; pick the most split-worthy one.
        let mut best: Option<(usize, f64)> = None;
        for (c, members) in clusters.iter().enumerate() {
            let score = split_viewer_fraction(points, members, config, &mut rng);
            if score > config.split_viewer_threshold {
                let better = match best {
                    None => true,
                    Some((_, s)) => score > s,
                };
                if better {
                    best = Some((c, score));
                }
            }
        }
        let Some((split_cluster, _)) = best else {
            break;
        };
        // Split the chosen cluster with 2-means to seed k+1 centroids...
        let members = &clusters[split_cluster];
        let (a, b) = two_means_split(points, members, rng.next_u64(), config.runtime);
        if a.is_empty() || b.is_empty() {
            break;
        }
        k += 1;
        // ...then refine globally with k-means at the new k.
        let refined = kmeans(
            points,
            &KMeansConfig {
                runtime: config.runtime,
                ..KMeansConfig::new(k, rng.next_u64())
            },
        );
        clustering = refined.clustering;
        centroids = refined.centroids;
    }
    (clustering, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::shapes;
    use adawave_metrics::ami;

    fn blobs(k: usize, per_cluster: usize, seed: u64) -> (PointMatrix, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let centers = [[0.0, 0.0], [6.0, 0.0], [0.0, 6.0], [6.0, 6.0], [3.0, 10.0]];
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        for (c, center) in centers.iter().take(k).enumerate() {
            shapes::gaussian_blob(&mut points, &mut rng, center, &[0.3, 0.3], per_cluster);
            labels.extend(std::iter::repeat_n(c, per_cluster));
        }
        (points, labels)
    }

    #[test]
    fn estimates_k_for_well_separated_blobs() {
        let (points, labels) = blobs(3, 120, 1);
        let clustering = dipmeans(points.view(), &DipMeansConfig::default());
        assert!(
            (2..=4).contains(&clustering.cluster_count()),
            "estimated k = {}",
            clustering.cluster_count()
        );
        let score = ami(&labels, &clustering.to_labels(usize::MAX));
        assert!(score > 0.7, "AMI {score}");
    }

    #[test]
    fn single_gaussian_stays_one_cluster() {
        let (points, _) = blobs(1, 300, 2);
        let clustering = dipmeans(points.view(), &DipMeansConfig::default());
        assert_eq!(clustering.cluster_count(), 1);
    }

    #[test]
    fn respects_max_k() {
        let (points, _) = blobs(5, 80, 3);
        let config = DipMeansConfig {
            max_k: 2,
            ..Default::default()
        };
        let clustering = dipmeans(points.view(), &config);
        assert!(clustering.cluster_count() <= 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let (points, _) = blobs(2, 100, 4);
        let a = dipmeans(points.view(), &DipMeansConfig::default());
        let b = dipmeans(points.view(), &DipMeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        assert!(dipmeans(PointMatrix::new(2).view(), &DipMeansConfig::default()).is_empty());
    }
}
