//! [`Clusterer`] adapters over every baseline, and their registration into
//! the [`AlgorithmRegistry`].
//!
//! Each baseline in this crate is a plain function over a typed config
//! struct; the adapters here wrap a pre-built config behind the uniform
//! [`Clusterer`] interface, and [`register`] wires a `Params`-to-config
//! builder for each algorithm into a registry so callers (CLI, bench
//! sweeps, future services) can resolve baselines by name.

use adawave_api::{
    validate_fit_input, AlgorithmRegistry, ClusterError, Clusterer, Clustering, FitOutcome,
    ParamSpec, Params, PointsView, PredictSupport,
};
use adawave_runtime::Runtime;

use crate::models::{CentroidModel, EmModel, IntervalModel, MeanShiftModel, NearestTrainingModel};
use crate::{
    clique, dbscan, dipmeans, dipmeans_with_centroids, em, kmeans, mean_shift, optics, ric,
    self_tuning_spectral, skinnydip, sting, sync_cluster, unidip, wavecluster, CliqueConfig,
    DbscanConfig, DipMeansConfig, EmConfig, KMeansConfig, MeanShiftConfig, OpticsConfig, RicConfig,
    SkinnyDipConfig, SpectralConfig, StingConfig, SyncConfig, WaveClusterConfig,
};

/// How a wrapped baseline runs: either a labels-only function (whose
/// trained model is the nearest-training-point fallback) or a pair of
/// functions — the cheap label-only fit plus the training function that
/// also builds the native model — so plain `fit` never pays for a model
/// it is about to discard.
enum Run<C> {
    Labels(fn(PointsView<'_>, &C) -> Clustering),
    Trained {
        fit: fn(PointsView<'_>, &C) -> Clustering,
        fit_model: fn(PointsView<'_>, &C) -> FitOutcome,
    },
}

/// A baseline behind the uniform interface: a registry name, a pre-parsed
/// config, and the baseline's run function.
pub struct ConfiguredClusterer<C> {
    name: &'static str,
    config: C,
    run: Run<C>,
}

impl<C> ConfiguredClusterer<C> {
    /// Wrap a labels-only `(config, function)` pair under a registry name.
    /// Its [`fit_model`](Clusterer::fit_model) memorizes the training
    /// batch in a [`NearestTrainingModel`] — the documented fallback for
    /// algorithms without a native out-of-sample rule.
    pub fn new(name: &'static str, config: C, run: fn(PointsView<'_>, &C) -> Clustering) -> Self {
        Self {
            name,
            config,
            run: Run::Labels(run),
        }
    }

    /// Wrap an algorithm with a native serving model: `fit` is the cheap
    /// label-only function, `fit_model` the training function that also
    /// builds the model in the same pass.
    pub fn with_model(
        name: &'static str,
        config: C,
        fit: fn(PointsView<'_>, &C) -> Clustering,
        fit_model: fn(PointsView<'_>, &C) -> FitOutcome,
    ) -> Self {
        Self {
            name,
            config,
            run: Run::Trained { fit, fit_model },
        }
    }

    /// Borrow the effective configuration.
    pub fn config(&self) -> &C {
        &self.config
    }
}

impl<C: std::fmt::Debug> Clusterer for ConfiguredClusterer<C> {
    fn name(&self) -> &str {
        self.name
    }

    fn describe(&self) -> String {
        format!("{} {:?}", self.name, self.config)
    }

    /// Train the wrapped baseline and return the labels plus the trained
    /// model (the algorithm's native one, or the nearest-training-point
    /// fallback). Empty or zero-dimensional input is rejected with
    /// [`ClusterError::InvalidInput`] up front — uniformly across every
    /// baseline — so no `points[0]`-style panic can be reached through
    /// the trait surface.
    fn fit_model(&self, points: PointsView<'_>) -> Result<FitOutcome, ClusterError> {
        validate_fit_input(points)?;
        Ok(match self.run {
            Run::Labels(run) => {
                let clustering = run(points, &self.config);
                FitOutcome {
                    model: Box::new(NearestTrainingModel::new(self.name, points, &clustering)),
                    clustering,
                }
            }
            Run::Trained { fit_model, .. } => fit_model(points, &self.config),
        })
    }

    /// Label-only fit: always the cheap path — no serving model is built
    /// and no training-batch copy is made, for either kind of baseline.
    fn fit(&self, points: PointsView<'_>) -> Result<Clustering, ClusterError> {
        validate_fit_input(points)?;
        Ok(match self.run {
            Run::Labels(run) => run(points, &self.config),
            Run::Trained { fit, .. } => fit(points, &self.config),
        })
    }
}

/// UniDip on one projected axis (the 1-D core of SkinnyDip): the raw
/// per-point interval indices, the fitted modal intervals, the clamped
/// projection dimension and the data dimensionality.
#[allow(clippy::type_complexity)]
fn unidip_parts(
    points: PointsView<'_>,
    config: &(usize, SkinnyDipConfig),
) -> (Vec<Option<usize>>, Vec<(f64, f64)>, usize, usize) {
    let (dim, cfg) = config;
    let dims = points.dims();
    if points.is_empty() || dims == 0 {
        // No axis to project onto: all noise. (The trait surface already
        // rejects these inputs; kept for direct calls.)
        return (vec![None; points.len()], Vec::new(), 0, dims);
    }
    let d = (*dim).min(dims - 1);
    let values: Vec<f64> = points.rows().map(|p| p[d]).collect();
    let mut rng = adawave_data::Rng::new(cfg.seed);
    let intervals = unidip(&values, cfg, &mut rng);
    let raw = values
        .iter()
        .map(|&v| intervals.iter().position(|&(lo, hi)| v >= lo && v <= hi))
        .collect();
    (raw, intervals, d, dims)
}

/// UniDip on one projected axis, exposed as an algorithm of its own for
/// axis-aligned data. `config.0` is the dimension to project onto
/// (clamped to the data's dimensionality).
fn unidip_projection(points: PointsView<'_>, config: &(usize, SkinnyDipConfig)) -> Clustering {
    Clustering::new(unidip_parts(points, config).0)
}

// ---------------------------------------------------------------------------
// Native fit-model adapters: one training pass produces the labels and the
// algorithm's own serving model, with model cluster ids aligned to the
// training clustering (pinned for all algorithms by tests/predict_parity.rs).
// ---------------------------------------------------------------------------

fn kmeans_fit(points: PointsView<'_>, config: &KMeansConfig) -> Clustering {
    kmeans(points, config).clustering
}

fn kmeans_fit_model(points: PointsView<'_>, config: &KMeansConfig) -> FitOutcome {
    let result = kmeans(points, config);
    let model = CentroidModel::aligned("kmeans", &result.centroids, &result.clustering, points);
    FitOutcome {
        clustering: result.clustering,
        model: Box::new(model),
    }
}

fn em_fit(points: PointsView<'_>, config: &EmConfig) -> Clustering {
    em(points, config).1
}

fn em_fit_model(points: PointsView<'_>, config: &EmConfig) -> FitOutcome {
    let (mixture, clustering) = em(points, config);
    let model = EmModel::aligned(mixture, &clustering, points);
    FitOutcome {
        clustering,
        model: Box::new(model),
    }
}

fn dipmeans_fit_model(points: PointsView<'_>, config: &DipMeansConfig) -> FitOutcome {
    let (clustering, centroids) = dipmeans_with_centroids(points, config);
    let model = CentroidModel::aligned("dipmeans", &centroids, &clustering, points);
    FitOutcome {
        clustering,
        model: Box::new(model),
    }
}

fn meanshift_fit_model(points: PointsView<'_>, config: &MeanShiftConfig) -> FitOutcome {
    let (clustering, model) = MeanShiftModel::fit(points, config);
    FitOutcome {
        clustering,
        model: Box::new(model),
    }
}

fn unidip_fit_model(points: PointsView<'_>, config: &(usize, SkinnyDipConfig)) -> FitOutcome {
    let (raw, intervals, dim, dims) = unidip_parts(points, config);
    let model = IntervalModel::new(dims, dim, intervals, &raw);
    FitOutcome {
        clustering: Clustering::new(raw),
        model: Box::new(model),
    }
}

const SEED: ParamSpec = ParamSpec::new("seed", "u64", "0", "seed for the internal RNG");
const K: ParamSpec = ParamSpec::new("k", "usize", "2", "number of clusters to produce");
/// The uniform `threads` parameter for algorithms with parallel kernels
/// (the shared definition keeps the CLI help identical across crates).
const THREADS: ParamSpec = ParamSpec::THREADS;
/// The uniform `threads` parameter for algorithms whose kernels are still
/// sequential (accepted and validated so `--threads` works uniformly).
const THREADS_NOOP: ParamSpec = ParamSpec::new(
    "threads",
    "usize",
    "0",
    "accepted for CLI uniformity; this algorithm's kernels run sequentially",
);

/// Parse the uniform `threads` parameter into a [`Runtime`]
/// (`0`/absent = auto: the `ADAWAVE_THREADS` override or all cores).
fn runtime_param(params: &Params) -> Result<Runtime, ClusterError> {
    Ok(Runtime::with_threads(params.get_or("threads", 0usize)?))
}

/// Register every baseline of the paper's evaluation into `registry`.
///
/// Combined with `adawave_core::register` this yields the standard registry
/// of the paper's ~15 algorithms (see the umbrella `adawave` crate).
pub fn register(registry: &mut AlgorithmRegistry) {
    registry.register(
        "kmeans",
        "Lloyd's k-means with k-means++ init and restarts",
        &[K, SEED, THREADS],
        PredictSupport::Native,
        |params| {
            let config = KMeansConfig {
                runtime: runtime_param(params)?,
                ..KMeansConfig::new(params.get_or("k", 2)?, params.get_or("seed", 0)?)
            };
            Ok(Box::new(ConfiguredClusterer::with_model(
                "kmeans",
                config,
                kmeans_fit,
                kmeans_fit_model,
            )))
        },
    );
    registry.register(
        "dbscan",
        "density-based clustering with a kd-tree region index",
        &[
            ParamSpec::new("eps", "f64", "0.05", "neighborhood radius"),
            ParamSpec::new("min-points", "usize", "8", "core-point density threshold"),
            THREADS,
        ],
        PredictSupport::Fallback,
        |params| {
            let config = DbscanConfig {
                runtime: runtime_param(params)?,
                ..DbscanConfig::new(params.get_or("eps", 0.05)?, params.get_or("min-points", 8)?)
            };
            Ok(Box::new(ConfiguredClusterer::new("dbscan", config, dbscan)))
        },
    );
    registry.register(
        "em",
        "full-covariance Gaussian mixture fitted with EM",
        &[K, SEED, THREADS],
        PredictSupport::Native,
        |params| {
            let config = EmConfig {
                runtime: runtime_param(params)?,
                ..EmConfig::new(params.get_or("k", 2)?, params.get_or("seed", 0)?)
            };
            Ok(Box::new(ConfiguredClusterer::with_model(
                "em",
                config,
                em_fit,
                em_fit_model,
            )))
        },
    );
    registry.register(
        "wavecluster",
        "the original dense-grid wavelet clustering (Sheikholeslami et al.)",
        &[
            ParamSpec::new("scale", "u32", "128", "grid intervals per dimension"),
            THREADS,
        ],
        PredictSupport::Fallback,
        |params| {
            let config = WaveClusterConfig {
                scale: params.get_or("scale", 128)?,
                runtime: runtime_param(params)?,
                ..Default::default()
            };
            Ok(Box::new(ConfiguredClusterer::new(
                "wavecluster",
                config,
                wavecluster,
            )))
        },
    );
    registry.register(
        "skinnydip",
        "SkinnyDip: recursive dip-test clustering (Maurus & Plant)",
        &[
            SEED,
            ParamSpec::new("alpha", "f64", "0.05", "dip-test significance level"),
            THREADS_NOOP,
        ],
        PredictSupport::Fallback,
        |params| {
            runtime_param(params)?;
            let config = SkinnyDipConfig {
                seed: params.get_or("seed", 0)?,
                alpha: params.get_or("alpha", 0.05)?,
                ..Default::default()
            };
            Ok(Box::new(ConfiguredClusterer::new(
                "skinnydip",
                config,
                skinnydip,
            )))
        },
    );
    registry.register(
        "unidip",
        "UniDip modal intervals on one projected axis (the 1-D core of SkinnyDip)",
        &[
            SEED,
            ParamSpec::new("alpha", "f64", "0.05", "dip-test significance level"),
            ParamSpec::new("dim", "usize", "0", "dimension to project onto"),
            THREADS_NOOP,
        ],
        PredictSupport::Native,
        |params| {
            runtime_param(params)?;
            let config = SkinnyDipConfig {
                seed: params.get_or("seed", 0)?,
                alpha: params.get_or("alpha", 0.05)?,
                ..Default::default()
            };
            let dim = params.get_or("dim", 0)?;
            Ok(Box::new(ConfiguredClusterer::with_model(
                "unidip",
                (dim, config),
                unidip_projection,
                unidip_fit_model,
            )))
        },
    );
    registry.register(
        "dipmeans",
        "DipMeans: dip-test wrapper that estimates k around k-means",
        &[
            SEED,
            ParamSpec::new("max-k", "usize", "16", "upper bound on the estimated k"),
            THREADS,
        ],
        PredictSupport::Native,
        |params| {
            let config = DipMeansConfig {
                seed: params.get_or("seed", 0)?,
                max_k: params.get_or("max-k", 16)?,
                runtime: runtime_param(params)?,
                ..Default::default()
            };
            Ok(Box::new(ConfiguredClusterer::with_model(
                "dipmeans",
                config,
                dipmeans,
                dipmeans_fit_model,
            )))
        },
    );
    registry.register(
        "stsc",
        "self-tuning spectral clustering with local scaling",
        &[
            ParamSpec::new(
                "k",
                "usize",
                "auto",
                "cluster count ('auto' or omitted = eigengap selection)",
            ),
            SEED,
            THREADS,
        ],
        PredictSupport::Fallback,
        |params| {
            // `k=auto` (or no k at all) selects k by the eigengap; the CLI
            // always injects a numeric k, so `auto` keeps the documented
            // default expressible there.
            let k = match params.get("k") {
                None | Some("auto") => None,
                Some(raw) => {
                    Some(
                        raw.parse::<usize>()
                            .map_err(|_| ClusterError::InvalidParam {
                                param: "k".to_string(),
                                value: raw.to_string(),
                                expected: "a positive integer or 'auto'".to_string(),
                            })?,
                    )
                }
            };
            let config = SpectralConfig {
                k,
                seed: params.get_or("seed", 0)?,
                runtime: runtime_param(params)?,
                ..Default::default()
            };
            Ok(Box::new(ConfiguredClusterer::new(
                "stsc",
                config,
                self_tuning_spectral,
            )))
        },
    );
    registry.register(
        "ric",
        "simplified robust information-theoretic clustering (MDL purification)",
        &[K, SEED, THREADS],
        PredictSupport::Fallback,
        |params| {
            // RIC purifies an over-segmented k-means start: `k` is the
            // expected cluster count, the initial means are 2k (the
            // protocol used by both the CLI and the paper sweep).
            let k: usize = params.get_or("k", 2)?;
            let config = RicConfig {
                runtime: runtime_param(params)?,
                ..RicConfig::new(k.max(2) * 2, params.get_or("seed", 0)?)
            };
            Ok(Box::new(ConfiguredClusterer::new("ric", config, ric)))
        },
    );
    registry.register(
        "optics",
        "OPTICS ordering with DBSCAN-style flat extraction",
        &[
            ParamSpec::new("eps", "f64", "0.05", "flat-extraction radius"),
            ParamSpec::new("max-eps", "f64", "2*eps", "ordering radius"),
            ParamSpec::new("min-points", "usize", "8", "core-point density threshold"),
            THREADS_NOOP,
        ],
        PredictSupport::Fallback,
        |params| {
            runtime_param(params)?;
            let eps = params.get_or("eps", 0.05)?;
            let config = OpticsConfig::new(
                params.get_or("max-eps", eps * 2.0)?,
                params.get_or("min-points", 8)?,
                eps,
            );
            Ok(Box::new(ConfiguredClusterer::new("optics", config, optics)))
        },
    );
    registry.register(
        "meanshift",
        "mean shift with a flat or Gaussian kernel",
        &[
            ParamSpec::new("bandwidth", "f64", "0.1", "kernel radius"),
            THREADS,
        ],
        PredictSupport::Native,
        |params| {
            let config = MeanShiftConfig {
                runtime: runtime_param(params)?,
                ..MeanShiftConfig::new(params.get_or("bandwidth", 0.1)?)
            };
            Ok(Box::new(ConfiguredClusterer::with_model(
                "meanshift",
                config,
                mean_shift,
                meanshift_fit_model,
            )))
        },
    );
    registry.register(
        "sync",
        "synchronization-based clustering (Kuramoto-style dynamics)",
        &[
            ParamSpec::new("eps", "f64", "0.1", "interaction radius"),
            THREADS,
        ],
        PredictSupport::Fallback,
        |params| {
            let config = SyncConfig {
                runtime: runtime_param(params)?,
                ..SyncConfig::new(params.get_or("eps", 0.1)?)
            };
            Ok(Box::new(ConfiguredClusterer::new(
                "sync",
                config,
                sync_cluster,
            )))
        },
    );
    registry.register(
        "sting",
        "STING: statistical information grid with hierarchical cells",
        &[
            ParamSpec::new("levels", "u32", "5", "depth of the cell hierarchy"),
            ParamSpec::new(
                "min-points",
                "usize",
                "4",
                "relevant-cell density threshold",
            ),
            THREADS_NOOP,
        ],
        PredictSupport::Fallback,
        |params| {
            runtime_param(params)?;
            let config =
                StingConfig::new(params.get_or("levels", 5)?, params.get_or("min-points", 4)?);
            Ok(Box::new(ConfiguredClusterer::new("sting", config, sting)))
        },
    );
    registry.register(
        "clique",
        "CLIQUE: bottom-up dense-unit subspace clustering",
        &[
            ParamSpec::new("intervals", "u32", "10", "grid intervals per dimension"),
            ParamSpec::new("density", "f64", "0.01", "dense-unit point fraction"),
            THREADS_NOOP,
        ],
        PredictSupport::Fallback,
        |params| {
            runtime_param(params)?;
            let config = CliqueConfig::new(
                params.get_or("intervals", 10)?,
                params.get_or("density", 0.01)?,
            );
            Ok(Box::new(ConfiguredClusterer::new("clique", config, clique)))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::{AlgorithmSpec, PointMatrix};

    #[test]
    fn register_adds_every_baseline() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        for name in [
            "kmeans",
            "dbscan",
            "em",
            "wavecluster",
            "skinnydip",
            "unidip",
            "dipmeans",
            "stsc",
            "ric",
            "optics",
            "meanshift",
            "sync",
            "sting",
            "clique",
        ] {
            assert!(registry.contains(name), "{name} missing");
        }
        assert_eq!(registry.len(), 14);
    }

    #[test]
    fn registry_kmeans_matches_direct_call() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let points: PointMatrix = (0..40)
            .map(|i| {
                let offset = if i % 2 == 0 { 0.0 } else { 5.0 };
                vec![offset + (i as f64) * 0.001, offset]
            })
            .collect();
        let spec = AlgorithmSpec::new("kmeans").with("k", 2).with("seed", 7);
        let via_registry = registry.fit(&spec, points.view()).unwrap();
        let direct = kmeans(points.view(), &KMeansConfig::new(2, 7)).clustering;
        assert_eq!(via_registry, direct);
    }

    #[test]
    fn unidip_survives_degenerate_inputs() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let clusterer = registry.resolve(&AlgorithmSpec::new("unidip")).unwrap();
        // Zero-dimensional points: invalid input through the uniform
        // surface (no axis to project onto).
        let zero_dim = PointMatrix::from_rows(vec![vec![]; 3]).unwrap();
        assert!(matches!(
            clusterer.fit(zero_dim.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
        // A projection dimension beyond the data is clamped, not a panic.
        let clusterer = registry
            .resolve(&AlgorithmSpec::new("unidip").with("dim", 9))
            .unwrap();
        let points = PointMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.9, 0.8]]).unwrap();
        let c = clusterer.fit(points.view()).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn configured_clusterer_rejects_empty_input_with_invalid_input() {
        // The validation lives in ConfiguredClusterer::fit, so one
        // representative baseline pins it at the unit level — including
        // kmeans, whose free function would panic on the same input. The
        // all-algorithms sweep (empty and zero-dimensional) lives in
        // tests/registry_parity.rs at the workspace level.
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let clusterer = registry.resolve(&AlgorithmSpec::new("kmeans")).unwrap();
        let empty = PointMatrix::new(2);
        assert!(matches!(
            clusterer.fit(empty.view()),
            Err(ClusterError::InvalidInput { .. })
        ));
    }

    #[test]
    fn describe_exposes_effective_config() {
        let mut registry = AlgorithmRegistry::new();
        register(&mut registry);
        let clusterer = registry
            .resolve(&AlgorithmSpec::new("dbscan").with("eps", 0.1))
            .unwrap();
        let text = clusterer.describe();
        assert!(text.contains("dbscan") && text.contains("0.1"), "{text}");
    }
}
