//! Self-tuning spectral clustering (Zelnik-Manor & Perona, NIPS 2004) —
//! the "STSC" baseline of the paper.
//!
//! Affinities use local scaling (`sigma_i` = distance to the 7th nearest
//! neighbor), the embedding comes from the normalized graph Laplacian, the
//! number of clusters is chosen by the eigengap unless fixed, and the
//! row-normalized embedding is clustered with k-means. Because the
//! eigen-decomposition is `O(n^3)`, large inputs are subsampled and the
//! remaining points are assigned to the cluster of their nearest sampled
//! neighbor — the standard Nyström-style shortcut; the paper itself only
//! runs STSC on small/medium datasets.

use adawave_api::{PointMatrix, PointsView};
use adawave_data::Rng;
use adawave_linalg::{jacobi_eigen, Matrix};
use adawave_runtime::Runtime;

use crate::kdtree::KdTree;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::Clustering;

/// Configuration for [`self_tuning_spectral`].
#[derive(Debug, Clone)]
pub struct SpectralConfig {
    /// Number of clusters; `None` selects it automatically via the eigengap.
    pub k: Option<usize>,
    /// Largest number of clusters considered by the eigengap selection.
    pub max_k: usize,
    /// Which nearest neighbor defines the local scale (7 in the STSC paper).
    pub local_scale_neighbor: usize,
    /// Inputs larger than this are subsampled before the eigen-decomposition.
    pub max_exact_points: usize,
    /// RNG seed (subsampling and k-means).
    pub seed: u64,
    /// Worker pool for the pairwise-distance kernels (local scales, the
    /// affinity matrix, the 1-NN extension of the subsampling path) and the
    /// embedded k-means. Labels never depend on the thread count.
    pub runtime: Runtime,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            k: None,
            max_k: 10,
            local_scale_neighbor: 7,
            max_exact_points: 600,
            seed: 0,
            runtime: Runtime::from_env(),
        }
    }
}

fn spectral_on_subset(points: PointsView<'_>, config: &SpectralConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    if n == 1 {
        return Clustering::from_labels(vec![0]);
    }
    // Local scales from the kd-tree; every query is independent, so they
    // fan out over the runtime.
    let tree = KdTree::build(points);
    let neighbor_rank = config.local_scale_neighbor.min(n - 1).max(1);
    let sigmas: Vec<f64> = config.runtime.par_map_indexed(n, |i| {
        let nn = tree.nearest(points.row(i), neighbor_rank + 1);
        nn.last().map(|&(_, d)| d.max(1e-9)).unwrap_or(1e-9)
    });

    // Locally-scaled affinity and normalized Laplacian-like matrix
    // D^{-1/2} A D^{-1/2} (its top eigenvectors are what STSC embeds).
    // Each strict upper-triangle row is computed independently in
    // parallel (same pair count as the sequential fill) and mirrored
    // while being copied into the matrix.
    let upper_rows: Vec<Vec<f64>> = config.runtime.par_map_indexed(n, |i| {
        ((i + 1)..n)
            .map(|j| {
                let d2 = adawave_linalg::squared_distance(points.row(i), points.row(j));
                (-d2 / (sigmas[i] * sigmas[j])).exp()
            })
            .collect()
    });
    let mut affinity = Matrix::zeros(n, n);
    for (i, row) in upper_rows.iter().enumerate() {
        for (offset, &a) in row.iter().enumerate() {
            let j = i + 1 + offset;
            affinity[(i, j)] = a;
            affinity[(j, i)] = a;
        }
    }
    let degrees: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| affinity[(i, j)]).sum::<f64>().max(1e-12))
        .collect();
    let mut normalized = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            normalized[(i, j)] = affinity[(i, j)] / (degrees[i] * degrees[j]).sqrt();
        }
    }

    let eigen = match jacobi_eigen(&normalized, 100) {
        Ok(e) => e,
        Err(_) => return Clustering::from_labels(vec![0; n]),
    };

    // Choose k: fixed, or the largest eigengap among the leading eigenvalues.
    let k = match config.k {
        Some(k) => k.clamp(1, n),
        None => {
            let limit = config.max_k.min(n - 1).max(2);
            let mut best_k = 2;
            let mut best_gap = f64::MIN;
            for candidate in 2..=limit {
                let gap = eigen.eigenvalues[candidate - 1] - eigen.eigenvalues[candidate];
                if gap > best_gap {
                    best_gap = gap;
                    best_k = candidate;
                }
            }
            best_k
        }
    };

    // Row-normalized spectral embedding (flat, one row per point),
    // clustered with k-means.
    let embedding = eigen.embedding(k);
    let mut rows = PointMatrix::with_capacity(k, n);
    for i in 0..n {
        rows.push_row(embedding.row(i));
    }
    for row in rows.as_mut_slice().chunks_exact_mut(k.max(1)) {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    let km_config = KMeansConfig {
        runtime: config.runtime,
        ..KMeansConfig::new(k, config.seed)
    };
    kmeans(rows.view(), &km_config).clustering
}

/// Run self-tuning spectral clustering, subsampling when the input is too
/// large for an exact eigen-decomposition.
pub fn self_tuning_spectral(points: PointsView<'_>, config: &SpectralConfig) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::new(vec![]);
    }
    if n <= config.max_exact_points {
        return spectral_on_subset(points, config);
    }
    // Subsample, cluster exactly, then 1-NN extend to the remaining points.
    let mut rng = Rng::new(config.seed);
    let sample_idx = rng.sample_indices(n, config.max_exact_points);
    let sample_points = points.select(&sample_idx);
    let sample_clustering = spectral_on_subset(sample_points.view(), config);

    let tree = KdTree::build(sample_points.view());
    let assignment: Vec<Option<usize>> = config.runtime.par_map_indexed(n, |p| {
        let nn = tree.nearest(points.row(p), 1);
        nn.first().and_then(|&(i, _)| sample_clustering.label(i))
    });
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adawave_api::PointMatrix;
    use adawave_data::shapes;
    use adawave_metrics::ami;

    #[test]
    fn separates_two_rings_where_kmeans_cannot() {
        let mut rng = Rng::new(1);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.1, 0.01, 200);
        labels.extend(std::iter::repeat_n(0usize, 200));
        shapes::ring(&mut points, &mut rng, (0.5, 0.5), 0.4, 0.01, 200);
        labels.extend(std::iter::repeat_n(1usize, 200));

        let spectral = self_tuning_spectral(
            points.view(),
            &SpectralConfig {
                k: Some(2),
                ..Default::default()
            },
        );
        let spectral_score = ami(&labels, &spectral.to_labels(usize::MAX));
        let km = kmeans(points.view(), &KMeansConfig::new(2, 1));
        let km_score = ami(&labels, &km.clustering.to_labels(usize::MAX));
        assert!(
            spectral_score > 0.9,
            "spectral AMI {spectral_score} (k-means got {km_score})"
        );
        assert!(spectral_score > km_score);
    }

    #[test]
    fn eigengap_estimates_k_for_separated_blobs() {
        let mut rng = Rng::new(2);
        let mut points = PointMatrix::new(2);
        for center in [[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]] {
            shapes::gaussian_blob(&mut points, &mut rng, &center, &[0.2, 0.2], 80);
        }
        let clustering = self_tuning_spectral(points.view(), &SpectralConfig::default());
        assert_eq!(clustering.cluster_count(), 3);
    }

    #[test]
    fn subsampling_path_assigns_every_point() {
        let mut rng = Rng::new(3);
        let mut points = PointMatrix::new(2);
        let mut labels = Vec::new();
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.2, 0.2], 600);
        labels.extend(std::iter::repeat_n(0usize, 600));
        shapes::gaussian_blob(&mut points, &mut rng, &[5.0, 5.0], &[0.2, 0.2], 600);
        labels.extend(std::iter::repeat_n(1usize, 600));
        let config = SpectralConfig {
            k: Some(2),
            max_exact_points: 200,
            ..Default::default()
        };
        let clustering = self_tuning_spectral(points.view(), &config);
        assert_eq!(clustering.len(), 1200);
        assert_eq!(clustering.noise_count(), 0);
        let score = ami(&labels, &clustering.to_labels(usize::MAX));
        assert!(score > 0.95, "AMI {score}");
    }

    #[test]
    fn single_point_and_empty() {
        assert!(
            self_tuning_spectral(PointMatrix::new(2).view(), &SpectralConfig::default()).is_empty()
        );
        let single = PointMatrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let one = self_tuning_spectral(single.view(), &SpectralConfig::default());
        assert_eq!(one.cluster_count(), 1);
    }

    #[test]
    fn deterministic() {
        let mut rng = Rng::new(4);
        let mut points = PointMatrix::new(2);
        shapes::gaussian_blob(&mut points, &mut rng, &[0.0, 0.0], &[0.3, 0.3], 150);
        shapes::gaussian_blob(&mut points, &mut rng, &[3.0, 3.0], &[0.3, 0.3], 150);
        let a = self_tuning_spectral(points.view(), &SpectralConfig::default());
        let b = self_tuning_spectral(points.view(), &SpectralConfig::default());
        assert_eq!(a, b);
    }
}
